#!/usr/bin/env bash
# Local ThreadSanitizer run over the parallel-engine tests (mirrors the
# CI `tsan` nightly job). TSan needs a nightly toolchain with rust-src
# (for -Z build-std); this environment may be offline and unable to
# install one, so the script skips gracefully (exit 0 with a notice)
# instead of failing — the scheduled CI job is where the check runs.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup +nightly component list --installed 2>/dev/null | grep -q rust-src; then
  echo "tsan.sh: no nightly toolchain with rust-src available;"
  echo "tsan.sh: skipping (run 'rustup +nightly component add rust-src' when online)."
  exit 0
fi

target="$(rustc -vV | sed -n 's/^host: //p')"
export RUSTFLAGS="${RUSTFLAGS:--Z sanitizer=thread}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
exec cargo +nightly test --locked -Z build-std --target "$target" --test parallel "$@"
