#!/usr/bin/env bash
# Regenerates every paper table/figure plus the ablations and extensions.
# Outputs print to stdout; JSON records land in results/.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  fig02_table_sizes fig04_minibatch_prob fig06_threshold_sweep
  fig07_access_profile fig08_sampling_latency fig09_randem_accuracy
  fig10_randem_latency fig11_classify_latency fig12_accuracy
  fig13_speedup fig14_breakdown fig15_batchsize tab06_power
  nvopt_compare abl_sampling abl_randem abl_scheduler abl_budget
  abl_sensitivity abl_overlap ext_multinode
)

cargo build --release --locked -p fae-bench
for b in "${BINS[@]}"; do
  echo "================================================================"
  echo ">> $b"
  cargo run --release --locked -q -p fae-bench --bin "$b"
done
echo "================================================================"
echo "all experiments complete; JSON in results/"
