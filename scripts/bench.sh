#!/usr/bin/env bash
# End-to-end training throughput benchmark. Prints a baseline-vs-FAE
# table and writes results/BENCH_train.json (steps/sec, simulated
# speedup, peak RSS) for cross-checkout comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p fae-bench
cargo run --release -q -p fae-bench --bin bench_train
