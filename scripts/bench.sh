#!/usr/bin/env bash
# Parameterized benchmark runner: builds and runs one fae-bench binary
# in a single cargo dispatch. Defaults to the end-to-end training
# benchmark; pass a binary name for others, e.g.:
#
#   scripts/bench.sh               # bench_train -> results/BENCH_train.json
#   scripts/bench.sh bench_serve   # serving sweep -> results/BENCH_serve.json
#   scripts/bench.sh multinode     # distributed  -> results/BENCH_multinode.json
#   scripts/bench.sh skip          # lookahead/stale-skip ablation -> results/abl_skip.json
#
# Extra arguments after the binary name are forwarded to it.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-bench_train}"
if [ "$#" -gt 0 ]; then shift; fi
# Shorthand aliases for the bench_* binaries.
case "$BIN" in
  train) BIN=bench_train ;;
  serve) BIN=bench_serve ;;
  multinode) BIN=bench_multinode ;;
  obs) BIN=bench_obs ;;
  skip) BIN=bench_train; set -- --abl-skip "$@" ;;
esac
cargo run --release --locked -q -p fae-bench --bin "$BIN" -- "$@"
