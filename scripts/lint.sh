#!/usr/bin/env bash
# Local fae-lint runner (mirrors the CI `lint` job).
#
# Before linting the workspace it runs the must-fail self-test: the
# binary is pointed at each seeded-violation fixture tree and MUST exit
# non-zero, and at each clean twin and MUST exit zero. A lint pass that
# has silently stopped finding anything would otherwise report the
# workspace "clean" forever.
set -uo pipefail
cd "$(dirname "$0")/.."

cargo build --release --locked -p fae-lint || exit 1
BIN=target/release/fae-lint
FIX=crates/fae-lint/fixtures
fail=0

# must_fail LABEL ARGS... — the lint run must find violations (exit 1).
must_fail() {
  local label=$1; shift
  "$BIN" "$@" >/dev/null 2>&1
  local code=$?
  if [ "$code" -ne 1 ]; then
    echo "lint.sh: SELF-TEST FAILED: $label expected exit 1, got $code" >&2
    fail=1
  fi
}

# must_pass LABEL ARGS... — the lint run must come back clean (exit 0).
must_pass() {
  local label=$1; shift
  if ! "$BIN" "$@" >/dev/null 2>&1; then
    echo "lint.sh: SELF-TEST FAILED: $label expected exit 0" >&2
    fail=1
  fi
}

must_fail "determinism fixtures" --tree "$FIX/violations" --det --lib
must_fail "phase-balance fixtures" --tree "$FIX/phases/bad" --lib
must_fail "lock-order fixtures" --tree "$FIX/locks/bad" --lib
must_fail "taint fixtures" --tree "$FIX/taint" --det --lib
must_fail "wire-compat fixtures" --wire "$FIX/wire/bad"
must_fail "net-deadline fixtures" --tree "$FIX/net" --lib --net
must_fail "metric-name fixtures" --tree "$FIX/metrics" --lib --metrics
must_pass "clean det fixtures" --tree "$FIX/clean" --det --lib
must_pass "clean phase fixtures" --tree "$FIX/phases/clean" --lib
must_pass "clean lock fixtures" --tree "$FIX/locks/clean" --lib
must_pass "clean wire fixtures" --wire "$FIX/wire/clean"

if [ "$fail" -ne 0 ]; then
  echo "lint.sh: the linter itself is broken; not linting the workspace" >&2
  exit 1
fi
echo "lint.sh: self-test passed (7 must-fail trees, 4 clean trees)"

# The real run. JSON artifact lands next to the text output for CI upload.
mkdir -p target/lint
"$BIN" --root . --format json > target/lint/report.json
status=$?
"$BIN" --root .
exit $status
