#!/usr/bin/env bash
# Local Miri run over the arithmetic-heavy crates (mirrors the CI `miri`
# job). Miri needs a nightly toolchain with the `miri` component; this
# environment may be offline and unable to install one, so the script
# skips gracefully (exit 0 with a notice) instead of failing — CI is
# where the check is enforced.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly miri --version >/dev/null 2>&1; then
  echo "miri.sh: no nightly toolchain with the miri component available;"
  echo "miri.sh: skipping (run 'rustup +nightly component add miri' when online)."
  exit 0
fi

export MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance}"
exec cargo +nightly miri test --locked -p fae-embed -p fae-data --lib "$@"
