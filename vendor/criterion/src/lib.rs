//! Offline drop-in shim for the subset of `criterion` 0.5 this
//! workspace's benches use. It runs each benchmark for a short, fixed
//! sampling window and prints a mean time per iteration — no warmup
//! modelling, outlier analysis, or HTML reports, but the harness
//! compiles and produces comparable numbers offline.

#![forbid(unsafe_code)]
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver handed to the functions in [`criterion_group!`].
pub struct Criterion {
    /// Target sampling time per benchmark.
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO, budget: self.measure };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group; benches inside print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group (upstream finalizes reports here; no-op for us).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly until the sampling budget is spent,
    /// timing every call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed call so setup effects (lazy allocs, caches) do not
        // dominate short budgets.
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            black_box(routine());
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no iterations)");
            return;
        }
        let per = self.elapsed.as_secs_f64() / self.iters as f64;
        let (scaled, unit) = if per < 1e-6 {
            (per * 1e9, "ns")
        } else if per < 1e-3 {
            (per * 1e6, "µs")
        } else {
            (per * 1e3, "ms")
        };
        println!("{name:<40} {scaled:>10.3} {unit}/iter ({} iters)", self.iters);
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { measure: Duration::from_millis(5) };
        tiny(&mut c);
    }
}
