//! Slice shuffling and selection.

use crate::{Rng, RngCore};

/// Random operations over slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.len());
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input in order");
    }

    #[test]
    fn shuffle_deterministic_under_seed() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
