//! Offline drop-in shim for the subset of the `rand` 0.8 API this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a hermetic implementation. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic under a seed, identical on
//! every platform, and of ample statistical quality for the synthetic
//! workloads and simulations in this repository. The numeric *streams*
//! differ from upstream `rand`'s ChaCha12-based `StdRng`, so seeds
//! produce different (but equally valid) datasets than a crates.io
//! build would.

#![forbid(unsafe_code)]
pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 (the
    /// same expansion upstream `rand` uses for this entry point).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly.
///
/// Mirrors upstream's `SampleUniform` so that `SampleRange` has one
/// *generic* impl per range kind — that shape is what lets type
/// inference flow outward from the call site into untyped integer
/// literals (`rng.gen_range(1..=21)` inferring `usize` from the
/// surrounding arithmetic), exactly as with crates.io `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_uniform_impl {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_uniform_impl!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! float_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + (hi - lo) * unit_f64(rng) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_uniform_impl!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform draw in `[0, bound)` by widening multiply (Lemire), with the
/// `bound == 0` convention meaning the full 64-bit range.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    // Widening multiply maps next_u64 onto [0, bound) with at most one
    // part-in-2^64 bias per bucket — negligible for simulation use, and
    // branch-free/deterministic.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(1..=6i32);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }
}
