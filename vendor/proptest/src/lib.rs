//! Offline drop-in shim for the subset of `proptest` this workspace
//! uses: the [`proptest!`] macro, numeric range strategies, tuple
//! strategies, `prop::collection::vec`, `prop_map` / `prop_flat_map`,
//! and `prop_assert*`.
//!
//! Semantics: each `#[test]` samples `cases` inputs from a
//! deterministically seeded RNG (seed derived from the test's name, so
//! every test explores a different but reproducible stream) and runs
//! the body; assertion macros map to `assert!`/`assert_eq!`. There is
//! no shrinking — a failure reports the panicking case directly.

#![forbid(unsafe_code)]
pub use rand;

use rand::rngs::StdRng;
use rand::Rng;

pub mod collection;

/// Mirrors upstream's `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Mirrors upstream's `prop` path alias (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Test-runner configuration (only `cases` is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A fixed value as a (degenerate) strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Stable 64-bit seed from a test name (FNV-1a), so each `proptest!`
/// test gets its own reproducible stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in -2.0f32..2.0, k in 0u8..=255) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            let _ = k; // full-range inclusive must not panic
        }

        #[test]
        fn tuples_and_vec(pair in (0u32..5, 0.0f64..1.0), v in prop::collection::vec(0u64..9, 1..20)) {
            prop_assert!(pair.0 < 5);
            prop_assert!((1..20).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 9));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(7);
        let s = (1usize..4)
            .prop_flat_map(|n| collection::vec(0u32..10, n..=n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for("a"), seed_for("a"));
    }
}
