//! `prop::collection::vec` — vectors with strategy-driven lengths.

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// A length specification: exact, `a..b`, or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sizes_cover_all_forms() {
        let mut rng = StdRng::seed_from_u64(11);
        let exact = vec(0u32..5, 6);
        assert_eq!(exact.sample(&mut rng).len(), 6);

        let half_open = vec(0u32..5, 1..4);
        for _ in 0..100 {
            let n = half_open.sample(&mut rng).len();
            assert!((1..4).contains(&n));
        }

        let inclusive = vec(0u32..5, 3..=3);
        assert_eq!(inclusive.sample(&mut rng).len(), 3);
    }
}
