//! Offline shim for the subset of `rayon` this workspace uses.
//!
//! Everything executes **sequentially**: `into_par_iter()` hands back
//! the standard iterator and `par_chunks_mut` the standard chunk
//! iterator, so `.map(..).collect()` / `.enumerate().for_each(..)`
//! chains compile unchanged. The workspace's "parallel" stages (input
//! classification, matmul row fan-out) thus stay correct and
//! deterministic, just single-threaded — acceptable for a build
//! environment without crates.io access, and trivially replaceable by
//! real rayon when the registry is reachable.

#![forbid(unsafe_code)]
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

/// Sequential stand-in for rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// The (sequential) iterator returned.
    type Iter: Iterator<Item = Self::Item>;
    /// "Parallel" iteration — sequential in this shim.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item;
    /// The (sequential) iterator returned.
    type Iter: Iterator<Item = Self::Item>;
    /// "Parallel" by-reference iteration — sequential in this shim.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().iter()
    }
}

/// Sequential stand-in for rayon's `ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    /// "Parallel" mutable chunking — sequential in this shim.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chains_compile_and_run() {
        let doubled: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, (0..10).map(|i| i * 2).collect::<Vec<_>>());

        let mut buf = vec![0u32; 12];
        buf.par_chunks_mut(4).enumerate().for_each(|(row, chunk)| {
            for c in chunk {
                *c = row as u32;
            }
        });
        assert_eq!(buf, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);

        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 6);
    }
}
