//! Offline drop-in shim for the subset of the `bytes` crate this
//! workspace uses: little-endian cursor reads over `&[u8]` ([`Buf`]),
//! append-only writes into [`BytesMut`] ([`BufMut`]), and the frozen
//! [`Bytes`] buffer.

#![forbid(unsafe_code)]
use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>` behind `Deref`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Byte length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts to an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Byte length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential little-endian reads from a byte source.
///
/// Implemented for `&[u8]`, where consuming reads advance the slice in
/// place (the caller keeps a `&mut &[u8]` cursor).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes. Panics if fewer remain (callers bounds-check via
    /// [`Buf::remaining`] first).
    fn advance(&mut self, n: usize);
    /// Copies exactly `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.get_u64_le().to_le_bytes())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Appending little-endian writes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(0);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), frozen.len());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
