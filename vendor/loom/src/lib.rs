//! Offline shim for the subset of `loom` this workspace uses.
//!
//! Real loom replaces `std::sync`/`std::thread` with instrumented
//! versions and runs [`model`] under an exhaustive scheduler that
//! explores every interleaving of the model closure. This build
//! environment has no registry access, so this shim substitutes a
//! **stress facade**: the sync/thread modules re-export the `std`
//! primitives unchanged and [`model`] re-runs the closure many times on
//! real OS threads, with a watchdog that turns a deadlock or lost-wakeup
//! hang into a test failure instead of a CI timeout.
//!
//! That keeps the model tests meaningful — racing real threads over
//! dozens of iterations reliably surfaces ordering bugs, double-locks
//! and drop/hangup deadlocks — while compiling against the same source
//! as real loom would. When the registry is reachable, deleting this
//! shim and adding `loom = "0.7"` upgrades the same tests to true
//! exhaustive model checking (gate them behind `cfg(loom)` at that
//! point, as loom's docs prescribe).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// How many times [`model`] re-runs the closure. Overridable with the
/// `LOOM_STRESS_ITERS` environment variable, mirroring loom's own
/// `LOOM_*` configuration knobs.
pub const DEFAULT_ITERS: usize = 64;

/// Per-iteration watchdog budget: a model iteration that has not
/// finished after this long is declared hung (deadlock / lost wakeup)
/// and the test is failed.
pub const WATCHDOG: Duration = Duration::from_secs(30);

/// Runs `f` repeatedly, each iteration on a fresh thread, failing fast
/// if an iteration deadlocks (watchdog) or panics (propagated).
///
/// Semantics match loom's entry point closely enough that tests written
/// against this shim run unmodified under real loom: the closure must be
/// self-contained, take no arguments and re-create its state each call.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters = std::env::var("LOOM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_ITERS)
        .max(1);
    let f = std::sync::Arc::new(f);
    for iter in 0..iters {
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let g = f.clone();
        let handle =
            match std::thread::Builder::new().name(format!("loom-model-{iter}")).spawn(move || {
                g();
                let _ = done_tx.send(());
            }) {
                Ok(h) => h,
                Err(e) => panic!("loom shim could not spawn model thread: {e}"),
            };
        // A panicking closure drops `done_tx` during unwind without
        // sending, so Disconnected means "finished by panicking" — join
        // and re-raise. Only an actual timeout is a hang.
        match done_rx.recv_timeout(WATCHDOG) {
            Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
                Ok(()) => {}
                Err(payload) => std::panic::resume_unwind(payload),
            },
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => panic!(
                "loom model iteration {iter} hung for {WATCHDOG:?} — \
                 deadlock or lost wakeup in the modelled code"
            ),
        }
    }
}

/// `std::sync` re-exports, mirroring `loom::sync`.
pub mod sync {
    pub use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard};

    /// `std::sync::atomic` re-exports, mirroring `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

/// `std::thread` re-exports, mirroring `loom::thread`.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_every_iteration() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        super::model(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    #[should_panic(expected = "seeded model panic")]
    fn model_propagates_panics() {
        super::model(|| panic!("seeded model panic"));
    }
}
