//! Offline drop-in shim for the subset of `rand_distr` 0.4 this
//! workspace uses: [`Normal`], [`Bernoulli`] and [`Zipf`], all behind
//! the re-exported [`Distribution`] trait.
//!
//! `Normal` uses Box–Muller; `Zipf` uses Hörmann & Derflinger's
//! rejection-inversion method (the same algorithm upstream uses), so
//! sampled frequencies follow `p(k) ∝ k^(-s)` over `1..=n` with O(1)
//! memory and no setup tables.

#![forbid(unsafe_code)]
use std::fmt;

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Invalid-parameter error shared by the shim's distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Error type for [`Normal::new`].
pub type NormalError = ParamError;
/// Error type for [`Bernoulli::new`].
pub type BernoulliError = ParamError;
/// Error type for [`Zipf::new`].
pub type ZipfError = ParamError;

/// Float substrate for the generic distributions (f32/f64).
pub trait Float: Copy + PartialOrd {
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
    /// Narrowing from `f64`.
    fn from_f64(v: f64) -> Self;
}

impl Float for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl Float for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

fn unit_open_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // (0, 1]: never returns 0, so ln() below is finite.
    1.0 - (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates the distribution; `std_dev` must be finite and `>= 0`.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        let sd = std_dev.to_f64();
        if !sd.is_finite() || sd < 0.0 {
            return Err(ParamError("normal std_dev must be finite and non-negative"));
        }
        if !mean.to_f64().is_finite() {
            return Err(ParamError("normal mean must be finite"));
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller; the paired variate is discarded to keep the
        // distribution stateless (`&self`).
        let u1 = unit_open_f64(rng);
        let u2 = unit_open_f64(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// Coin flip with success probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates the distribution; `p` must lie in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, BernoulliError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError("bernoulli p outside [0, 1]"));
        }
        Ok(Self { p })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Uniform in [0, 1) from the top 53 bits, compared against p.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.p
    }
}

/// Zipf distribution over `1..=n` with exponent `s`:
/// `p(k) ∝ k^(-s)`. Samples are returned as the float rank.
#[derive(Clone, Copy, Debug)]
pub struct Zipf<F: Float> {
    n: f64,
    s: f64,
    /// `H(n + 1/2)` — upper integration bound.
    h_sup: f64,
    /// `H(1/2)` — lower integration bound.
    h_inf: f64,
    /// Acceptance shortcut constant (Hörmann & Derflinger).
    shortcut: f64,
    _marker: core::marker::PhantomData<F>,
}

impl<F: Float> Zipf<F> {
    /// Creates the distribution over `1..=n`; requires `n >= 1`, `s > 0`.
    pub fn new(n: u64, s: F) -> Result<Self, ZipfError> {
        let s = s.to_f64();
        if n == 0 {
            return Err(ParamError("zipf n must be >= 1"));
        }
        if !(s.is_finite() && s > 0.0) {
            return Err(ParamError("zipf exponent must be positive and finite"));
        }
        let n = n as f64;
        let h_sup = Self::h(s, n + 0.5);
        let h_inf = Self::h(s, 0.5);
        let shortcut = 1.0 - Self::h_inv(s, Self::h(s, 1.5) - 1.0);
        Ok(Self { n, s, h_sup, h_inf, shortcut, _marker: core::marker::PhantomData })
    }

    /// `H(x) = ∫ x^{-s} dx`, the primitive of the density envelope.
    fn h(s: f64, x: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            x.powf(1.0 - s) / (1.0 - s)
        }
    }

    /// Inverse of [`Self::h`].
    fn h_inv(s: f64, y: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            y.exp()
        } else {
            ((1.0 - s) * y).powf(1.0 / (1.0 - s))
        }
    }
}

impl<F: Float> Distribution<F> for Zipf<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Rejection-inversion (Hörmann & Derflinger 1996): invert the
        // continuous envelope H, round to the nearest integer rank, and
        // accept either via the shortcut band or the exact test.
        loop {
            let u = self.h_inf + unit_open_f64(rng) * (self.h_sup - self.h_inf);
            let x = Self::h_inv(self.s, u);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.shortcut || u >= Self::h(self.s, k + 0.5) - (-self.s * k.ln()).exp() {
                return F::from_f64(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0f64, 2.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Bernoulli::new(0.7).unwrap();
        let hits = (0..100_000).filter(|_| d.sample(&mut rng)).count();
        assert!((68_000..72_000).contains(&hits), "{hits}");
        assert!(Bernoulli::new(1.5).is_err());
    }

    #[test]
    fn zipf_rank_one_dominates_and_range_holds() {
        let mut rng = StdRng::seed_from_u64(3);
        let d: Zipf<f64> = Zipf::new(1_000, 1.2).unwrap();
        let mut counts = vec![0u32; 1_001];
        for _ in 0..100_000 {
            let k = d.sample(&mut rng);
            assert!((1.0..=1_000.0).contains(&k), "rank {k} out of range");
            counts[k as usize] += 1;
        }
        let max_idx = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(max_idx, 1, "rank 1 must be the mode");
        // p(1)/p(2) should be ≈ 2^1.2 ≈ 2.3.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((1.9..2.9).contains(&ratio), "p1/p2 ratio {ratio}");
    }

    #[test]
    fn zipf_matches_analytic_head_mass() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10_000u64;
        let s = 1.1;
        let d: Zipf<f64> = Zipf::new(n, s).unwrap();
        let draws = 200_000;
        let mut head = 0u64;
        for _ in 0..draws {
            if d.sample(&mut rng) <= 100.0 {
                head += 1;
            }
        }
        // Analytic head mass: sum_{k<=100} k^-s / sum_{k<=n} k^-s.
        let z = |m: u64| (1..=m).map(|k| (k as f64).powf(-s)).sum::<f64>();
        let expect = z(100) / z(n);
        let got = head as f64 / draws as f64;
        assert!((got - expect).abs() < 0.02, "head mass {got} vs analytic {expect}");
    }

    #[test]
    fn zipf_small_n_and_s_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let d: Zipf<f64> = Zipf::new(1, 1.0).unwrap();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1.0);
        }
        let d3: Zipf<f64> = Zipf::new(3, 1.0).unwrap();
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[d3.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
