//! Offline drop-in shim for the subset of `serde_json` this workspace
//! uses: `to_string[_pretty]` / `to_vec[_pretty]`, `from_str` /
//! `from_slice`, the [`Value`] tree (shared with the `serde` shim) and
//! the [`json!`] macro (flat and nested object literals).
//!
//! The emitted text matches upstream serde_json closely enough to
//! interoperate: 2-space pretty indentation, integers kept integral,
//! floats in shortest round-trip form, non-finite floats as `null`.

#![forbid(unsafe_code)]
mod parse;

pub use parse::from_value_str;
pub use serde::{to_value, Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserializes from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&from_value_str(s)?)
}

/// Deserializes from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from a JSON-looking literal. Supports `null`,
/// nested `{...}` / `[...]` literals with string-literal keys, and
/// arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $crate::json_object_internal!(m, $($body)*);
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`] — munches `"key": value` pairs,
/// recursing into nested `{...}` / `[...]` literals.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($m:ident,) => {};
    ($m:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_internal!($m, $($($rest)*)?);
    };
    ($m:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_internal!($m, $($($rest)*)?);
    };
    ($m:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_internal!($m, $($($rest)*)?);
    };
    ($m:ident, $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::to_value(&$val));
        $crate::json_object_internal!($m, $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_output() {
        let v = json!({"a": 1, "b": [1.5, 2.0], "c": {"nested": true}, "d": "x\"y"});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[1.5,2.0],"c":{"nested":true},"d":"x\"y"}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"));
        assert!(pretty.contains("\"nested\": true"));
    }

    #[test]
    fn parse_round_trip() {
        let v = json!({"name": "rmc2", "vals": [1, -2, 3.5], "flag": false, "none": null});
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_shapes() {
        let label = String::from("w");
        let pairs: Vec<(usize, f64)> = vec![(0, 0.5)];
        let v = json!({
            "workload": label,
            "inner": {"x": 1, "y": {"deep": 2}},
            "hist": pairs,
            "arr": [1, 2],
        });
        assert_eq!(v.get("workload").and_then(Value::as_str), Some("w"));
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("y"))
                .and_then(|y| y.get("deep"))
                .and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(v.get("hist").and_then(Value::as_array).map(Vec::len), Some(1));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3u32), Value::Number(Number::from_u64(3)));
    }

    #[test]
    fn non_finite_floats_become_null_text() {
        let v = to_value(&f64::NAN);
        assert_eq!(to_string(&v).unwrap(), "null");
    }

    #[test]
    fn from_slice_rejects_bad_utf8() {
        assert!(from_slice::<Value>(&[0xFF, 0xFE]).is_err());
    }
}
