//! Recursive-descent JSON parser producing [`Value`] trees.

use serde::{Error, Map, Number, Value};

const MAX_DEPTH: usize = 128;

/// Parses JSON text into a [`Value`]. Trailing non-whitespace is an
/// error, as in upstream serde_json.
pub fn from_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null").map(|_| Value::Null),
            Some(b't') => self.literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.literal("\\u")?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                c if c < 0x20 => return Err(Error::msg("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a valid &str, so
                    // re-decode the char starting one byte back.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_value_str("null").unwrap(), Value::Null);
        assert_eq!(from_value_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_value_str("-12").unwrap(), Value::Number(Number::from_i64(-12)));
        assert_eq!(from_value_str("3.5e2").unwrap(), Value::Number(Number::from_f64(350.0)));
        assert_eq!(from_value_str(r#""a\nbé😀""#).unwrap(), Value::String("a\nbé😀".to_string()));
    }

    #[test]
    fn parses_nested() {
        let v = from_value_str(r#" {"a": [1, {"b": "x"}], "c": {} } "#).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.as_array()).map(Vec::len), Some(2));
        assert!(v.get("c").and_then(Value::as_object).unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_value_str("").is_err());
        assert!(from_value_str("{").is_err());
        assert!(from_value_str("[1,]").is_err());
        assert!(from_value_str("nul").is_err());
        assert!(from_value_str("1 2").is_err());
        assert!(from_value_str(r#"{"a" 1}"#).is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_value_str(&deep).is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = from_value_str("\"héllo — ok\"").unwrap();
        assert_eq!(v, Value::String("héllo — ok".to_string()));
    }
}
