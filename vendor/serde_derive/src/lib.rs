//! Offline `#[derive(Serialize, Deserialize)]` shim for the `serde`
//! shim, written against `proc_macro` directly (no syn/quote, which
//! aren't available offline).
//!
//! Supported shapes — exactly what this workspace derives:
//! - structs with named fields,
//! - one-field tuple ("newtype") structs, serialized as the inner value,
//! - enums with unit variants (as `"Variant"` strings) and struct
//!   variants (externally tagged: `{"Variant": {..}}`).
//!
//! Generics, tuple structs of arity > 1, tuple enum variants and
//! `#[serde(...)]` attributes are rejected with a compile error rather
//! than silently mis-serialized.

#![forbid(unsafe_code)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named { fields: Vec<String> },
    Newtype,
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(field names)` for struct variants.
    fields: Option<Vec<String>>,
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "type name");

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named { fields: parse_named_fields(g.stream(), &name) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_top_level_commas(g.stream()) > 0 {
                    panic!(
                        "serde shim derive: tuple struct `{name}` with more than one \
                         field is not supported"
                    );
                }
                Shape::Newtype
            }
            other => panic!("serde shim derive: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum { variants: parse_variants(g.stream(), &name) }
            }
            other => panic!("serde shim derive: unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("serde shim derive: expected `struct` or `enum`, found `{other}`"),
    };

    Item { name, shape }
}

/// Skips `#[...]` / `#![...]` attributes (incl. desugared doc comments)
/// and a `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Punct(bang)) = tokens.get(*i) {
                    if bang.as_char() == '!' {
                        *i += 1;
                    }
                }
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
                    other => panic!("serde shim derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected {what}, found {other:?}"),
    }
}

/// Field names from `{ name: Type, ... }`; types are skipped
/// angle-bracket-aware (groups arrive as single tokens).
fn parse_named_fields(stream: TokenStream, owner: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i, "field name");
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after `{owner}.{field}`: {other:?}"),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_variants(stream: TokenStream, owner: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "variant name");
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream(), &format!("{owner}::{name}"));
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple variant `{owner}::{name}` is not supported");
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde shim derive: discriminant on `{owner}::{name}` is not supported");
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn count_top_level_commas(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0;
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                // A trailing comma doesn't make it a 2-tuple.
                ',' if angle_depth == 0 && idx + 1 < tokens.len() => commas += 1,
                _ => {}
            }
        }
    }
    commas
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named { fields } => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum { variants } => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        s.push_str(&format!("{name}::{vn} {{ {bindings} }} => {{\n"));
                        s.push_str("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            s.push_str(&format!(
                                "inner.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        s.push_str("let mut m = ::serde::Map::new();\n");
                        s.push_str(&format!(
                            "m.insert(\"{vn}\".to_string(), ::serde::Value::Object(inner));\n"
                        ));
                        s.push_str("::serde::Value::Object(m)\n}\n");
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named { fields } => {
            let mut s = format!("let m = v.as_object_for(\"{name}\")?;\n");
            s.push_str(&format!("::core::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!("{f}: ::serde::field(m, \"{f}\", \"{name}\")?,\n"));
            }
            s.push_str("})");
            s
        }
        Shape::Newtype => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut obj_arms = String::new();
            let has_struct_variant = variants.iter().any(|v| v.fields.is_some());
            let inner_binding = if has_struct_variant { "inner" } else { "_inner" };
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Some(fields) => {
                        obj_arms.push_str(&format!("\"{vn}\" => {{\n"));
                        obj_arms.push_str(&format!(
                            "let im = inner.as_object_for(\"{name}::{vn}\")?;\n"
                        ));
                        obj_arms.push_str(&format!("::core::result::Result::Ok({name}::{vn} {{\n"));
                        for f in fields {
                            obj_arms.push_str(&format!(
                                "{f}: ::serde::field(im, \"{f}\", \"{name}::{vn}\")?,\n"
                            ));
                        }
                        obj_arms.push_str("})\n}\n");
                    }
                }
            }
            format!(
                "match v {{\n\
                   ::serde::Value::String(s) => match s.as_str() {{\n\
                     {unit_arms}\
                     other => ::core::result::Result::Err(::serde::Error::msg(\
                       format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                   }},\n\
                   ::serde::Value::Object(m) => {{\n\
                     let (tag, {inner_binding}) = match m.iter().next() {{\n\
                       ::core::option::Option::Some(kv) => kv,\n\
                       ::core::option::Option::None => return ::core::result::Result::Err(\
                         ::serde::Error::msg(\"{name}: empty variant object\")),\n\
                     }};\n\
                     match tag.as_str() {{\n\
                       {obj_arms}\
                       other => ::core::result::Result::Err(::serde::Error::msg(\
                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }}\n\
                   }},\n\
                   other => ::core::result::Result::Err(::serde::Error::msg(\
                     format!(\"{name}: expected a string or object, got {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}
