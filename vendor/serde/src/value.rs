//! The JSON-shaped value tree shared by the `serde` and `serde_json`
//! shims.

use std::fmt;

use crate::Error;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integer fidelity is preserved).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }

    /// The number, if this is one.
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The float value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::as_f64)
    }

    /// The unsigned value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_number().and_then(Number::as_u64)
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object lookup by key (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// The object map, or a typed error naming the expected type
    /// (used by derived `Deserialize` impls).
    pub fn as_object_for(&self, ty: &'static str) -> Result<&Map, Error> {
        self.as_object()
            .ok_or_else(|| Error::msg(format!("{ty}: expected an object, got {}", self.kind())))
    }
}

/// A JSON number, keeping integers exact.
#[derive(Clone, Copy, Debug)]
pub struct Number(N);

#[derive(Clone, Copy, Debug)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// From an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number(N::PosInt(v))
    }

    /// From a signed integer.
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number(N::PosInt(v as u64))
        } else {
            Number(N::NegInt(v))
        }
    }

    /// From a float.
    pub fn from_f64(v: f64) -> Self {
        Number(N::Float(v))
    }

    /// Widens to `f64` (lossy for huge integers, like upstream).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        }
    }

    /// The exact unsigned value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The exact signed value, if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this number was an integer token.
    pub fn is_integer(&self) -> bool {
        !matches!(self.0, N::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            N::Float(v) if v.is_finite() => {
                // Rust's shortest round-trip repr; force a `.0` onto
                // integral floats so the token re-parses as a float.
                let s = format!("{v}");
                if s.contains(['.', 'e', 'E']) {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
            // Upstream serde_json emits null for non-finite floats; at
            // the Display level the closest stand-in is `null` too.
            N::Float(_) => f.write_str("null"),
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map(Vec<(String, Value)>);

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map(Vec::new())
    }

    /// Inserts, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.0.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.0.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.0.iter().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Bool(true));
        m.insert("b".into(), Value::Null);
        m.insert("a".into(), Value::Bool(false));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("a"), Some(&Value::Bool(false)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn number_fidelity() {
        assert_eq!(Number::from_u64(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(Number::from_i64(-5).as_i64(), Some(-5));
        assert_eq!(Number::from_i64(7).as_u64(), Some(7));
        assert!(Number::from_f64(1.5).as_u64().is_none());
        assert_eq!(format!("{}", Number::from_f64(2.0)), "2.0");
        assert_eq!(format!("{}", Number::from_f64(0.25)), "0.25");
        assert_eq!(format!("{}", Number::from_u64(3)), "3");
    }
}
