//! Offline drop-in shim for the subset of `serde` this workspace uses.
//!
//! Instead of upstream's serializer/visitor architecture, this shim
//! routes everything through a JSON-shaped [`Value`] tree:
//! [`Serialize`] renders a type *to* a [`Value`] and [`Deserialize`]
//! rebuilds it *from* one. The companion `serde_json` shim handles the
//! text encoding, and the `serde_derive` shim generates these two
//! methods for structs and enums. The data model (externally tagged
//! enums, newtype structs as their inner value, missing `Option`
//! fields as `None`) matches upstream serde_json, so files written by
//! the real crates parse identically.

#![forbid(unsafe_code)]
mod value;

pub use value::{Map, Number, Value};

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Deserialization error (shared with the `serde_json` shim).
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON-shaped value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts a value tree back into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called for a struct field whose key is absent. Only `Option`
    /// yields a value (upstream's `missing_field` behaviour).
    fn missing(key: &str) -> Result<Self, Error> {
        Err(Error::msg(format!("missing field `{key}`")))
    }
}

/// Free-function form of [`Serialize::to_value`].
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Looks up (or defaults) one struct field during derived
/// deserialization. Public for the derive macro's generated code.
pub fn field<T: Deserialize>(m: &Map, key: &str, ty: &'static str) -> Result<T, Error> {
    match m.get(key) {
        Some(v) => T::from_value(v).map_err(|e| Error::msg(format!("{ty}.{key}: {e}"))),
        None => T::missing(key).map_err(|e| Error::msg(format!("{ty}: {e}"))),
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_number().ok_or_else(|| type_err(v, "an integer"))?;
                let u = n.as_u64().ok_or_else(|| type_err(v, "an unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| {
                    Error::msg(format!("integer {u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_number().ok_or_else(|| type_err(v, "an integer"))?;
                let i = n.as_i64().ok_or_else(|| type_err(v, "a signed integer"))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::msg(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

fn type_err(v: &Value, want: &str) -> Error {
    Error::msg(format!("invalid type: expected {want}, got {}", v.kind()))
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_number().map(|n| n.as_f64()).ok_or_else(|| type_err(v, "a number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err(other, "a boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(type_err(other, "a string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing(_key: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_err(other, "an array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Array(items) => items,
            other => return Err(type_err(other, "an array")),
        };
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected an array of length {N}, got {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into().map_err(|_| Error::msg("array length changed during conversion"))
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => return Err(type_err(other, "a tuple array")),
                };
                let want = 0usize $(+ { let _ = $idx; 1 })+;
                if items.len() != want {
                    return Err(Error::msg(format!(
                        "expected a tuple of length {want}, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi".to_string());
    }

    #[test]
    fn integers_accept_integer_numbers_only() {
        assert!(u32::from_value(&Value::Number(Number::from_f64(1.5))).is_err());
        assert!(u32::from_value(&Value::Number(Number::from_i64(-1))).is_err());
        // Floats accept integer-valued numbers (JSON `1` vs `1.0`).
        assert_eq!(f64::from_value(&Value::Number(Number::from_u64(3))).unwrap(), 3.0);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);

        let arr = [0.5f64; 8];
        assert_eq!(<[f64; 8]>::from_value(&arr.to_value()).unwrap(), arr);

        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        assert_eq!(Option::<u32>::missing("x").unwrap(), None);
        assert!(u32::missing("x").is_err());

        let pair = (3usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn wrong_array_len_errors() {
        let v = vec![1.0f64; 7].to_value();
        assert!(<[f64; 8]>::from_value(&v).is_err());
    }
}
