//! Quickstart: the whole FAE pipeline on a tiny synthetic workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a Zipf-skewed dataset, calibrates the hot-embedding
//! threshold, packs pure hot/cold mini-batches, then trains the same DLRM
//! under the CPU+GPU baseline and under FAE, printing accuracy parity and
//! the simulated speedup.

use fae::core::{pipeline, CalibratorConfig, PreprocessConfig, TrainConfig};
use fae::data::{generate, GenOptions, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::tiny_test();
    println!("workload: {} ({} tables, dim {})", spec.name, spec.tables.len(), spec.embedding_dim);

    let dataset = generate(&spec, &GenOptions::sized(42, 12_000));
    let (train, test) = dataset.split(0.2);
    println!("dataset: {} train / {} test samples", train.len(), test.len());

    // Static phase (once per dataset): calibrate → classify → preprocess.
    // A budget tight enough (and a small-table rule scaled down to this
    // toy's table sizes) that the calibrator must pick a real threshold,
    // so both hot and cold mini-batches appear.
    let artifacts = pipeline::prepare(
        &train,
        CalibratorConfig {
            gpu_budget_bytes: 48 << 10,
            small_table_bytes: 2 << 10,
            ..Default::default()
        },
        &PreprocessConfig { minibatch_size: 64, seed: 7 },
    );
    let cal = &artifacts.calibration;
    println!(
        "calibration: threshold t = {:.0e}, sampled {} inputs, est hot bytes = {:.1} KiB (fits: {})",
        cal.threshold,
        cal.sampled_inputs,
        cal.est_hot_bytes / 1024.0,
        cal.fits_budget
    );
    let pre = &artifacts.preprocessed;
    println!(
        "input processor: {:.1}% hot inputs -> {} hot / {} cold mini-batches",
        pre.hot_input_fraction * 100.0,
        pre.hot_batches.len(),
        pre.cold_batches.len()
    );

    // Runtime phase: identical model/seed under both execution modes.
    let cfg = TrainConfig { epochs: 2, minibatch_size: 64, ..Default::default() };
    let (base, fae) = pipeline::compare(&spec, &train, &test, &artifacts, &cfg);

    println!("\n{:<22} {:>12} {:>12}", "", "baseline", "FAE");
    println!(
        "{:<22} {:>11.2}% {:>11.2}%",
        "test accuracy",
        base.final_test.accuracy * 100.0,
        fae.final_test.accuracy * 100.0
    );
    println!("{:<22} {:>11.4} {:>11.4}", "test loss", base.final_test.loss, fae.final_test.loss);
    println!(
        "{:<22} {:>11.2}s {:>11.2}s",
        "simulated time", base.simulated_seconds, fae.simulated_seconds
    );
    println!(
        "{:<22} {:>11.1}W {:>11.1}W",
        "avg GPU power", base.avg_gpu_power_w, fae.avg_gpu_power_w
    );
    println!(
        "\nFAE speedup: {:.2}x  (hot steps: {}, cold steps: {}, syncs: {})",
        base.simulated_seconds / fae.simulated_seconds,
        fae.hot_steps,
        fae.cold_steps,
        fae.transitions
    );
}
