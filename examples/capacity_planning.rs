//! Capacity planning: what does the GPU memory budget buy you?
//!
//! The calibrator's single knob is `L`, the GPU bytes reserved for hot
//! embeddings. This example sweeps L on a Criteo-shaped workload and
//! prints the threshold / hot-set / hot-input / estimated-speedup ladder,
//! so an operator can size L for their GPU fleet — the deployment story
//! of §III-A.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use fae::core::{pipeline, CalibratorConfig, PreprocessConfig, TrainConfig};
use fae::data::{generate, GenOptions, WorkloadSpec};

fn main() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 30_000;
    let dataset = generate(&spec, &GenOptions::seeded(99));
    let (train, test) = dataset.split(0.2);

    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>10}",
        "budget", "threshold", "hot inputs", "sim speedup", "test acc"
    );
    for budget_kb in [128usize, 512, 2048, 8192] {
        let artifacts = pipeline::prepare(
            &train,
            CalibratorConfig {
                gpu_budget_bytes: budget_kb << 10,
                small_table_bytes: 16 << 10,
                ..Default::default()
            },
            &PreprocessConfig { minibatch_size: 256, seed: 4 },
        );
        let cfg = TrainConfig { epochs: 1, minibatch_size: 256, ..Default::default() };
        let (base, fae) = pipeline::compare(&spec, &train, &test, &artifacts, &cfg);
        println!(
            "{:>7}KiB {:>10.0e} {:>13.1}% {:>11.2}x {:>9.2}%",
            budget_kb,
            artifacts.calibration.threshold,
            artifacts.preprocessed.hot_input_fraction * 100.0,
            base.simulated_seconds / fae.simulated_seconds,
            fae.final_test.accuracy * 100.0
        );
    }
    println!("\nlarger budgets admit more hot inputs (higher speedup) until returns flatten;");
    println!("the paper finds L = 256 MB sufficient for all three full-scale datasets.");
}
