//! Data-parallel replicas with explicit synchronisation — a numerical
//! demonstration of §II-B challenge 3: "copies of the hot embedding
//! tables are replicated across all the GPU devices" and stay consistent
//! through one all-reduce per step.
//!
//! Trains the same workload 1-way and 4-way data-parallel and shows the
//! parameters agree to f32 precision, and the replicas never diverge.
//!
//! ```sh
//! cargo run --release --example distributed_replicas
//! ```

use fae::core::distributed::{full_batch, DataParallel};
use fae::data::{generate, BatchKind, GenOptions, MiniBatch, WorkloadSpec};
use fae::models::RecModel;

fn main() {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(17, 2_048));

    let mut single = DataParallel::replicate(&spec, 1, 99);
    let mut quad = DataParallel::replicate(&spec, 4, 99);

    println!("training 1-way vs 4-way data-parallel on identical batches...");
    for step in 0..16 {
        let ids: Vec<usize> = (step * 128..(step + 1) * 128).collect();
        let mb = MiniBatch::gather(&ds, &ids, BatchKind::Unclassified);
        let l1 = single.train_step(&mb, 0.05);
        let l4 = quad.train_step(&mb, 0.05);
        if step % 4 == 0 {
            println!(
                "  step {step:>2}: loss 1-way {l1:.5} | 4-way {l4:.5} | replica divergence {:.1e}",
                quad.max_divergence()
            );
        }
    }

    let mut p1 = Vec::new();
    single.model(0).write_params(&mut p1);
    let mut p4 = Vec::new();
    quad.model(0).write_params(&mut p4);
    let max_diff = p1.iter().zip(&p4).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    println!("\nmax dense-parameter difference 1-way vs 4-way: {max_diff:.2e}");
    println!("replica divergence after training: {:.1e}", quad.max_divergence());
    println!(
        "=> sharded training + one all-reduce per step is numerically the same as \
         single-device SGD, which is why FAE can replicate hot embeddings freely."
    );

    // A final sanity batch to show predictions agree too.
    let test = full_batch(&ds, 256);
    use fae::models::{evaluate, MasterEmbeddings};
    let e1 = {
        let tables = single.embeddings(0).tables().expect("f32 master in this example");
        let emb = MasterEmbeddings::from_tables(tables.to_vec());
        evaluate(single.model(0), &emb, std::slice::from_ref(&test))
    };
    let e4 = {
        let tables = quad.embeddings(0).tables().expect("f32 master in this example");
        let emb = MasterEmbeddings::from_tables(tables.to_vec());
        evaluate(quad.model(0), &emb, &[test])
    };
    println!("eval: 1-way loss {:.6} vs 4-way loss {:.6}", e1.loss, e4.loss);
}
