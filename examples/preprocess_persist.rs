//! Preprocess once, train many times: the FAE on-disk format.
//!
//! §III-B: the calibrator and input processor run *once* per dataset; the
//! pure hot/cold mini-batch stream is persisted "in the FAE format for any
//! subsequent training runs". This example writes the container, reloads
//! it in a fresh "session", and trains from the reloaded stream.
//!
//! ```sh
//! cargo run --release --example preprocess_persist
//! ```

use fae::core::{pipeline, CalibratorConfig, PreprocessConfig, Preprocessed, TrainConfig};
use fae::data::format::FaeFile;
use fae::data::{generate, BatchKind, GenOptions, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::tiny_test();
    let dataset = generate(&spec, &GenOptions::sized(8, 8_000));
    let (train, test) = dataset.split(0.2);

    // ---- Session 1: static preprocessing, persisted to disk. ----
    let artifacts = pipeline::prepare(
        &train,
        CalibratorConfig::default(),
        &PreprocessConfig { minibatch_size: 64, seed: 9 },
    );
    let path = std::env::temp_dir().join("fae-demo-stream.fae");
    let file = artifacts.preprocessed.to_fae_file(&spec.name);
    file.write_file(&path).expect("write FAE container");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "wrote {} batches ({} hot / {} cold) -> {} ({:.1} KiB)",
        file.batches.len(),
        file.hot_count(),
        file.cold_count(),
        path.display(),
        bytes as f64 / 1024.0
    );

    // ---- Session 2: reload and train without re-running the static phase. ----
    let reloaded = FaeFile::read_file(&path).expect("read FAE container");
    println!("reloaded workload '{}' with {} batches", reloaded.workload, reloaded.batches.len());
    let (hot, cold): (Vec<_>, Vec<_>) =
        reloaded.batches.into_iter().partition(|b| b.kind == BatchKind::Hot);
    let pre = Preprocessed {
        hot_batches: hot,
        cold_batches: cold,
        hot_input_fraction: 0.0, // informational only; not needed to train
        partitions: artifacts.preprocessed.partitions.clone(),
    };

    let cfg = TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() };
    let report = fae::core::train_fae(&spec, &pre, &test, &cfg);
    println!(
        "trained from reloaded stream: test acc {:.2}%, {:.2}s simulated, {} syncs",
        report.final_test.accuracy * 100.0,
        report.simulated_seconds,
        report.transitions
    );
    std::fs::remove_file(&path).ok();
}
