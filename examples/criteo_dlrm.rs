//! Criteo-Kaggle-shaped DLRM training (the paper's RMC2 workload), scaled
//! to run on a laptop CPU.
//!
//! ```sh
//! cargo run --release --example criteo_dlrm
//! ```
//!
//! Reproduces the experiment design of Fig 13: the same workload trained
//! under the baseline and FAE on 1, 2 and 4 simulated GPUs with weak
//! scaling (mini-batch grows with GPU count), printing the speedup table.

use fae::core::{pipeline, CalibratorConfig, PreprocessConfig, TrainConfig};
use fae::data::{generate, GenOptions, WorkloadSpec};

fn main() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    // Keep the 26-table Criteo shape but fewer inputs so the run is quick.
    spec.num_inputs = 24_000;
    let per_gpu_batch = 256usize;

    println!(
        "workload: {} — {} tables, dim {}, {:.1} MiB of embeddings",
        spec.name,
        spec.tables.len(),
        spec.embedding_dim,
        spec.embedding_bytes() as f64 / (1 << 20) as f64
    );

    let dataset = generate(&spec, &GenOptions::seeded(2021));
    let (train, test) = dataset.split(0.15);

    // Budget small enough that the calibrator must choose a real threshold.
    let artifacts = pipeline::prepare(
        &train,
        CalibratorConfig { gpu_budget_bytes: 4 << 20, ..Default::default() },
        &PreprocessConfig { minibatch_size: per_gpu_batch, seed: 11 },
    );
    println!(
        "calibrated threshold t = {:.0e}; hot inputs {:.1}%; {} hot / {} cold batches",
        artifacts.calibration.threshold,
        artifacts.preprocessed.hot_input_fraction * 100.0,
        artifacts.preprocessed.hot_batches.len(),
        artifacts.preprocessed.cold_batches.len()
    );

    println!(
        "\n{:>5} {:>8} {:>14} {:>14} {:>9} {:>10} {:>10}",
        "GPUs", "batch", "baseline (s)", "FAE (s)", "speedup", "base acc", "FAE acc"
    );
    for gpus in [1usize, 2, 4] {
        let cfg = TrainConfig {
            epochs: 1,
            minibatch_size: per_gpu_batch, // batches were packed per-GPU-batch;
            num_gpus: gpus,                // cost model scales weakly inside
            ..Default::default()
        };
        let (base, fae) = pipeline::compare(&spec, &train, &test, &artifacts, &cfg);
        println!(
            "{:>5} {:>8} {:>14.2} {:>14.2} {:>8.2}x {:>9.2}% {:>9.2}%",
            gpus,
            per_gpu_batch * gpus,
            base.simulated_seconds,
            fae.simulated_seconds,
            base.simulated_seconds / fae.simulated_seconds,
            base.final_test.accuracy * 100.0,
            fae.final_test.accuracy * 100.0
        );
    }
    println!("\n(paper Fig 13: FAE averages 2.34x over the baseline at 4 GPUs)");
}
