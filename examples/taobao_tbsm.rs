//! Taobao-shaped TBSM training (the paper's RMC1 workload): behaviour
//! sequences, attention, and the shuffle scheduler's rate dynamics.
//!
//! ```sh
//! cargo run --release --example taobao_tbsm
//! ```

use fae::core::{pipeline, CalibratorConfig, PreprocessConfig, TrainConfig};
use fae::data::{generate, GenOptions, WorkloadSpec};

fn main() {
    let mut spec = WorkloadSpec::rmc1_taobao();
    // Shrink the id spaces and input count for a fast demo run.
    spec.tables[0].rows = 8_000; // items
    spec.tables[1].rows = 400; // categories
    spec.tables[2].rows = 2_000; // users
    spec.num_inputs = 10_000;

    println!(
        "workload: {} — sequences up to {} steps over {} items",
        spec.name, spec.tables[0].lookups_per_input, spec.tables[0].rows
    );

    let dataset = generate(&spec, &GenOptions::seeded(27));
    let (train, test) = dataset.split(0.2);

    let artifacts = pipeline::prepare(
        &train,
        CalibratorConfig { gpu_budget_bytes: 200 << 10, ..Default::default() },
        &PreprocessConfig { minibatch_size: 128, seed: 3 },
    );
    println!(
        "hot inputs: {:.1}%  ({} hot / {} cold batches) — sequences make hot \
         purity harder: every step of every sequence must hit hot rows",
        artifacts.preprocessed.hot_input_fraction * 100.0,
        artifacts.preprocessed.hot_batches.len(),
        artifacts.preprocessed.cold_batches.len()
    );

    let cfg = TrainConfig { epochs: 2, minibatch_size: 128, lr: 0.03, ..Default::default() };
    let (base, fae) = pipeline::compare(&spec, &train, &test, &artifacts, &cfg);

    println!("\nscheduler trajectory (iteration, test loss, rate):");
    for p in fae.history.iter().take(12) {
        println!(
            "  iter {:>5}  loss {:.4}  acc {:>6.2}%  rate R({})",
            p.iteration,
            p.test_loss,
            p.test_accuracy * 100.0,
            p.rate.unwrap_or(0)
        );
    }
    println!(
        "\nbaseline: acc {:.2}% in {:.1}s | FAE: acc {:.2}% in {:.1}s ({:.2}x)",
        base.final_test.accuracy * 100.0,
        base.simulated_seconds,
        fae.final_test.accuracy * 100.0,
        fae.simulated_seconds,
        base.simulated_seconds / fae.simulated_seconds
    );
}
