//! # fae — Frequently Accessed Embeddings
//!
//! A Rust reproduction of *"Accelerating Recommendation System Training by
//! Leveraging Popular Choices"* (VLDB 2021): training deep recommendation
//! models faster by replicating the *hot* (heavily accessed) slice of the
//! embedding tables onto every GPU and running hot mini-batches entirely
//! on-device.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`nn`] | `fae-nn` | tensors, MLP layers, losses, SGD |
//! | [`embed`] | `fae-embed` | embedding tables, hot/cold partitions, replication |
//! | [`data`] | `fae-data` | synthetic Criteo/Taobao-shaped workloads, FAE format |
//! | [`sysmodel`] | `fae-sysmodel` | CPU+GPU performance & power model |
//! | [`models`] | `fae-models` | DLRM and TBSM |
//! | [`core`] | `fae-core` | calibrator, classifier, input processor, scheduler, trainer |
//! | [`telemetry`] | `fae-telemetry` | metrics registry, spans, step journal, Chrome-trace export |
//! | [`serve`] | `fae-serve` | inference: micro-batcher, frequency-aware cache, load generator |
//! | [`net`] | `fae-net` | multi-node training: wire protocol, failure detector, elastic membership |
//!
//! ## Quickstart
//!
//! ```
//! use fae::core::{pipeline, CalibratorConfig, PreprocessConfig, TrainConfig};
//! use fae::data::{generate, GenOptions, WorkloadSpec};
//!
//! // A Criteo-Kaggle-shaped workload, scaled down for a fast demo.
//! let spec = WorkloadSpec::tiny_test();
//! let dataset = generate(&spec, &GenOptions::sized(1, 4_000));
//! let (train, test) = dataset.split(0.2);
//!
//! // Static phase: calibrate the hot threshold, classify rows, pack
//! // pure hot/cold mini-batches.
//! let artifacts = pipeline::prepare(
//!     &train,
//!     CalibratorConfig::default(),
//!     &PreprocessConfig { minibatch_size: 64, seed: 7 },
//! );
//!
//! // Runtime phase: train baseline vs FAE on the same data.
//! let cfg = TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() };
//! let (baseline, fae) = pipeline::compare(&spec, &train, &test, &artifacts, &cfg);
//! assert!(fae.simulated_seconds <= baseline.simulated_seconds);
//! ```

#![forbid(unsafe_code)]
pub use fae_core as core;
pub use fae_data as data;
pub use fae_embed as embed;
pub use fae_models as models;
pub use fae_net as net;
pub use fae_nn as nn;
pub use fae_serve as serve;
pub use fae_sysmodel as sysmodel;
pub use fae_telemetry as telemetry;
