//! `fae` — command-line driver for the FAE pipeline.
//!
//! ```text
//! fae gen        --workload <name> [--inputs N] [--seed S]        # describe a workload
//! fae calibrate  --workload <name> [--inputs N] [--budget-mb M]   # run the calibrator
//! fae preprocess --workload <name> --out <file.fae> [...]         # static phase to disk
//! fae train      --stream <file.fae> --workload <name> [...]      # FAE training from disk
//! fae compare    --workload <name> [--inputs N] [--gpus G] [...]  # baseline vs FAE
//! fae serve      --workload <name> [--checkpoint-dir D] [...]      # inference serving
//! fae bench-serve [--workload <name>] [--requests N]               # saturation sweep
//! fae node       --connect ADDR --node-id K --workers N [...]     # join a distributed run
//! fae report     <journal.jsonl>                                  # phase-breakdown table
//! ```
//!
//! `fae train --distributed N` promotes a training run to multi-process:
//! it binds a localhost coordinator port, spawns `N` `fae node` children
//! against it, and trains through the fault-tolerant wire protocol in
//! `fae-net` — bit-identical to the in-process engine with the same
//! worker count.
//!
//! Argument parsing is deliberately dependency-free (flag pairs only).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fae::core::input_processor::Preprocessed;
use fae::core::{
    artifacts, latest_in, pipeline, train_fae_with_engine, CalibratorConfig, FaultInjector,
    FaultPlan, PreprocessConfig, ResilienceOptions, RetryPolicy, TrainCheckpoint, TrainConfig,
    TrainReport,
};
use fae::data::{generate, Dataset, GenOptions, WorkloadSpec};
use fae::net::{run_node, NetConfig, NodeConfig, RemoteEngine};
use fae::serve::{
    calibrate_partitions, open_loop_requests, saturation_sweep, sweep_json, RequestTrace,
    ServeConfig, ServeEngine, ServeLoad,
};
use fae::telemetry::{self, AlertEngine, TaggedEvent, Telemetry};

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = Vec::new();
        let mut it = argv.iter();
        while let Some(k) = it.next() {
            let key = k.strip_prefix("--").ok_or_else(|| format!("expected --flag, got '{k}'"))?;
            let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            flags.push((key.to_string(), v.clone()));
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }
}

fn workload_from(args: &Args) -> Result<WorkloadSpec, String> {
    if let Some(path) = args.get("spec-file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--spec-file: {e}"))?;
        return WorkloadSpec::from_json(&text).map_err(|e| format!("--spec-file: {e}"));
    }
    workload(args.get("workload").ok_or("--workload or --spec-file required")?)
}

fn workload(name: &str) -> Result<WorkloadSpec, String> {
    match name {
        "tiny" | "tiny-test" => Ok(WorkloadSpec::tiny_test()),
        "kaggle" | "rmc2" => Ok(WorkloadSpec::rmc2_kaggle()),
        "taobao" | "rmc1" => Ok(WorkloadSpec::rmc1_taobao()),
        "terabyte" | "rmc3" => Ok(WorkloadSpec::rmc3_terabyte()),
        other => {
            Err(format!("unknown workload '{other}' (expected tiny | kaggle | taobao | terabyte)"))
        }
    }
}

fn calibrator_config(args: &Args, spec: &WorkloadSpec) -> Result<CalibratorConfig, String> {
    let budget_mb: usize = args.num("budget-mb", 0)?;
    let budget = if budget_mb > 0 { budget_mb << 20 } else { spec.embedding_bytes() / 8 };
    Ok(CalibratorConfig {
        gpu_budget_bytes: budget,
        small_table_bytes: args.num("small-table-kb", 8usize)? << 10,
        sample_rate: args.num("sample-rate", 0.05f64)?,
        ..Default::default()
    })
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let spec = workload_from(args)?;
    let inputs: usize = args.num("inputs", spec.num_inputs.min(50_000))?;
    let ds = generate(&spec, &GenOptions::sized(args.num("seed", 1u64)?, inputs));
    println!(
        "workload {}: {} tables, dim {}, {} dense features",
        spec.name,
        spec.tables.len(),
        spec.embedding_dim,
        spec.dense_features
    );
    println!("embedding footprint: {:.1} MiB", spec.embedding_bytes() as f64 / (1 << 20) as f64);
    println!("generated {} inputs, positive rate {:.1}%", ds.len(), ds.positive_rate() * 100.0);
    Ok(())
}

fn cmd_calibrate(args: &Args) -> Result<(), String> {
    let spec = workload_from(args)?;
    let inputs: usize = args.num("inputs", spec.num_inputs.min(50_000))?;
    let ds = generate(&spec, &GenOptions::sized(args.num("seed", 1u64)?, inputs));
    let cal = fae::core::Calibrator::new(calibrator_config(args, &spec)?).calibrate(&ds);
    println!("threshold t = {:.0e} ({} inputs sampled)", cal.threshold, cal.sampled_inputs);
    println!(
        "estimated hot bag: {:.2} MiB (budget fit: {})",
        cal.est_hot_bytes / (1 << 20) as f64,
        cal.fits_budget
    );
    for (i, t) in cal.tables.iter().enumerate() {
        println!(
            "  table {i:>2}: cutoff {:>4}  est hot rows {:>10.0}{}",
            t.cutoff,
            t.est_hot_rows,
            if t.de_facto_hot { "  (de-facto hot: < 1 MB)" } else { "" }
        );
    }
    Ok(())
}

fn cmd_preprocess(args: &Args) -> Result<(), String> {
    let spec = workload_from(args)?;
    let out = PathBuf::from(args.get("out").ok_or("--out required")?);
    let inputs: usize = args.num("inputs", spec.num_inputs.min(50_000))?;
    let ds = generate(&spec, &GenOptions::sized(args.num("seed", 1u64)?, inputs));
    let art = pipeline::prepare(
        &ds,
        calibrator_config(args, &spec)?,
        &PreprocessConfig {
            minibatch_size: args.num("batch", spec.minibatch_size.min(256))?,
            seed: args.num("seed", 1u64)?,
        },
    );
    artifacts::save(&art, &spec.name, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} hot / {} cold batches ({:.1}% hot inputs) to {}",
        art.preprocessed.hot_batches.len(),
        art.preprocessed.cold_batches.len(),
        art.preprocessed.hot_input_fraction * 100.0,
        out.display()
    );
    Ok(())
}

fn train_config(args: &Args, spec: &WorkloadSpec) -> Result<TrainConfig, String> {
    Ok(TrainConfig {
        epochs: args.num("epochs", 1usize)?,
        minibatch_size: args.num("batch", spec.minibatch_size.min(256))?,
        num_gpus: args.num("gpus", 1usize)?,
        workers: args.num("workers", 1usize)?,
        lr: args.num("lr", 0.05f32)?,
        quantize_cold: args.num("quantize-cold", false)?,
        lookahead: args.num("lookahead", 0usize)?,
        stale_skip: args.num("stale-skip", 0.0f32)?,
        ..Default::default()
    })
}

/// Parses `--alerts` / `--alert-baseline` into a rule engine. The
/// baseline JSON (a bench result with a top-level `steps_per_sec`)
/// appends a `steps-per-sec` floor at `(1 - --alert-regression)` of the
/// recorded throughput.
fn alerts_from(args: &Args) -> Result<AlertEngine, String> {
    let mut engine = match args.get("alerts") {
        Some(spec) => AlertEngine::parse(spec).map_err(|e| format!("--alerts: {e}"))?,
        None => AlertEngine::empty(),
    };
    if let Some(p) = args.get("alert-baseline") {
        let text = std::fs::read_to_string(p).map_err(|e| format!("--alert-baseline: {e}"))?;
        let regression: f64 = args.num("alert-regression", 0.2f64)?;
        let floor = telemetry::steps_floor_from_baseline(&text, regression)
            .map_err(|e| format!("--alert-baseline: {e}"))?;
        engine.push(telemetry::AlertRule::StepsPerSecFloor { floor });
    }
    Ok(engine)
}

/// Builds the telemetry handle from `--metrics-out` / `--journal` /
/// `--trace-out` / `--progress` / `--alerts`. Disabled when none of
/// them is given, so the hot loops keep their zero-overhead path.
fn telemetry_from(args: &Args) -> Result<Telemetry, String> {
    let metrics_out = args.get("metrics-out");
    let journal = args.get("journal");
    let trace_out = args.get("trace-out");
    let progress: bool = args.num("progress", false)?;
    let alerts = alerts_from(args)?;
    let have_alerts = !alerts.is_empty();
    if metrics_out.is_none()
        && journal.is_none()
        && trace_out.is_none()
        && !progress
        && !have_alerts
    {
        return Ok(Telemetry::disabled());
    }
    let mut b = Telemetry::builder()
        .progress(progress)
        .progress_every(args.num("progress-every", 100u64)?)
        .alerts(alerts)
        // The Chrome-trace exporter replays the in-memory event stream;
        // alert firings are surfaced from it after the run.
        .retain_events(trace_out.is_some() || have_alerts);
    if let Some(p) = journal {
        b = b.journal_path(p);
    }
    b.try_build().map_err(|e| format!("--journal: {e}"))
}

fn resilience_options(args: &Args, telemetry: Telemetry) -> Result<ResilienceOptions, String> {
    let plan = match args.get("fault-plan") {
        Some(spec) => FaultPlan::parse_seeded(spec, args.num("fault-seed", 0u64)?)
            .map_err(|e| format!("--fault-plan: {e}"))?,
        None => FaultPlan::none(),
    };
    let halt: usize = args.num("halt-after", 0usize)?;
    Ok(ResilienceOptions {
        plan,
        checkpoint_dir: args.get("checkpoint-dir").map(PathBuf::from),
        checkpoint_every_rounds: args.num("checkpoint-every", 1usize)?,
        resume: args.num("resume", false)?,
        halt_after_steps: if halt > 0 { Some(halt) } else { None },
        telemetry,
    })
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let spec = workload_from(args)?;
    let stream = PathBuf::from(args.get("stream").ok_or("--stream required")?);
    let telem = telemetry_from(args)?;
    let opts = resilience_options(args, telem.clone())?;
    // The artifact-level faults (corruption, transient I/O at load time)
    // are driven by their own injector; training consumes the plan's
    // remaining events through `train_fae_resilient`.
    let mut loader_injector = FaultInjector::new(opts.plan.clone());
    let seed: u64 = args.num("seed", 1u64)?;
    let cal_cfg = calibrator_config(args, &spec)?;
    let batch: usize = args.num("batch", spec.minibatch_size.min(256))?;
    let rebuild_inputs: usize = args.num("inputs", spec.num_inputs.min(50_000))?;
    let (art, name, load_recoveries) = artifacts::load_or_rebuild_with(
        &stream,
        &spec.name,
        &mut loader_injector,
        &RetryPolicy::default(),
        || {
            let ds = generate(&spec, &GenOptions::sized(seed, rebuild_inputs));
            pipeline::prepare_with(
                &ds,
                cal_cfg,
                &PreprocessConfig { minibatch_size: batch, seed },
                &telem,
            )
        },
        &telem,
    )
    .map_err(|e| e.to_string())?;
    println!("loaded preprocessed stream for '{name}'");
    for r in &load_recoveries {
        println!("recovery: {r}");
    }
    let inputs: usize = args.num("test-inputs", 5_000)?;
    let test = generate(&spec, &GenOptions::sized(args.num("seed", 2u64)?, inputs));
    let distributed: usize = args.num("distributed", 0usize)?;
    let mut cfg = train_config(args, &spec)?;
    let report = if distributed > 0 {
        if cfg.quantize_cold {
            return Err(
                "--quantize-cold is unsupported with --distributed: nodes ship whole-table f32 views"
                    .into(),
            );
        }
        if cfg.lookahead > 0 || cfg.stale_skip > 0.0 {
            return Err(
                "--lookahead/--stale-skip are unsupported with --distributed: nodes sync full hot bags and apply every sparse update eagerly"
                    .into(),
            );
        }
        // One worker process per shard: the engine worker count and the
        // node count are the same knob in a distributed run.
        cfg.workers = distributed;
        train_distributed(args, &spec, &art.preprocessed, &test, &cfg, distributed, &opts)?
    } else {
        fae::core::train_fae_resilient(&spec, &art.preprocessed, &test, &cfg, &opts)
    };
    println!(
        "test accuracy {:.2}% | loss {:.4} | simulated {:.1}s | {} syncs | final rate R({})",
        report.final_test.accuracy * 100.0,
        report.final_test.loss,
        report.simulated_seconds,
        report.transitions,
        report.final_rate.unwrap_or(0)
    );
    println!("model digest {:08x}", report.model_digest);
    if report.interrupted {
        println!("run interrupted by --halt-after (resume with --resume true)");
    }
    for f in &report.faults {
        println!("fault: {f}");
    }
    for r in &report.recoveries {
        println!("recovery: {r}");
    }
    for event in telem.events() {
        if let telemetry::JournalEvent::Alert { step, rule, message, .. } = event {
            println!("alert fired @{step} [{rule}]: {message}");
        }
    }
    if let Some(p) = args.get("metrics-out") {
        telem.write_metrics(std::path::Path::new(p)).map_err(|e| format!("--metrics-out: {e}"))?;
        println!("metrics written to {p}");
    }
    if let Some(p) = args.get("trace-out") {
        // Distributed runs with a journal get the cross-node merged
        // trace (one track group per node); everything else renders the
        // single-timeline export from the retained event stream.
        let sidecars = telem.sidecar_paths();
        let trace = if distributed > 0 && args.get("journal").is_some() && !sidecars.is_empty() {
            let mut paths = vec![PathBuf::from(args.get("journal").expect("checked"))];
            paths.extend(sidecars);
            let merged = merge_journals(&paths)?;
            telemetry::merged_chrome_trace(&merged).map_err(|e| format!("--trace-out: {e}"))?
        } else {
            telemetry::chrome_trace(&telem.events()).map_err(|e| format!("--trace-out: {e}"))?
        };
        std::fs::write(p, trace).map_err(|e| format!("--trace-out: {e}"))?;
        println!("chrome trace written to {p} (open in Perfetto / chrome://tracing)");
    }
    if let Some(p) = args.get("journal") {
        for s in telem.sidecar_paths() {
            println!("node journal written to {}", s.display());
        }
        println!("journal written to {p} (summarize with `fae report {p}`)");
    }
    Ok(())
}

/// Reads each journal as a tagged stream and merges them on the
/// simulated clock.
fn merge_journals(paths: &[PathBuf]) -> Result<Vec<TaggedEvent>, String> {
    let mut streams = Vec::new();
    for p in paths {
        streams.push(telemetry::read_tagged_journal(p)?);
    }
    Ok(telemetry::merge_tagged(&streams).0)
}

/// Multi-process training: binds a coordinator port on loopback, spawns
/// `workers` copies of this binary running `fae node` against it, and
/// trains through [`RemoteEngine`]. The fault plan (if any) is forwarded
/// to every node so both sides derive the same crash victims.
fn train_distributed(
    args: &Args,
    spec: &WorkloadSpec,
    pre: &Preprocessed,
    test: &Dataset,
    cfg: &TrainConfig,
    workers: usize,
    opts: &ResilienceOptions,
) -> Result<TrainReport, String> {
    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("--distributed: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();
    let exe = std::env::current_exe().map_err(|e| format!("--distributed: {e}"))?;
    let mut children = Vec::new();
    for k in 0..workers {
        let mut c = std::process::Command::new(&exe);
        c.arg("node")
            .arg("--connect")
            .arg(&addr)
            .arg("--node-id")
            .arg(k.to_string())
            .arg("--workers")
            .arg(workers.to_string());
        if let Some(p) = args.get("fault-plan") {
            c.arg("--fault-plan").arg(p);
            c.arg("--fault-seed").arg(args.get("fault-seed").unwrap_or("0"));
        }
        children.push(c.spawn().map_err(|e| format!("spawn node {k}: {e}"))?);
    }
    println!("coordinator on {addr}, {workers} node processes spawned");
    let seed = cfg.seed;
    let num_gpus = cfg.num_gpus;
    let plan = opts.plan.clone();
    let net = NetConfig {
        telemetry_every_steps: args.num("telemetry-every", 4u64)?,
        ..NetConfig::default()
    };
    let report = train_fae_with_engine(spec, pre, test, cfg, opts, move |model| {
        RemoteEngine::new(model, spec, seed, workers, num_gpus, listener, net, plan)
            .expect("coordinator start: all nodes must join within the initial wait")
    });
    for (k, mut child) in children.into_iter().enumerate() {
        let status = child.wait().map_err(|e| format!("node {k}: {e}"))?;
        if !status.success() {
            return Err(format!("node {k} exited with {status}"));
        }
    }
    Ok(report)
}

fn cmd_node(args: &Args) -> Result<(), String> {
    let addr = args.get("connect").ok_or("--connect required")?.to_string();
    let node_id: u32 = args.num("node-id", 0u32)?;
    let workers: u32 = args.num("workers", 1u32)?;
    if node_id >= workers {
        return Err(format!("--node-id {node_id} out of range for --workers {workers}"));
    }
    let plan = match args.get("fault-plan") {
        Some(spec) => FaultPlan::parse_seeded(spec, args.num("fault-seed", 0u64)?)
            .map_err(|e| format!("--fault-plan: {e}"))?,
        None => FaultPlan::none(),
    };
    run_node(NodeConfig { addr, node_id, workers, net: NetConfig::default(), plan })
        .map_err(|e| format!("node {node_id}: {e}"))
}

/// `fae report J1 [J2 ...] [--merged]`: one journal renders directly;
/// several (or `--merged`) are merged on the simulated clock first,
/// with the cross-node per-phase invariant checked and reported.
fn cmd_report(rest: &[String]) -> Result<(), String> {
    let merged_flag = rest.iter().any(|a| a == "--merged");
    let paths: Vec<PathBuf> = rest.iter().filter(|a| *a != "--merged").map(PathBuf::from).collect();
    if paths.is_empty() {
        return Err("usage: fae report JOURNAL.jsonl [MORE.jsonl ...] [--merged]".into());
    }
    let tagged = if paths.len() > 1 || merged_flag {
        let merged = merge_journals(&paths)?;
        match telemetry::check_invariant(&merged) {
            Ok(inv) => println!(
                "merged invariant: {:.6}s across {} nodes == reported {:.6}s",
                inv.global,
                inv.per_node.len(),
                inv.reported.unwrap_or(inv.global)
            ),
            Err(e) => println!("merged invariant VIOLATED: {e}"),
        }
        merged
    } else {
        telemetry::read_tagged_journal(&paths[0])?
    };
    if tagged.is_empty() {
        return Err(format!("{}: journal contains no events", paths[0].display()));
    }
    let summary = telemetry::summarize_tagged(&tagged);
    print!("{}", telemetry::render(&summary));
    Ok(())
}

/// `fae top JOURNAL [MORE ...] [--refresh-ms N] [--iterations N]`:
/// re-reads the journals (the coordinator's live stream *is* its
/// journal file — every event is flushed as it happens) and repaints a
/// plain-text dashboard. Sidecar journals next to the first path
/// (`stem.nodeK.jsonl`) are picked up automatically as they appear.
/// `--iterations 0` refreshes until interrupted.
fn cmd_top(rest: &[String]) -> Result<(), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut refresh_ms: u64 = 1000;
    let mut iterations: u64 = 0;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--refresh-ms" | "--iterations" => {
                let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
                let n: u64 = v.parse().map_err(|_| format!("{a}: cannot parse '{v}'"))?;
                if a == "--refresh-ms" {
                    refresh_ms = n.max(50);
                } else {
                    iterations = n;
                }
            }
            _ => paths.push(PathBuf::from(a)),
        }
    }
    if paths.is_empty() {
        return Err("usage: fae top JOURNAL.jsonl [--refresh-ms N] [--iterations N]".into());
    }
    let mut done: u64 = 0;
    loop {
        let mut all = paths.clone();
        for s in discover_sidecars(&paths[0]) {
            if !all.contains(&s) {
                all.push(s);
            }
        }
        let mut streams = Vec::new();
        for p in &all {
            // A journal that does not exist yet (worker not polled) is
            // an empty stream, not an error — the run may still produce it.
            streams.push(telemetry::read_tagged_journal(p).unwrap_or_default());
        }
        let (merged, _) = telemetry::merge_tagged(&streams);
        // Repaint: clear screen, home the cursor, render one frame.
        print!("\x1b[2J\x1b[H{}", telemetry::render_top(&merged));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        done += 1;
        if iterations > 0 && done >= iterations {
            return Ok(());
        }
        if merged.iter().any(|t| matches!(t.event, telemetry::JournalEvent::RunEnd { .. }))
            && iterations == 0
        {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(refresh_ms));
    }
}

/// Sidecar journals already on disk next to `journal`:
/// `stem.nodeK.jsonl` for K = 0, 1, ... (stops at the first gap).
fn discover_sidecars(journal: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Some(stem) = journal.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
        return out;
    };
    for k in 0..64u64 {
        let p = journal.with_file_name(format!("{stem}.node{k}.jsonl"));
        if p.exists() {
            out.push(p);
        } else {
            break;
        }
    }
    out
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let spec = workload_from(args)?;
    let inputs: usize = args.num("inputs", spec.num_inputs.min(30_000))?;
    let ds = generate(&spec, &GenOptions::sized(args.num("seed", 1u64)?, inputs));
    let (train, test) = ds.split(0.2);
    let cfg = train_config(args, &spec)?;
    let art = pipeline::prepare(
        &train,
        calibrator_config(args, &spec)?,
        &PreprocessConfig { minibatch_size: cfg.minibatch_size, seed: args.num("seed", 1u64)? },
    );
    let (base, fae_r) = pipeline::compare(&spec, &train, &test, &art, &cfg);
    println!(
        "baseline: acc {:.2}%  {:.1}s  {:.1}W",
        base.final_test.accuracy * 100.0,
        base.simulated_seconds,
        base.avg_gpu_power_w
    );
    println!(
        "FAE:      acc {:.2}%  {:.1}s  {:.1}W  ({:.2}x speedup, {:.1}% hot inputs)",
        fae_r.final_test.accuracy * 100.0,
        fae_r.simulated_seconds,
        fae_r.avg_gpu_power_w,
        base.simulated_seconds / fae_r.simulated_seconds,
        art.preprocessed.hot_input_fraction * 100.0
    );
    Ok(())
}

fn serve_config(args: &Args) -> Result<ServeConfig, String> {
    Ok(ServeConfig {
        max_batch: args.num("max-batch", 32usize)?,
        max_delay_s: args.num("max-delay-us", 2000u64)? as f64 * 1e-6,
        queue_cap: args.num("queue-cap", 1024usize)?,
        workers: args.num("serve-workers", 2usize)?,
        cold_cache_rows: args.num("cache-rows", 4096usize)?,
        freq_window: args.num("cache-window", 4096usize)?,
        seed: args.num("seed", 1u64)?,
    })
}

/// Builds a serving engine: partitions from the preprocessed sidecar
/// (`--stream`) or an in-process calibration, model from the newest
/// checkpoint in `--checkpoint-dir` (or an explicit `--checkpoint`
/// file), falling back to a freshly initialised model.
fn serve_engine(args: &Args, spec: &WorkloadSpec, ds: &Dataset) -> Result<ServeEngine, String> {
    let partitions = match args.get("stream") {
        Some(p) => {
            let (art, name) = artifacts::load(Path::new(p)).map_err(|e| e.to_string())?;
            if name != spec.name {
                return Err(format!(
                    "--stream: preprocessed for workload '{name}', serving '{}'",
                    spec.name
                ));
            }
            art.preprocessed.partitions
        }
        None => calibrate_partitions(ds, calibrator_config(args, spec)?),
    };
    let cfg = serve_config(args)?;
    let ck_path = match args.get("checkpoint") {
        Some(p) => Some(PathBuf::from(p)),
        None => match args.get("checkpoint-dir") {
            Some(dir) => latest_in(Path::new(dir)).map_err(|e| format!("--checkpoint-dir: {e}"))?,
            None => None,
        },
    };
    match ck_path {
        Some(p) => {
            let ck = TrainCheckpoint::load(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            if ck.tables.len() != spec.tables.len() {
                return Err(format!(
                    "checkpoint has {} embedding tables, workload '{}' has {}",
                    ck.tables.len(),
                    spec.name,
                    spec.tables.len()
                ));
            }
            println!("serving checkpoint {} (step {})", p.display(), ck.steps);
            Ok(ServeEngine::from_checkpoint(spec.clone(), &ck, partitions, cfg))
        }
        None => {
            println!(
                "no checkpoint found; serving an untrained model \
                 (latency and cache behaviour are representative, scores are not)"
            );
            Ok(ServeEngine::untrained(spec.clone(), partitions, cfg))
        }
    }
}

fn serve_load(
    args: &Args,
    engine: &ServeEngine,
    spec: &WorkloadSpec,
    ds: &Dataset,
    seed: u64,
) -> Result<ServeLoad, String> {
    if let Some(p) = args.get("replay") {
        let trace = RequestTrace::load(Path::new(p)).map_err(|e| format!("--replay: {e}"))?;
        trace.validate(&spec.name, seed, ds.len()).map_err(|e| format!("--replay: {e}"))?;
        println!("replaying {} recorded requests from {p}", trace.requests.len());
        return Ok(ServeLoad::Open(trace.requests));
    }
    let total: usize = args.num("requests", 1024usize)?;
    let clients: usize = args.num("closed-clients", 0usize)?;
    if clients > 0 {
        return Ok(ServeLoad::Closed { clients, per_client: (total / clients).max(1) });
    }
    let rate: f64 = match args.get("arrival-rate") {
        Some(v) => v.parse().map_err(|_| format!("--arrival-rate: cannot parse '{v}'"))?,
        None => {
            // Default to 70% of nominal capacity: loaded but unsaturated.
            let cfg = engine.config();
            0.7 * cfg.workers as f64 * cfg.max_batch as f64
                / engine.estimated_batch_seconds().max(1e-9)
        }
    };
    Ok(ServeLoad::Open(open_loop_requests(total, rate, ds.len(), seed)))
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let spec = workload_from(args)?;
    let seed: u64 = args.num("seed", 1u64)?;
    let inputs: usize = args.num("inputs", spec.num_inputs.min(50_000))?;
    let ds = generate(&spec, &GenOptions::sized(seed, inputs));
    let mut engine = serve_engine(args, &spec, &ds)?;
    let telem = telemetry_from(args)?;
    engine.set_telemetry(telem.clone());
    let load = serve_load(args, &engine, &spec, &ds, seed)?;

    let report = engine.serve(&ds, &load);
    println!(
        "completed {} / rejected {} in {} batches (mean size {:.1}) over {:.4} simulated s",
        report.completed,
        report.rejected,
        report.batches,
        report.mean_batch_size,
        report.simulated_seconds
    );
    println!(
        "latency: p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms | throughput {:.1} req/s",
        report.p50_ms, report.p95_ms, report.p99_ms, report.max_ms, report.throughput_rps
    );
    println!(
        "cache: hit rate {:.4} ({} pinned + {} dynamic hits, {} misses) | mean score {:.4}",
        report.hit_rate,
        report.cache.pinned_hits,
        report.cache.hits,
        report.cache.misses,
        report.mean_score
    );

    if let Some(p) = args.get("record") {
        let trace = RequestTrace {
            workload: spec.name.clone(),
            data_seed: seed,
            requests: report.requests.clone(),
        };
        trace.save(Path::new(p)).map_err(|e| format!("--record: {e}"))?;
        println!("recorded {} requests to {p} (replay with --replay {p})", trace.requests.len());
    }
    if let Some(p) = args.get("metrics-out") {
        telem.write_metrics(Path::new(p)).map_err(|e| format!("--metrics-out: {e}"))?;
        println!("metrics written to {p}");
    }
    if let Some(p) = args.get("trace-out") {
        let trace =
            telemetry::chrome_trace(&telem.events()).map_err(|e| format!("--trace-out: {e}"))?;
        std::fs::write(p, trace).map_err(|e| format!("--trace-out: {e}"))?;
        println!("chrome trace written to {p}");
    }
    if let Some(p) = args.get("journal") {
        println!("journal written to {p} (summarize with `fae report {p}`)");
    }

    // CI gates: fail loudly (nonzero exit) when the serve run degrades.
    let min_completed: u64 = args.num("min-completed", 0u64)?;
    if report.completed < min_completed {
        return Err(format!(
            "gate: completed {} < --min-completed {min_completed}",
            report.completed
        ));
    }
    let min_hit_rate: f64 = args.num("min-hit-rate", 0.0f64)?;
    if report.hit_rate < min_hit_rate {
        return Err(format!(
            "gate: cache hit rate {:.4} < --min-hit-rate {min_hit_rate}",
            report.hit_rate
        ));
    }
    Ok(())
}

fn cmd_bench_serve(args: &Args) -> Result<(), String> {
    let spec = if args.get("workload").is_some() || args.get("spec-file").is_some() {
        workload_from(args)?
    } else {
        WorkloadSpec::tiny_test()
    };
    let seed: u64 = args.num("seed", 1u64)?;
    let inputs: usize = args.num("inputs", spec.num_inputs.min(20_000))?;
    let ds = generate(&spec, &GenOptions::sized(seed, inputs));
    let engine = serve_engine(args, &spec, &ds)?;
    let sweep = saturation_sweep(&engine, &ds, args.num("requests", 400usize)?);

    println!(
        "\n== bench-serve: saturation sweep ({}, capacity {:.0} req/s) ==",
        sweep.workload, sweep.capacity_rps
    );
    println!(
        "{:>8} {:>12} {:>10} {:>9} {:>10} {:>10} {:>10} {:>12} {:>9}",
        "mode",
        "offered",
        "completed",
        "rejected",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "tput req/s",
        "hit rate"
    );
    for p in &sweep.points {
        println!(
            "{:>8} {:>12.1} {:>10} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>12.1} {:>9.4}",
            p.mode,
            p.offered_rps,
            p.completed,
            p.rejected,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.throughput_rps,
            p.hit_rate
        );
    }

    let out = args.get("out").unwrap_or("results/BENCH_serve.json");
    let path = Path::new(out);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{out}: {e}"))?;
        }
    }
    let json =
        serde_json::to_string_pretty(&sweep_json(&sweep)).expect("Value serialization cannot fail");
    std::fs::write(path, json).map_err(|e| format!("{out}: {e}"))?;
    println!("\n[saved {out}]");
    Ok(())
}

const USAGE: &str =
    "usage: fae <gen|calibrate|preprocess|train|compare|serve|bench-serve|node|report|top> [--flag value]...
  common flags: --workload tiny|kaggle|taobao|terabyte | --spec-file FILE.json
                --inputs N  --seed S
  calibrate:    --budget-mb M  --small-table-kb K  --sample-rate R
  preprocess:   --out FILE  --batch B
  train:        --stream FILE  --epochs E  --gpus G  --lr LR
                --workers W   (execution-engine worker threads; 1 = serial)
                --quantize-cold true   (int8 cold tier for the master
                                        tables; hot rows stay exact f32.
                                        Not valid with --distributed)
                --lookahead N    (oracle lookahead over the next N known
                                  mini-batches: prefetch exactly the rows
                                  they touch instead of resyncing the whole
                                  hot bag. 0 = full-bag sync. Not valid
                                  with --distributed)
                --stale-skip T   (defer cold-row sparse updates until the
                                  accumulated step lr*|grad| reaches T, the
                                  row is about to be read, or a checkpoint
                                  flushes. 0 = apply eagerly. Not valid
                                  with --distributed)
                --fault-plan 'kind@step,...'  --fault-seed S
                  (kinds: device-loss replication-oom sync-failure
                          artifact-corruption transient-io)
                --checkpoint-dir DIR  --checkpoint-every ROUNDS
                --resume true|false   --halt-after STEPS
                --metrics-out FILE.json  --journal FILE.jsonl
                --trace-out FILE.json    --progress true  --progress-every N
                --distributed N   (spawn N `fae node` processes and train
                                   over the fae-net wire protocol; also
                                   accepts worker-crash/net-* fault kinds)
                --telemetry-every N  (poll workers for journal events
                                      every N steps; 0 disables shipping)
                --alerts 'heartbeat-gap>G,reshard-storm>K,hit-rate<X,steps-per-sec<S'
                --alert-baseline BENCH.json  --alert-regression FRAC
                  (derive a steps-per-sec floor from a recorded bench)
                (--metrics-out FILE.prom writes Prometheus text exposition)
  node:         --connect HOST:PORT  --node-id K  --workers N
                --fault-plan 'kind@step,...'  --fault-seed S
  serve:        --stream FILE | (in-process calibration)
                --checkpoint-dir DIR | --checkpoint FILE  (else untrained)
                --max-batch B  --max-delay-us U  --queue-cap Q
                --serve-workers W  --cache-rows R  --cache-window N
                --requests N  --arrival-rate RPS | --closed-clients C
                --record FILE | --replay FILE
                --min-completed N  --min-hit-rate F   (CI gates)
                --metrics-out FILE.json  --journal FILE.jsonl  --trace-out FILE.json
  bench-serve:  [--workload W] --requests N  --out FILE.json   (saturation sweep)
  report:       fae report JOURNAL.jsonl [MORE.jsonl ...] [--merged]
                  (phase-breakdown table; several journals — or --merged —
                   merge on the simulated clock and check the cross-node
                   per-phase invariant)
  top:          fae top JOURNAL.jsonl [--refresh-ms N] [--iterations N]
                  (refreshing dashboard tailing a live journal; sidecar
                   node journals next to it are picked up automatically)
  compare:      --batch B  --epochs E  --gpus G  --workers W";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let run = || -> Result<(), String> {
        // `report` and `top` take positional journal paths, unlike the
        // --flag pairs every other subcommand parses.
        if cmd == "report" {
            return cmd_report(rest);
        }
        if cmd == "top" {
            return cmd_top(rest);
        }
        let args = Args::parse(rest)?;
        match cmd.as_str() {
            "gen" => cmd_gen(&args),
            "calibrate" => cmd_calibrate(&args),
            "preprocess" => cmd_preprocess(&args),
            "train" => cmd_train(&args),
            "compare" => cmd_compare(&args),
            "serve" => cmd_serve(&args),
            "bench-serve" => cmd_bench_serve(&args),
            "node" => cmd_node(&args),
            other => Err(format!("unknown command '{other}'\n{USAGE}")),
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
