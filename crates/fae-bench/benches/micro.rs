//! Criterion microbenchmarks for the hot paths of every substrate:
//! embedding lookups/updates, input classification, Rand-Em estimation,
//! model forward/backward, the FAE container codec and the cost model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fae_core::calibrator::log_accesses;
use fae_core::input_processor::classify_inputs;
use fae_core::RandEmBox;
use fae_data::format::FaeFile;
use fae_data::{generate, BatchKind, GenOptions, MiniBatch, WorkloadSpec};
use fae_embed::{AccessCounter, EmbeddingTable, HotColdPartition, HotEmbeddingBag, SparseGrad};
use fae_models::interaction::Interaction;
use fae_models::MasterEmbeddings;
use fae_nn::{Activation, Layer, Mlp, Tensor};
use fae_sysmodel::{step_cost, ExecMode, SystemConfig};

fn bench_embedding(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let table = EmbeddingTable::new(100_000, 16, &mut rng);
    let zipf = fae_data::ZipfSampler::new(100_000, 1.1, &mut rng);
    let batch = 1024usize;
    let zipf_idx: Vec<u32> = (0..batch).map(|_| zipf.sample(&mut rng)).collect();
    let uni_idx: Vec<u32> = (0..batch).map(|_| rng.gen_range(0..100_000u32)).collect();
    let offsets: Vec<usize> = (0..=batch).collect();

    let mut g = c.benchmark_group("embedding_lookup_1024x16");
    g.bench_function("zipf_indices", |b| {
        b.iter(|| black_box(table.lookup_bag(black_box(&zipf_idx), &offsets)))
    });
    g.bench_function("uniform_indices", |b| {
        b.iter(|| black_box(table.lookup_bag(black_box(&uni_idx), &offsets)))
    });
    // Hot-bag lookup over the compact extracted table.
    let hot_ids: Vec<u32> = (0..4_000u32).collect();
    let bag = HotEmbeddingBag::extract(&table, hot_ids);
    let hot_idx: Vec<u32> = (0..batch).map(|_| rng.gen_range(0..4_000u32)).collect();
    g.bench_function("hot_bag", |b| {
        b.iter(|| black_box(bag.table().lookup_bag(black_box(&hot_idx), &offsets)))
    });
    g.finish();

    c.bench_function("sparse_sgd_1024_rows", |b| {
        let mut t = EmbeddingTable::new(100_000, 16, &mut rng);
        let mut sg = SparseGrad::new(16);
        for &i in &zipf_idx {
            sg.accumulate(i, &[0.01; 16]);
        }
        b.iter(|| t.sgd_step_sparse(black_box(&sg), 0.05));
    });
}

fn bench_half_precision(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let f32_table = EmbeddingTable::new(100_000, 16, &mut rng);
    let bf16_table = fae_embed::Bf16EmbeddingTable::from_f32(&f32_table);
    let idx: Vec<u32> = (0..1024).map(|_| rng.gen_range(0..100_000u32)).collect();
    let offsets: Vec<usize> = (0..=1024).collect();
    let mut g = c.benchmark_group("precision_lookup_1024x16");
    g.bench_function("f32", |b| {
        b.iter(|| black_box(f32_table.lookup_bag(black_box(&idx), &offsets)))
    });
    g.bench_function("bf16", |b| {
        b.iter(|| black_box(bf16_table.lookup_bag(black_box(&idx), &offsets)))
    });
    g.finish();
}

fn bench_attention(c: &mut Criterion) {
    use fae_models::attention::{AttentionPool, SeqBatch};
    let mut rng = StdRng::seed_from_u64(10);
    let batch = 256usize;
    let dim = 16usize;
    // Ragged sequences of 1..=21 steps, like Taobao.
    let mut offsets = vec![0usize];
    for _ in 0..batch {
        offsets.push(offsets.last().unwrap() + rng.gen_range(1..=21));
    }
    let total = *offsets.last().unwrap();
    let seq = SeqBatch {
        data: (0..total * dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
        offsets,
        dim,
    };
    let query = Tensor::from_fn(batch, dim, |_, _| rng.gen_range(-1.0..1.0f32));
    c.bench_function("attention_fwd_bwd_b256", |b| {
        b.iter(|| {
            let mut att = AttentionPool::new();
            let ctx = att.forward(black_box(&seq), black_box(&query));
            let g = Tensor::full(ctx.rows(), ctx.cols(), 1.0);
            black_box(att.backward(&g));
        })
    });
}

fn bench_classify(c: &mut Criterion) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(2, 20_000));
    let all: Vec<usize> = (0..ds.len()).collect();
    let counters = log_accesses(&ds, &all);
    let parts: Vec<HotColdPartition> =
        counters.iter().map(|cnt| HotColdPartition::from_counts(cnt, 5)).collect();
    c.bench_function("classify_inputs_20k", |b| {
        b.iter(|| black_box(classify_inputs(black_box(&ds), &parts)))
    });
}

fn bench_randem(c: &mut Criterion) {
    let mut counter = AccessCounter::new(1_000_000);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..500_000 {
        counter.record(rng.gen_range(0..1_000_000));
    }
    let box_ = RandEmBox::default();
    let mut g = c.benchmark_group("hot_size_estimation_1M_rows");
    g.bench_function("randem_box", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(box_.estimate(black_box(&counter), 2, &mut rng)))
    });
    g.bench_function("full_scan", |b| b.iter(|| black_box(counter.rows_at_or_above(black_box(2)))));
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    // Kaggle bottom MLP forward/backward at batch 256.
    let mut mlp = Mlp::new(&[13, 512, 256, 64, 16], Activation::Relu, &mut rng);
    let x = Tensor::from_fn(256, 13, |_, _| rng.gen_range(-1.0..1.0f32));
    c.bench_function("bottom_mlp_fwd_bwd_b256", |b| {
        b.iter(|| {
            mlp.zero_grad();
            let y = mlp.forward(black_box(&x));
            let g = Tensor::full(y.rows(), y.cols(), 1.0);
            black_box(mlp.backward(&g));
        })
    });

    // Pairwise interaction over 27 features of width 16.
    let feats: Vec<Tensor> =
        (0..27).map(|_| Tensor::from_fn(64, 16, |_, _| rng.gen_range(-1.0..1.0f32))).collect();
    c.bench_function("interaction_27x16_b64", |b| {
        b.iter(|| {
            let mut op = Interaction::new();
            let out = op.forward(black_box(feats.clone()));
            let g = Tensor::full(out.rows(), out.cols(), 1.0);
            black_box(op.backward(&g));
        })
    });

    // Full DLRM train step on the tiny workload.
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(6, 1_000));
    let mb = MiniBatch::gather(&ds, &(0..64).collect::<Vec<_>>(), BatchKind::Unclassified);
    let mut model = fae_models::Dlrm::from_spec(&spec, &mut rng);
    let mut emb = MasterEmbeddings::from_spec(&spec, &mut rng);
    c.bench_function("dlrm_train_step_b64", |b| {
        b.iter(|| black_box(fae_models::train_step(&mut model, &mut emb, black_box(&mb), 0.01)))
    });
}

fn bench_format(c: &mut Criterion) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(7, 4_096));
    let batches: Vec<MiniBatch> = (0..64)
        .map(|i| {
            MiniBatch::gather(&ds, &(i * 64..(i + 1) * 64).collect::<Vec<_>>(), BatchKind::Hot)
        })
        .collect();
    let file = FaeFile::new("bench", batches);
    let bytes = file.encode();
    let mut g = c.benchmark_group("fae_format_64x64");
    g.bench_function("encode", |b| b.iter(|| black_box(file.encode())));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(FaeFile::decode(black_box(&bytes)).unwrap()))
    });
    g.finish();
}

fn bench_costmodel(c: &mut Criterion) {
    let spec = WorkloadSpec::rmc3_terabyte_paper();
    let profile = fae_models::bridge::profile_for(&spec, 256e6);
    let sys = SystemConfig::paper_server(4);
    c.bench_function("step_cost_eval", |b| {
        b.iter(|| black_box(step_cost(&profile, &sys, ExecMode::FaeHotGpu, black_box(4096))))
    });
}

criterion_group!(
    benches,
    bench_embedding,
    bench_half_precision,
    bench_attention,
    bench_classify,
    bench_randem,
    bench_models,
    bench_format,
    bench_costmodel
);
criterion_main!(benches);
