//! # fae-bench — experiment harness
//!
//! One binary per paper figure/table (see DESIGN.md §4 for the index):
//!
//! ```sh
//! cargo run --release -p fae-bench --bin fig13_speedup
//! ```
//!
//! Each binary prints the regenerated rows/series next to the paper's
//! published values and appends a JSON record under `results/`. Shared
//! machinery lives here: the three benchmark workloads with their
//! measured hot fractions, text-table rendering, and JSON output.

#![forbid(unsafe_code)]
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use fae_core::calibrator::{log_accesses, sample_inputs};
use fae_core::classifier::classify_tables;
use fae_core::input_processor::classify_inputs;
use fae_core::{Calibrator, CalibratorConfig};
use fae_data::{generate, Dataset, GenOptions, WorkloadSpec};

/// One benchmark workload wired for experiments: the laptop-scale spec
/// (real training + measurement) and the paper-scale spec (cost model).
pub struct Workload {
    /// Display name matching the paper ("Criteo Kaggle", ...).
    pub label: &'static str,
    /// Scaled spec for real runs.
    pub scaled: WorkloadSpec,
    /// Published-size spec for the cost model.
    pub paper: WorkloadSpec,
    /// Per-GPU mini-batch size of the paper's main experiments.
    pub per_gpu_batch: usize,
    /// GPU memory budget for hot embeddings at paper scale.
    pub budget_bytes: usize,
    /// Inputs to synthesise when measuring hotness on the scaled spec —
    /// sized so the 5% input sample covers each table's head region as
    /// densely as the paper's ≥500k-input samples cover the real one.
    pub measure_inputs: usize,
}

/// The three workloads in the order the paper's result figures use.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            label: "Criteo Kaggle",
            scaled: WorkloadSpec::rmc2_kaggle(),
            paper: WorkloadSpec::rmc2_kaggle_paper(),
            per_gpu_batch: 1024,
            budget_bytes: 256 << 20,
            measure_inputs: 120_000,
        },
        Workload {
            label: "Taobao Alibaba",
            scaled: WorkloadSpec::rmc1_taobao(),
            paper: WorkloadSpec::rmc1_taobao_paper(),
            per_gpu_batch: 256,
            budget_bytes: 256 << 20,
            measure_inputs: 120_000,
        },
        Workload {
            label: "Criteo Terabyte",
            scaled: WorkloadSpec::rmc3_terabyte(),
            paper: WorkloadSpec::rmc3_terabyte_paper(),
            per_gpu_batch: 1024,
            budget_bytes: 256 << 20,
            measure_inputs: 400_000,
        },
    ]
}

/// Measured hotness statistics of a workload, obtained by running the real
/// calibrator + classifier + input processor on a scaled dataset.
pub struct HotnessStats {
    /// Fraction of inputs whose every lookup is hot.
    pub hot_input_fraction: f64,
    /// Fraction of embedding *rows* classified hot.
    pub hot_row_fraction: f64,
    /// Fraction of all accesses served by hot rows.
    pub hot_access_share: f64,
    /// The threshold the calibrator converged on.
    pub threshold: f64,
}

/// Generates a smaller instance of `spec` and measures its hotness under
/// a GPU budget scaled proportionally to the dataset shrink factor.
pub fn measure_hotness(spec: &WorkloadSpec, inputs: usize, budget_bytes: usize) -> HotnessStats {
    let ds = generate(spec, &GenOptions::sized(0xBEEF, inputs));
    let calibrator = Calibrator::new(CalibratorConfig {
        gpu_budget_bytes: budget_bytes,
        small_table_bytes: 16 << 10,
        ..Default::default()
    });
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(calibrator.config.seed);
    let samples = sample_inputs(&ds, calibrator.config.sample_rate, &mut rng);
    let counters = log_accesses(&ds, &samples);
    let cal = calibrator.converge(&ds, &counters, &mut rng);
    let parts = classify_tables(spec, &counters, &cal);
    let hot = classify_inputs(&ds, &parts);
    let hot_inputs = hot.iter().filter(|&&h| h).count();
    let hot_rows: usize = parts.iter().map(|p| p.hot_count()).sum();
    let total_rows: usize = spec.tables.iter().map(|t| t.rows).sum();
    // Access share measured on the full (not sampled) access counts.
    let all: Vec<usize> = (0..ds.len()).collect();
    let full = log_accesses(&ds, &all);
    let mut hot_accesses = 0u64;
    let mut total_accesses = 0u64;
    for (c, p) in full.iter().zip(&parts) {
        total_accesses += c.total();
        for &id in p.hot_ids() {
            hot_accesses += c.count(id);
        }
    }
    HotnessStats {
        hot_input_fraction: hot_inputs as f64 / ds.len() as f64,
        hot_row_fraction: hot_rows as f64 / total_rows as f64,
        hot_access_share: hot_accesses as f64 / total_accesses.max(1) as f64,
        threshold: cal.threshold,
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Renders an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Appends a JSON experiment record under `results/<name>.json`.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_err() {
        return; // results dir is best-effort (read-only checkouts)
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = fs::write(&path, s);
        println!("\n[saved {}]", path.display());
    }
}

/// Builds a train/test pair for real-training experiments.
pub fn train_test(spec: &WorkloadSpec, inputs: usize, seed: u64) -> (Dataset, Dataset) {
    generate(spec, &GenOptions::sized(seed, inputs)).split(0.15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_match_paper_order_and_shapes() {
        let w = workloads();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].label, "Criteo Kaggle");
        assert_eq!(w[0].per_gpu_batch, 1024);
        assert_eq!(w[1].per_gpu_batch, 256);
        assert!(w[2].paper.embedding_bytes() > 40 << 30);
    }

    #[test]
    fn hotness_measurement_shows_skew() {
        let mut spec = WorkloadSpec::rmc2_kaggle();
        spec.num_inputs = 30_000;
        let stats = measure_hotness(&spec, 30_000, 2 << 20);
        // The paper's core claim: few rows, most accesses.
        assert!(stats.hot_row_fraction < 0.6, "hot rows {}", stats.hot_row_fraction);
        assert!(stats.hot_access_share > 0.5, "hot access share {}", stats.hot_access_share);
        assert!(stats.hot_input_fraction > 0.05, "hot inputs {}", stats.hot_input_fraction);
    }

    #[test]
    fn timed_measures_something() {
        let (v, secs) = timed(|| (0..100_000u64).sum::<u64>());
        assert_eq!(v, 4999950000);
        assert!(secs >= 0.0);
    }
}
