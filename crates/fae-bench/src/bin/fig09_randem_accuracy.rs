//! Fig 9: Rand-Em Box estimation accuracy — the CLT-sampled hot-table
//! size vs the exact count, across thresholds. Paper: within 10% (upper
//! bound) at 99.9% confidence.

use fae_bench::{print_table, save_json};
use fae_core::calibrator::log_accesses;
use fae_core::RandEmBox;
use fae_data::{generate, GenOptions, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut spec = WorkloadSpec::rmc3_terabyte();
    spec.num_inputs = 120_000;
    let ds = generate(&spec, &GenOptions::seeded(99));
    let all: Vec<usize> = (0..ds.len()).collect();
    let counters = log_accesses(&ds, &all);
    let counter = &counters[0]; // the 1.14M-row table

    let box_ = RandEmBox::default();
    let mut rng = StdRng::seed_from_u64(10);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for cutoff in [1u64, 2, 3, 5, 8, 13, 21] {
        let exact = counter.rows_at_or_above(cutoff) as f64;
        let est = box_.estimate(counter, cutoff, &mut rng);
        let err = if exact > 0.0 { (est.hot_rows - exact).abs() / exact } else { 0.0 };
        rows.push(vec![
            cutoff.to_string(),
            format!("{exact:.0}"),
            format!("{:.0}", est.hot_rows),
            format!("{:.0}", est.hot_rows_upper),
            format!("{:.1}%", err * 100.0),
            format!("{}", est.rows_scanned),
        ]);
        json.push(serde_json::json!({
            "cutoff": cutoff, "exact": exact, "estimate": est.hot_rows,
            "upper": est.hot_rows_upper, "rel_err": err, "rows_scanned": est.rows_scanned,
        }));
    }
    print_table(
        "Fig 9: Rand-Em Box hot-row estimates vs exact (1.14M-row table)",
        &["cutoff", "exact", "estimate", "upper CI", "rel err", "rows scanned"],
        &rows,
    );
    println!(
        "\npaper: estimates within 10% of measured at 99.9% confidence (n=35 chunks of m=1024)"
    );
    save_json("fig09_randem_accuracy", &serde_json::Value::Array(json));
}
