//! Fig 12 + Table III: training/test accuracy of FAE vs the baseline.
//!
//! Real SGD on the scaled synthetic workloads: the same model, seed and
//! data trained (a) conventionally and (b) through FAE's hot/cold
//! schedule with the adaptive shuffle scheduler. The paper's claim is
//! *parity*: FAE reaches baseline accuracy on train and test sets.

use fae_bench::{print_table, save_json, train_test};
use fae_core::{pipeline, CalibratorConfig, PreprocessConfig, TrainConfig};
use fae_data::{WorkloadKind, WorkloadSpec};

fn run(
    label: &str,
    mut spec: WorkloadSpec,
    inputs: usize,
    batch: usize,
    lr: f32,
) -> serde_json::Value {
    spec.num_inputs = inputs;
    if spec.kind == WorkloadKind::Tbsm {
        // Shrink the item space so the scaled run trains in minutes.
        spec.tables[0].rows = 16_000;
        spec.tables[2].rows = 4_000;
    }
    let (train, test) = train_test(&spec, inputs, 0x12AC);
    let artifacts = pipeline::prepare(
        &train,
        CalibratorConfig {
            gpu_budget_bytes: spec.embedding_bytes() / 8,
            small_table_bytes: 8 << 10,
            ..Default::default()
        },
        &PreprocessConfig { minibatch_size: batch, seed: 3 },
    );
    let cfg = TrainConfig {
        epochs: 2,
        minibatch_size: batch,
        lr,
        eval_batches: 8,
        eval_interval: 40,
        ..Default::default()
    };
    let (base, fae) = pipeline::compare(&spec, &train, &test, &artifacts, &cfg);

    println!("\n--- {label} ---");
    println!(
        "hot inputs {:.1}%, {} hot / {} cold batches",
        artifacts.preprocessed.hot_input_fraction * 100.0,
        artifacts.preprocessed.hot_batches.len(),
        artifacts.preprocessed.cold_batches.len()
    );
    println!("accuracy curve (iteration: baseline | FAE):");
    let pick = |h: &[fae_core::EvalPoint], frac: f64| {
        let i = ((h.len() - 1) as f64 * frac) as usize;
        h[i]
    };
    for frac in [0.25, 0.5, 0.75, 1.0] {
        let b = pick(&base.history, frac);
        let f = pick(&fae.history, frac);
        println!(
            "  ~{:>3.0}%:  iter {:>5} acc {:>6.2}%  |  iter {:>5} acc {:>6.2}% (rate R({}))",
            frac * 100.0,
            b.iteration,
            b.test_accuracy * 100.0,
            f.iteration,
            f.test_accuracy * 100.0,
            f.rate.unwrap_or(0)
        );
    }
    let rows = vec![vec![
        label.to_string(),
        format!("{:.2}", base.final_train.accuracy * 100.0),
        format!("{:.2}", fae.final_train.accuracy * 100.0),
        format!("{:.2}", base.final_test.accuracy * 100.0),
        format!("{:.2}", fae.final_test.accuracy * 100.0),
    ]];
    print_table(
        "Table III row: final accuracy (%)",
        &["workload", "base train", "FAE train", "base test", "FAE test"],
        &rows,
    );
    serde_json::json!({
        "workload": label,
        "baseline": {"train_acc": base.final_train.accuracy, "test_acc": base.final_test.accuracy},
        "fae": {"train_acc": fae.final_train.accuracy, "test_acc": fae.final_test.accuracy,
                 "final_rate": fae.final_rate, "transitions": fae.transitions},
        "baseline_history": base.history.iter().map(|p| (p.iteration, p.test_accuracy)).collect::<Vec<_>>(),
        "fae_history": fae.history.iter().map(|p| (p.iteration, p.test_accuracy)).collect::<Vec<_>>(),
    })
}

fn main() {
    let mut json = Vec::new();
    json.push(run("Criteo Kaggle (RMC2, scaled)", WorkloadSpec::rmc2_kaggle(), 40_000, 256, 0.05));
    json.push(run("Taobao Alibaba (RMC1, scaled)", WorkloadSpec::rmc1_taobao(), 24_000, 128, 0.03));
    json.push(run(
        "Criteo Terabyte (RMC3, scaled)",
        {
            let mut s = WorkloadSpec::rmc3_terabyte();
            // dim-64 tables are heavy; shrink rows for the accuracy run.
            for t in s.tables.iter_mut() {
                t.rows = (t.rows / 16).max(4);
            }
            s
        },
        30_000,
        256,
        0.05,
    ));
    println!(
        "\npaper Table III: Kaggle 79.3/79.7 train, 78.86/78.86 test; \
         Taobao 88.78/88.32, 89.21/89.03; Terabyte 81.62/81.95, 81.07/81.06 \
         — FAE matches baseline within noise, as here."
    );
    save_json("fig12_accuracy", &serde_json::Value::Array(json));
}
