//! Ablation: Rand-Em Box sampling parameters (paper: n = 35 chunks of
//! m = 1024 rows). Sweeps both and reports estimation error and rows
//! scanned — showing why n ≥ 30 (CLT) and larger m (precision) matter.

use fae_bench::{print_table, save_json};
use fae_core::calibrator::log_accesses;
use fae_core::RandEmBox;
use fae_data::{generate, GenOptions, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut spec = WorkloadSpec::rmc3_terabyte();
    spec.num_inputs = 150_000;
    let ds = generate(&spec, &GenOptions::seeded(21));
    let all: Vec<usize> = (0..ds.len()).collect();
    let counters = log_accesses(&ds, &all);
    let counter = &counters[0];
    let cutoff = 2u64;
    let exact = counter.rows_at_or_above(cutoff) as f64;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (n, m) in [(5usize, 1024usize), (15, 1024), (35, 256), (35, 1024), (35, 4096), (70, 1024)] {
        // Average absolute error across seeds to expose variance.
        let trials = 25;
        let mut err_sum = 0.0;
        let mut worst: f64 = 0.0;
        let mut scanned = 0usize;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let box_ = RandEmBox { chunks: n, chunk_len: m, t_value: 3.340 };
            let est = box_.estimate(counter, cutoff, &mut rng);
            let e = (est.hot_rows - exact).abs() / exact;
            err_sum += e;
            worst = worst.max(e);
            scanned = est.rows_scanned;
        }
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            scanned.to_string(),
            format!("{:.2}%", err_sum / trials as f64 * 100.0),
            format!("{:.2}%", worst * 100.0),
        ]);
        json.push(serde_json::json!({
            "n": n, "m": m, "rows_scanned": scanned,
            "mean_rel_err": err_sum / trials as f64, "worst_rel_err": worst,
        }));
    }
    print_table(
        "Ablation: Rand-Em Box (n chunks × m rows) on the 1.14M-row table",
        &["n", "m", "rows scanned", "mean err", "worst err"],
        &rows,
    );
    println!(
        "\npaper setting n=35, m=1024: CLT-valid (n>=30), ~3% of the table scanned, <10% error"
    );
    save_json("abl_randem", &serde_json::Value::Array(json));
}
