//! Ablation: shuffle-scheduler policy. Real training (tiny-test scaled
//! DLRM) under fixed rates R(1) / R(50) / R(100), hot-only, cold-only and
//! the paper's adaptive Eq. 7, comparing accuracy, transitions (sync
//! traffic) and simulated time — the accuracy/overhead trade-off of
//! §III-C.

use fae_bench::{print_table, save_json};
use fae_core::{pipeline, train_fae, CalibratorConfig, PreprocessConfig, TrainConfig};
use fae_data::{generate, GenOptions, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(91, 24_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        CalibratorConfig {
            gpu_budget_bytes: 40 << 10,
            small_table_bytes: 2 << 10,
            ..Default::default()
        },
        &PreprocessConfig { minibatch_size: 64, seed: 12 },
    );
    println!(
        "hot inputs: {:.1}% ({} hot / {} cold batches)",
        artifacts.preprocessed.hot_input_fraction * 100.0,
        artifacts.preprocessed.hot_batches.len(),
        artifacts.preprocessed.cold_batches.len()
    );

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, rate, hot_only, cold_only) in [
        ("adaptive (paper)", 50u32, false, false),
        ("fixed R(1)", 1, false, false),
        ("fixed R(100)", 100, false, false),
        ("hot-only", 100, true, false),
        ("cold-only", 100, false, true),
    ] {
        let mut pre = artifacts.preprocessed.clone();
        if hot_only {
            pre.cold_batches.clear();
        }
        if cold_only {
            pre.hot_batches.clear();
        }
        let cfg =
            TrainConfig { epochs: 2, minibatch_size: 64, initial_rate: rate, ..Default::default() };
        let r = train_fae(&spec, &pre, &test, &cfg);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}%", r.final_test.accuracy * 100.0),
            format!("{:.4}", r.final_test.loss),
            r.transitions.to_string(),
            format!("{:.2}", r.simulated_seconds),
            r.final_rate.map_or("-".into(), |x| format!("R({x})")),
        ]);
        json.push(serde_json::json!({
            "policy": label,
            "test_accuracy": r.final_test.accuracy,
            "test_loss": r.final_test.loss,
            "transitions": r.transitions,
            "simulated_seconds": r.simulated_seconds,
        }));
    }
    print_table(
        "Ablation: scheduling policy (tiny-test DLRM, 2 epochs, real training)",
        &["policy", "test acc", "test loss", "syncs", "sim time (s)", "final rate"],
        &rows,
    );
    println!(
        "\nexpected: hot-only / cold-only underperform (they never update the other region's \
         rows); R(1) maximises sync traffic; the adaptive policy matches the best accuracy \
         at low sync cost"
    );
    save_json("abl_scheduler", &serde_json::Value::Array(json));
}
