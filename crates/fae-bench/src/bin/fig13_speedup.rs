//! Fig 13 + Table IV: training-time speedup of FAE over the baseline for
//! 1/2/4 GPUs under weak scaling, at paper scale (cost model), plus the
//! absolute 10-epoch training times.
//!
//! Hot-input fractions are *measured* by running the real calibrator /
//! classifier / input processor on the scaled datasets, then applied to
//! the paper-scale schedule simulation.

use fae_bench::{measure_hotness, print_table, save_json, workloads};
use fae_core::scheduler::Rate;
use fae_core::simsched::{simulate_baseline, simulate_fae, SimConfig};
use fae_models::bridge::profile_for;
use fae_sysmodel::constants::PAPER_EPOCHS;

/// Paper Table IV, minutes for 10 epochs: (baseline, FAE) per GPU count.
const PAPER_TABLE_IV: [(&str, [(f64, f64); 3]); 3] = [
    ("Criteo Kaggle", [(245.3, 122.7), (195.2, 116.2), (201.3, 104.7)]),
    ("Taobao Alibaba", [(996.5, 436.5), (851.8, 387.8), (703.3, 428.5)]),
    ("Criteo Terabyte", [(491.7, 189.7), (423.6, 201.6), (364.8, 156.4)]),
];

fn main() {
    let mut speedup_rows = Vec::new();
    let mut abs_rows = Vec::new();
    let mut json = Vec::new();
    let mut four_gpu_speedups = Vec::new();

    for (wi, w) in workloads().into_iter().enumerate() {
        let shrink = w.paper.embedding_bytes() as f64 / w.scaled.embedding_bytes() as f64;
        let scaled_budget = ((w.budget_bytes as f64 / shrink) as usize).max(64 << 10);
        let stats = measure_hotness(&w.scaled, w.measure_inputs, scaled_budget);
        let profile = profile_for(&w.paper, w.budget_bytes as f64);

        // Normalisation anchor: the 1-GPU baseline (as in Fig 13).
        let base_1gpu = {
            let cfg = SimConfig {
                total_inputs: w.paper.num_inputs,
                batch: w.per_gpu_batch,
                hot_fraction: stats.hot_input_fraction,
                rate: Rate::new(50),
                epochs: 1,
                num_gpus: 1,
            };
            simulate_baseline(&profile, &cfg).total()
        };

        let mut srow =
            vec![w.label.to_string(), format!("{:.1}%", stats.hot_input_fraction * 100.0)];
        for (gi, gpus) in [1usize, 2, 4].into_iter().enumerate() {
            let cfg = SimConfig {
                total_inputs: w.paper.num_inputs,
                batch: w.per_gpu_batch * gpus, // weak scaling
                hot_fraction: stats.hot_input_fraction,
                rate: Rate::new(50),
                epochs: 1,
                num_gpus: gpus,
            };
            let base = simulate_baseline(&profile, &cfg).total();
            let fae = simulate_fae(&profile, &cfg).total();
            srow.push(format!("{:.2}x/{:.2}x", base_1gpu / base, base_1gpu / fae));
            let mins = |s: f64| s * PAPER_EPOCHS as f64 / 60.0;
            let (pb, pf) = PAPER_TABLE_IV[wi].1[gi];
            abs_rows.push(vec![
                w.label.to_string(),
                gpus.to_string(),
                format!("{:.1}", mins(base)),
                format!("{:.1}", mins(fae)),
                format!("{:.2}x", base / fae),
                format!("{pb:.0}/{pf:.0} = {:.2}x", pb / pf),
            ]);
            json.push(serde_json::json!({
                "workload": w.label, "gpus": gpus,
                "baseline_min_10ep": mins(base), "fae_min_10ep": mins(fae),
                "speedup": base / fae,
                "paper_baseline_min": pb, "paper_fae_min": pf,
                "hot_input_fraction": stats.hot_input_fraction,
            }));
            if gpus == 4 {
                four_gpu_speedups.push(base / fae);
            }
        }
        speedup_rows.push(srow);
    }

    print_table(
        "Fig 13: baseline/FAE speedup normalised to the 1-GPU baseline (base/FAE per column)",
        &["workload", "hot inputs", "1 GPU", "2 GPUs", "4 GPUs"],
        &speedup_rows,
    );
    print_table(
        "Table IV: absolute training time, 10 epochs (simulated minutes)",
        &["workload", "GPUs", "baseline", "FAE", "speedup", "paper (base/FAE)"],
        &abs_rows,
    );
    let avg = four_gpu_speedups.iter().sum::<f64>() / four_gpu_speedups.len() as f64;
    println!("\naverage 4-GPU FAE speedup: {avg:.2}x  (paper: 2.34x average)");
    save_json("fig13_speedup", &serde_json::Value::Array(json));
}
