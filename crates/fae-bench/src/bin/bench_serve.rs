//! `BENCH_serve` — inference-serving saturation benchmark.
//!
//! Builds a serving engine on the tiny workload (calibrated partitions,
//! freshly initialised model — serving cost and cache behaviour do not
//! depend on trained weights), then runs the standard saturation sweep:
//! a closed-loop baseline plus open-loop Poisson points from 25% of
//! nominal capacity to past saturation. Records offered vs achieved
//! throughput, tail latencies, rejection counts and the hot-cache hit
//! rate in `results/BENCH_serve.json` so successive checkouts can be
//! compared. Also measures pass-1 (simulation) wall-clock so scheduler
//! regressions show up even though latencies are simulated.

use fae_bench::{print_table, save_json, timed};
use fae_core::CalibratorConfig;
use fae_data::{generate, GenOptions, WorkloadSpec};
use fae_serve::{calibrate_partitions, saturation_sweep, sweep_json, ServeConfig, ServeEngine};

fn main() {
    let spec = WorkloadSpec::tiny_test();
    let inputs = 8_000;
    let ds = generate(&spec, &GenOptions::sized(1, inputs));
    let partitions = calibrate_partitions(
        &ds,
        CalibratorConfig {
            gpu_budget_bytes: spec.embedding_bytes() / 8,
            small_table_bytes: 8 << 10,
            ..Default::default()
        },
    );
    let cfg = ServeConfig::default();
    let engine = ServeEngine::untrained(spec.clone(), partitions, cfg);
    let requests_per_point = 2_000;

    let (sweep, wall_secs) = timed(|| saturation_sweep(&engine, &ds, requests_per_point));

    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                p.mode.clone(),
                format!("{:.1}", p.offered_rps),
                p.completed.to_string(),
                p.rejected.to_string(),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p95_ms),
                format!("{:.3}", p.p99_ms),
                format!("{:.1}", p.throughput_rps),
                format!("{:.4}", p.hit_rate),
            ]
        })
        .collect();
    print_table(
        &format!(
            "BENCH_serve: saturation sweep (tiny workload, {} workers, capacity {:.0} req/s)",
            cfg.workers, sweep.capacity_rps
        ),
        &["mode", "offered", "done", "rej", "p50 ms", "p95 ms", "p99 ms", "tput", "hit rate"],
        &rows,
    );
    println!(
        "\nsweep wall-clock {wall_secs:.2}s ({} requests/point across {} points)",
        requests_per_point,
        sweep.points.len()
    );

    let record = serde_json::json!({
        "inputs": inputs,
        "requests_per_point": requests_per_point,
        "serve_workers": cfg.workers,
        "max_batch": cfg.max_batch,
        "sweep_wall_seconds": wall_secs,
        "sweep": sweep_json(&sweep),
    });
    save_json("BENCH_serve", &record);
}
