//! Fig 11: input-processor latency — classifying every sparse input as
//! hot or cold, across access thresholds. The op is embarrassingly
//! parallel (rayon over inputs); lower thresholds mean larger hot sets
//! but the per-input work is constant, so latency stays flat-ish.

use fae_bench::{print_table, save_json, timed};
use fae_core::calibrator::log_accesses;
use fae_core::input_processor::classify_inputs;
use fae_data::{generate, GenOptions, WorkloadSpec};
use fae_embed::HotColdPartition;

fn main() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 200_000;
    let ds = generate(&spec, &GenOptions::seeded(14));
    let all: Vec<usize> = (0..ds.len()).collect();
    let counters = log_accesses(&ds, &all);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for t in [1e-3f64, 1e-4, 1e-5, 1e-6] {
        let parts: Vec<HotColdPartition> = counters
            .iter()
            .map(|c| {
                let cutoff = ((t * c.total() as f64).ceil() as u64).max(1);
                HotColdPartition::from_counts(c, cutoff)
            })
            .collect();
        let reps = 3;
        let (hot, secs) = timed(|| {
            let mut last = Vec::new();
            for _ in 0..reps {
                last = classify_inputs(&ds, &parts);
            }
            last
        });
        let hot_frac = hot.iter().filter(|&&h| h).count() as f64 / ds.len() as f64;
        rows.push(vec![
            format!("{t:.0e}"),
            format!("{:.1}", secs * 1e3 / reps as f64),
            format!("{:.1}%", hot_frac * 100.0),
        ]);
        json.push(serde_json::json!({
            "threshold": t,
            "latency_ms": secs * 1e3 / reps as f64,
            "hot_input_fraction": hot_frac,
        }));
    }
    print_table(
        "Fig 11: input-processor classification latency (200k inputs, 26 tables)",
        &["threshold", "latency (ms)", "hot inputs"],
        &rows,
    );
    println!(
        "\npaper: at most 110 s for 45M inputs on 32 threads; \
         scaled here to 200k inputs — throughput is what matters"
    );
    save_json("fig11_classify_latency", &serde_json::Value::Array(json));
}
