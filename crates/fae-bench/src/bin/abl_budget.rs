//! Ablation: the GPU memory budget `L` (paper: 256 MB "suffices and
//! caters to all types of GPUs"). Sweeps L and reports the calibrated
//! threshold, hot sizes, hot-input fraction and the resulting paper-scale
//! speedup — the capacity/performance trade-off behind Fig 6.

use fae_bench::{print_table, save_json};
use fae_core::calibrator::{log_accesses, sample_inputs};
use fae_core::classifier::{classify_tables, hot_bytes};
use fae_core::input_processor::classify_inputs;
use fae_core::scheduler::Rate;
use fae_core::simsched::{simulate_baseline, simulate_fae, SimConfig};
use fae_core::{Calibrator, CalibratorConfig};
use fae_data::{generate, GenOptions, WorkloadSpec};
use fae_models::bridge::profile_for;

fn main() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 120_000;
    let ds = generate(&spec, &GenOptions::seeded(0xBEEF));
    let paper = WorkloadSpec::rmc2_kaggle_paper();
    let shrink = paper.embedding_bytes() as f64 / spec.embedding_bytes() as f64;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for budget_kb in [64usize, 256, 1024, 4096, 16384] {
        let calibrator = Calibrator::new(CalibratorConfig {
            gpu_budget_bytes: budget_kb << 10,
            small_table_bytes: 16 << 10,
            ..Default::default()
        });
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(calibrator.config.seed);
        let samples = sample_inputs(&ds, calibrator.config.sample_rate, &mut rng);
        let counters = log_accesses(&ds, &samples);
        let cal = calibrator.converge(&ds, &counters, &mut rng);
        let parts = classify_tables(&spec, &counters, &cal);
        let actual_hot = hot_bytes(&spec, &parts);
        let hot_frac =
            classify_inputs(&ds, &parts).iter().filter(|&&h| h).count() as f64 / ds.len() as f64;

        // Paper-scale speedup at this hot fraction.
        let profile = profile_for(&paper, actual_hot as f64 * shrink);
        let cfg = SimConfig {
            total_inputs: paper.num_inputs,
            batch: 4096,
            hot_fraction: hot_frac,
            rate: Rate::new(50),
            epochs: 1,
            num_gpus: 4,
        };
        let speedup =
            simulate_baseline(&profile, &cfg).total() / simulate_fae(&profile, &cfg).total();
        rows.push(vec![
            format!("{budget_kb} KiB"),
            format!("{:.0e}", cal.threshold),
            format!("{:.0}", actual_hot as f64 / 1024.0),
            format!("{}", cal.fits_budget),
            format!("{:.1}%", hot_frac * 100.0),
            format!("{speedup:.2}x"),
        ]);
        json.push(serde_json::json!({
            "budget_kb": budget_kb, "threshold": cal.threshold,
            "hot_kib": actual_hot as f64 / 1024.0, "fits": cal.fits_budget,
            "hot_input_fraction": hot_frac, "speedup_4gpu": speedup,
        }));
    }
    print_table(
        "Ablation: GPU memory budget L (Kaggle-shaped, scaled; speedup at paper scale)",
        &["budget", "threshold", "hot size (KiB)", "fits", "hot inputs", "4-GPU speedup"],
        &rows,
    );
    println!(
        "\nexpected: larger budgets admit lower thresholds, more hot inputs and higher \
         speedup with diminishing returns — the paper's L = 256 MB sits on the flat part"
    );
    save_json("abl_budget", &serde_json::Value::Array(json));
}
