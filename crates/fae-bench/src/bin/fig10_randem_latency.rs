//! Fig 10: per-threshold-iteration latency of estimating the hot table
//! size — full counter scan vs the Rand-Em Box. Paper: 14.5–61× lower.

use fae_bench::{print_table, save_json, timed};
use fae_core::calibrator::log_accesses;
use fae_core::RandEmBox;
use fae_data::{generate, GenOptions, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, mut spec) in [
        ("Criteo Kaggle", WorkloadSpec::rmc2_kaggle()),
        ("Criteo Terabyte", WorkloadSpec::rmc3_terabyte()),
    ] {
        spec.num_inputs = 80_000;
        let ds = generate(&spec, &GenOptions::seeded(13));
        let all: Vec<usize> = (0..ds.len()).collect();
        let counters = log_accesses(&ds, &all);
        let box_ = RandEmBox::default();
        let mut rng = StdRng::seed_from_u64(11);
        let reps = 20;
        // One "iteration" = evaluating one threshold over all large tables.
        let cutoff = 3u64;
        let (_, full_s) = timed(|| {
            for _ in 0..reps {
                for c in &counters {
                    std::hint::black_box(c.rows_at_or_above(cutoff));
                }
            }
        });
        let (_, samp_s) = timed(|| {
            for _ in 0..reps {
                for c in &counters {
                    std::hint::black_box(box_.estimate(c, cutoff, &mut rng));
                }
            }
        });
        let speedup = full_s / samp_s;
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", full_s * 1e3 / reps as f64),
            format!("{:.3}", samp_s * 1e3 / reps as f64),
            format!("{speedup:.1}x"),
        ]);
        json.push(serde_json::json!({
            "workload": label,
            "full_ms": full_s * 1e3 / reps as f64,
            "randem_ms": samp_s * 1e3 / reps as f64,
            "speedup": speedup,
        }));
    }
    print_table(
        "Fig 10: per-iteration hot-size estimation latency",
        &["workload", "full scan (ms)", "Rand-Em (ms)", "reduction"],
        &rows,
    );
    println!("\npaper: 14.5x-61x lower latency per threshold iteration (<25 s absolute)");
    save_json("fig10_randem_latency", &serde_json::Value::Array(json));
}
