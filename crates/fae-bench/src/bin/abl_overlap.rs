//! Ablation: compute/communication overlap. The paper measures a
//! framework that serialises phases; a pipelined runtime could overlap
//! them. This harness prices every mode both ways (additive vs
//! critical-path DAG) and shows the conclusion is overlap-robust: the
//! baseline is CPU-resource-bound, so pipelining cannot save it.

use fae_bench::{print_table, save_json, workloads};
use fae_models::bridge::profile_for;
use fae_sysmodel::{pipelining_headroom, ExecMode, SystemConfig};

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in workloads() {
        let profile = profile_for(&w.paper, w.budget_bytes as f64);
        let sys = SystemConfig::paper_server(4);
        let batch = w.per_gpu_batch * 4;
        for (label, mode) in
            [("baseline", ExecMode::BaselineHybrid), ("FAE hot", ExecMode::FaeHotGpu)]
        {
            let (serial, overlapped, ratio) = pipelining_headroom(&profile, &sys, mode, batch);
            rows.push(vec![
                w.label.to_string(),
                label.to_string(),
                format!("{:.1}", serial * 1e3),
                format!("{:.1}", overlapped * 1e3),
                format!("{:.0}%", (1.0 - ratio) * 100.0),
            ]);
            json.push(serde_json::json!({
                "workload": w.label, "mode": label,
                "serial_ms": serial * 1e3, "overlapped_ms": overlapped * 1e3,
                "headroom": 1.0 - ratio,
            }));
        }
        // The decisive comparison: pipelined baseline vs serial FAE.
        let (_, base_pipe, _) =
            pipelining_headroom(&profile, &sys, ExecMode::BaselineHybrid, batch);
        let (fae_serial, _, _) = pipelining_headroom(&profile, &sys, ExecMode::FaeHotGpu, batch);
        rows.push(vec![
            w.label.to_string(),
            "FAE(serial) vs base(pipelined)".into(),
            format!("{:.1}", fae_serial * 1e3),
            format!("{:.1}", base_pipe * 1e3),
            format!("{:.2}x", base_pipe / fae_serial),
        ]);
    }
    print_table(
        "Ablation: per-step cost, additive vs critical-path (4 GPUs, ms)",
        &["workload", "mode", "serial", "overlapped", "headroom/speedup"],
        &rows,
    );
    println!(
        "\nthe baseline's phases share the CPU, so overlap frees little; even a perfectly \
         pipelined baseline loses to a fully serialised FAE hot step"
    );
    save_json("abl_overlap", &serde_json::Value::Array(json));
}
