//! Observability overhead benchmark: what journal shipping costs.
//!
//! Two 2-worker distributed runs of the tiny workload over real
//! loopback TCP, identical except for the observability plane: shipping
//! OFF (telemetry disabled — the wire carries zero telemetry frames) vs
//! ON (journal + per-node sidecars + alert engine). Throughput is
//! reported two ways:
//!
//! * **simulated** steps per simulated second — deterministic, because
//!   shipping's only simulated cost is the `Phase::Framework` charge per
//!   admitted batch; this is the number the < 10% overhead gate holds;
//! * **wall-clock** steps per real second — honest but noisy, recorded
//!   for context only.
//!
//! The model digest must match between the two runs bit for bit:
//! observability must observe, never perturb.
//!
//! Output: `results/BENCH_obs.json` (via `scripts/bench.sh obs`); its
//! top-level `steps_per_sec` key is the baseline `fae train
//! --alert-baseline` consumes.

use std::net::TcpListener;
use std::thread;
use std::time::Instant;

use fae_bench::{print_table, save_json};
use fae_core::input_processor::{PreprocessConfig, Preprocessed};
use fae_core::{
    pipeline, train_fae_with_engine, CalibratorConfig, FaultPlan, ResilienceOptions, Telemetry,
    TrainConfig, TrainReport,
};
use fae_data::{generate, Dataset, GenOptions, WorkloadSpec};
use fae_net::{run_node, NetConfig, NodeConfig, RemoteEngine};
use fae_telemetry::AlertEngine;

const WORKERS: usize = 2;

/// Same shrunken-calibrator tiny workload as tests/distributed.rs.
fn setup() -> (WorkloadSpec, Preprocessed, Dataset, TrainConfig) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(131, 6_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        CalibratorConfig {
            gpu_budget_bytes: 40 << 10,
            small_table_bytes: 2 << 10,
            ..Default::default()
        },
        &PreprocessConfig { minibatch_size: 64, seed: 3 },
    );
    let cfg = TrainConfig {
        epochs: 1,
        minibatch_size: 64,
        initial_rate: 25,
        workers: WORKERS,
        ..Default::default()
    };
    (spec, artifacts.preprocessed, test, cfg)
}

/// One 2-worker distributed run with the given telemetry sink.
fn run(
    spec: &WorkloadSpec,
    pre: &Preprocessed,
    test: &Dataset,
    cfg: &TrainConfig,
    telemetry: Telemetry,
) -> (TrainReport, f64) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handles: Vec<_> = (0..WORKERS)
        .map(|k| {
            let node = NodeConfig {
                addr: addr.clone(),
                node_id: k as u32,
                workers: WORKERS as u32,
                net: NetConfig::default(),
                plan: FaultPlan::default(),
            };
            thread::spawn(move || run_node(node))
        })
        .collect();
    let seed = cfg.seed;
    let num_gpus = cfg.num_gpus;
    let opts = ResilienceOptions { telemetry, ..Default::default() };
    let t0 = Instant::now();
    let report = train_fae_with_engine(spec, pre, test, cfg, &opts, move |model| {
        RemoteEngine::new(
            model,
            spec,
            seed,
            WORKERS,
            num_gpus,
            listener,
            NetConfig::default(),
            FaultPlan::default(),
        )
        .expect("coordinator start")
    });
    let wall_s = t0.elapsed().as_secs_f64();
    for h in handles {
        h.join().expect("node thread").expect("node exit");
    }
    (report, wall_s)
}

fn steps(r: &TrainReport) -> u64 {
    (r.hot_steps + r.cold_steps) as u64
}

fn main() {
    let (spec, pre, test, cfg) = setup();
    let dir = std::env::temp_dir().join(format!("fae-bench-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let (off, off_wall_s) = run(&spec, &pre, &test, &cfg, Telemetry::disabled());

    let journal = dir.join("run.jsonl");
    let telem = Telemetry::builder()
        .journal_path(&journal)
        .alerts(AlertEngine::parse("heartbeat-gap>0").expect("rules"))
        .retain_events(true)
        .try_build()
        .expect("telemetry");
    let (on, on_wall_s) = run(&spec, &pre, &test, &cfg, telem.clone());

    assert_eq!(
        off.model_digest, on.model_digest,
        "observability must observe, never perturb — digest diverged"
    );

    let sps_sim_off = steps(&off) as f64 / off.simulated_seconds;
    let sps_sim_on = steps(&on) as f64 / on.simulated_seconds;
    let overhead = (sps_sim_off - sps_sim_on) / sps_sim_off;
    assert!(
        overhead < 0.10,
        "journal shipping costs {:.1}% simulated throughput (gate: < 10%)",
        overhead * 100.0
    );
    let shipped_lines: u64 = telem
        .sidecar_paths()
        .iter()
        .map(|p| std::fs::read_to_string(p).map(|s| s.lines().count() as u64).unwrap_or(0))
        .sum();

    print_table(
        "Observability overhead (tiny workload, 2 workers, loopback TCP)",
        &["shipping", "steps", "steps/s (sim)", "steps/s (wall)", "digest match"],
        &[
            vec![
                "off".to_string(),
                steps(&off).to_string(),
                format!("{sps_sim_off:.2}"),
                format!("{:.0}", steps(&off) as f64 / off_wall_s.max(1e-9)),
                "yes".to_string(),
            ],
            vec![
                "on".to_string(),
                steps(&on).to_string(),
                format!("{sps_sim_on:.2}"),
                format!("{:.0}", steps(&on) as f64 / on_wall_s.max(1e-9)),
                "yes".to_string(),
            ],
        ],
    );
    println!(
        "\nshipping overhead: {:.3}% simulated throughput ({} sidecar lines shipped) — gate < 10%",
        overhead * 100.0,
        shipped_lines
    );

    save_json(
        "BENCH_obs",
        &serde_json::json!({
            "workers": WORKERS,
            "steps_per_sec": sps_sim_on,
            "shipping_off": {
                "steps": steps(&off),
                "simulated_seconds": off.simulated_seconds,
                "steps_per_sim_sec": sps_sim_off,
                "wall_s": off_wall_s,
            },
            "shipping_on": {
                "steps": steps(&on),
                "simulated_seconds": on.simulated_seconds,
                "steps_per_sim_sec": sps_sim_on,
                "wall_s": on_wall_s,
                "sidecar_lines": shipped_lines,
            },
            "overhead_frac": overhead,
            "overhead_gate": 0.10,
            "digest_match": true,
        }),
    );
}
