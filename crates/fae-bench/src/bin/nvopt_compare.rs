//! §V comparison: FAE vs an NvOPT-style GPU-cache baseline on Criteo
//! Terabyte, mini-batch 32k, single V100. Paper: FAE cuts the per-epoch
//! time from 105.98 to 71.58 minutes (1.48× faster).

use fae_bench::{measure_hotness, print_table, save_json, workloads};
use fae_core::scheduler::Rate;
use fae_core::simsched::{simulate_fae, simulate_uvm, SimConfig};
use fae_models::bridge::profile_for;

fn main() {
    let w = workloads().into_iter().find(|w| w.label == "Criteo Terabyte").expect("terabyte");
    let shrink = w.paper.embedding_bytes() as f64 / w.scaled.embedding_bytes() as f64;
    let scaled_budget = ((w.budget_bytes as f64 / shrink) as usize).max(64 << 10);
    let stats = measure_hotness(&w.scaled, w.measure_inputs, scaled_budget);
    let profile = profile_for(&w.paper, w.budget_bytes as f64);
    let cfg = SimConfig {
        total_inputs: w.paper.num_inputs,
        batch: 32 * 1024,
        hot_fraction: stats.hot_input_fraction,
        rate: Rate::new(50),
        epochs: 1,
        num_gpus: 1,
    };
    // An LRU/UVM cache never reaches the oracle hit rate of the hot
    // access share: the cold tail churns through and evicts hot rows.
    // This gap is precisely FAE's advantage over reactive caching — its
    // statically pinned hot set cannot be evicted.
    const LRU_CHURN: f64 = 0.9;
    let hit_rate = stats.hot_access_share * LRU_CHURN;
    let fae = simulate_fae(&profile, &cfg).total();
    let uvm = simulate_uvm(&profile, &cfg, hit_rate).total();

    let rows = vec![
        vec!["NvOPT-style (UVM cache)".into(), format!("{:.1}", uvm / 60.0), "105.98".into()],
        vec!["FAE".into(), format!("{:.1}", fae / 60.0), "71.58".into()],
    ];
    print_table(
        "NvOPT comparison: Criteo Terabyte, batch 32k, 1 GPU (per-epoch minutes)",
        &["system", "simulated", "paper"],
        &rows,
    );
    println!(
        "\nFAE is {:.2}x faster than the cache-based comparator (paper: 1.48x); \
         cache hit rate modelled at the measured hot access share ({:.1}%)",
        uvm / fae,
        hit_rate * 100.0
    );
    save_json(
        "nvopt_compare",
        &serde_json::json!({
            "uvm_epoch_min": uvm / 60.0,
            "fae_epoch_min": fae / 60.0,
            "ratio": uvm / fae,
            "paper_ratio": 105.98 / 71.58,
            "hit_rate": hit_rate,
        }),
    );
}
