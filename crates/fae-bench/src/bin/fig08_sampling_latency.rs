//! Fig 8: wall-clock reduction in profiling latency from sampling the
//! input dataset (5%) instead of scanning it fully. Paper: 19–55× lower.

use fae_bench::{print_table, save_json, timed, workloads};
use fae_core::calibrator::{log_accesses, sample_inputs};
use fae_data::{generate, GenOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in workloads() {
        let mut spec = w.scaled.clone();
        spec.num_inputs = 150_000;
        let ds = generate(&spec, &GenOptions::seeded(8));
        let all: Vec<usize> = (0..ds.len()).collect();
        // Repeat to lift the measurements above timer noise.
        let reps = 5;
        let (_, full_s) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(log_accesses(&ds, &all));
            }
        });
        let mut rng = StdRng::seed_from_u64(9);
        let sample = sample_inputs(&ds, 0.05, &mut rng);
        let (_, samp_s) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(log_accesses(&ds, &sample));
            }
        });
        let speedup = full_s / samp_s;
        rows.push(vec![
            w.label.to_string(),
            format!("{:.1}", full_s * 1e3 / reps as f64),
            format!("{:.2}", samp_s * 1e3 / reps as f64),
            format!("{speedup:.1}x"),
        ]);
        json.push(serde_json::json!({
            "workload": w.label,
            "full_ms": full_s * 1e3 / reps as f64,
            "sampled_ms": samp_s * 1e3 / reps as f64,
            "speedup": speedup,
        }));
    }
    print_table(
        "Fig 8: input-profiling latency, full scan vs 5% sample",
        &["workload", "full (ms)", "sampled (ms)", "reduction"],
        &rows,
    );
    println!("\npaper: 19x-55x lower profiling latency (their absolute max: 200 s at full scale)");
    save_json("fig08_sampling_latency", &serde_json::Value::Array(json));
}
