//! Fig 15: FAE speedup over the baseline as the mini-batch size grows.
//! Paper: up to 4.7× at large batches — FAE's fixed overheads amortise
//! while the baseline's per-sample CPU costs do not shrink.

use fae_bench::{measure_hotness, print_table, save_json, workloads};
use fae_core::scheduler::Rate;
use fae_core::simsched::{simulate_baseline, simulate_fae, SimConfig};
use fae_models::bridge::profile_for;

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut max_speedup: f64 = 0.0;
    for w in workloads() {
        let shrink = w.paper.embedding_bytes() as f64 / w.scaled.embedding_bytes() as f64;
        let scaled_budget = ((w.budget_bytes as f64 / shrink) as usize).max(64 << 10);
        let stats = measure_hotness(&w.scaled, w.measure_inputs, scaled_budget);
        let profile = profile_for(&w.paper, w.budget_bytes as f64);
        let mut row = vec![w.label.to_string()];
        for mult in [1usize, 4, 16, 32] {
            let batch = w.per_gpu_batch * mult;
            let cfg = SimConfig {
                total_inputs: w.paper.num_inputs,
                batch,
                hot_fraction: stats.hot_input_fraction,
                rate: Rate::new(50),
                epochs: 1,
                num_gpus: 1,
            };
            let s =
                simulate_baseline(&profile, &cfg).total() / simulate_fae(&profile, &cfg).total();
            max_speedup = max_speedup.max(s);
            row.push(format!("{s:.2}x"));
            json.push(serde_json::json!({
                "workload": w.label, "batch": batch, "speedup": s,
            }));
        }
        rows.push(row);
    }
    print_table(
        "Fig 15: FAE speedup vs mini-batch size (1 GPU, batch = paper batch × multiplier)",
        &["workload", "x1", "x4", "x16", "x32"],
        &rows,
    );
    println!("\nmax speedup observed: {max_speedup:.2}x  (paper: up to 4.7x at large batches)");
    save_json("fig15_batchsize", &serde_json::Value::Array(json));
}
