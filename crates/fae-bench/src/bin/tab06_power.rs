//! Table VI: per-GPU power consumption, baseline vs FAE. The paper
//! measures a 5.3–8.8% reduction, attributed to reduced CPU↔GPU
//! communication (I/O activity burns board power without useful math).

use fae_bench::{measure_hotness, print_table, save_json, workloads};
use fae_core::scheduler::Rate;
use fae_core::simsched::{simulate_baseline, simulate_fae, SimConfig};
use fae_models::bridge::profile_for;
use fae_sysmodel::power::average_gpu_power;

/// Paper Table VI: (baseline W, FAE W).
const PAPER: [(&str, f64, f64); 3] = [
    ("Criteo Kaggle", 58.91, 55.81),
    ("Taobao Alibaba", 60.21, 56.62),
    ("Criteo Terabyte", 62.47, 57.03),
];

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (wi, w) in workloads().into_iter().enumerate() {
        let shrink = w.paper.embedding_bytes() as f64 / w.scaled.embedding_bytes() as f64;
        let scaled_budget = ((w.budget_bytes as f64 / shrink) as usize).max(64 << 10);
        let stats = measure_hotness(&w.scaled, w.measure_inputs, scaled_budget);
        let profile = profile_for(&w.paper, w.budget_bytes as f64);
        let cfg = SimConfig {
            total_inputs: w.paper.num_inputs,
            batch: w.per_gpu_batch, // paper's power table uses batch 1024
            hot_fraction: stats.hot_input_fraction,
            rate: Rate::new(50),
            epochs: 1,
            num_gpus: 1,
        };
        let base_w = average_gpu_power(&simulate_baseline(&profile, &cfg));
        let fae_w = average_gpu_power(&simulate_fae(&profile, &cfg));
        let reduction = (base_w - fae_w) / base_w * 100.0;
        let (_, pb, pf) = PAPER[wi];
        rows.push(vec![
            w.label.to_string(),
            format!("{base_w:.2}"),
            format!("{fae_w:.2}"),
            format!("{reduction:.1}%"),
            format!("{pb:.1}/{pf:.1} ({:.1}%)", (pb - pf) / pb * 100.0),
        ]);
        json.push(serde_json::json!({
            "workload": w.label, "baseline_w": base_w, "fae_w": fae_w,
            "reduction_pct": reduction,
            "paper_baseline_w": pb, "paper_fae_w": pf,
        }));
    }
    print_table(
        "Table VI: per-GPU power (simulated watts)",
        &["workload", "baseline", "FAE", "reduction", "paper (base/FAE)"],
        &rows,
    );
    println!("\npaper: 5.3%-8.8% lower per-GPU power under FAE");
    save_json("tab06_power", &serde_json::Value::Array(json));
}
