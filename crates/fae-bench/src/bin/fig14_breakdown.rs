//! Fig 14 + Table V: per-phase latency breakdown of baseline vs FAE, and
//! the absolute CPU↔GPU communication time over 10 epochs.

use fae_bench::{measure_hotness, print_table, save_json, workloads};
use fae_core::scheduler::Rate;
use fae_core::simsched::{simulate_baseline, simulate_fae, SimConfig};
use fae_models::bridge::profile_for;
use fae_sysmodel::constants::PAPER_EPOCHS;
use fae_sysmodel::Phase;

/// Paper Table V, CPU-GPU communication minutes over 10 epochs:
/// (baseline, FAE) at 1/2/4 GPUs.
const PAPER_TABLE_V: [(&str, [(f64, f64); 3]); 3] = [
    ("Criteo Kaggle", [(11.05, 2.5), (11.56, 2.17), (9.0, 2.14)]),
    ("Taobao Alibaba", [(36.21, 3.09), (36.53, 10.60), (23.90, 5.77)]),
    ("Criteo Terabyte", [(38.0, 6.63), (46.49, 6.20), (24.21, 7.62)]),
];

fn main() {
    let mut comm_rows = Vec::new();
    let mut json = Vec::new();
    for (wi, w) in workloads().into_iter().enumerate() {
        let shrink = w.paper.embedding_bytes() as f64 / w.scaled.embedding_bytes() as f64;
        let scaled_budget = ((w.budget_bytes as f64 / shrink) as usize).max(64 << 10);
        let stats = measure_hotness(&w.scaled, w.measure_inputs, scaled_budget);
        let profile = profile_for(&w.paper, w.budget_bytes as f64);

        for (gi, gpus) in [1usize, 2, 4].into_iter().enumerate() {
            let cfg = SimConfig {
                total_inputs: w.paper.num_inputs,
                batch: w.per_gpu_batch * gpus,
                hot_fraction: stats.hot_input_fraction,
                rate: Rate::new(50),
                epochs: 1,
                num_gpus: gpus,
            };
            let base = simulate_baseline(&profile, &cfg);
            let fae = simulate_fae(&profile, &cfg);

            if gpus == 4 {
                // Fig 14's stacked bars, printed as percent-of-total.
                let mut rows = Vec::new();
                for p in Phase::ALL {
                    let bf = base.get(p) / base.total() * 100.0;
                    let ff = fae.get(p) / fae.total() * 100.0;
                    if bf > 0.05 || ff > 0.05 {
                        rows.push(vec![p.to_string(), format!("{bf:.1}%"), format!("{ff:.1}%")]);
                    }
                }
                print_table(
                    &format!("Fig 14: phase breakdown, {} @ 4 GPUs", w.label),
                    &["phase", "baseline", "FAE"],
                    &rows,
                );
            }

            let mins = |s: f64| s * PAPER_EPOCHS as f64 / 60.0;
            let (pb, pf) = PAPER_TABLE_V[wi].1[gi];
            comm_rows.push(vec![
                w.label.to_string(),
                gpus.to_string(),
                format!("{:.2}", mins(base.cpu_gpu_comm())),
                format!("{:.2}", mins(fae.cpu_gpu_comm())),
                format!("{pb:.1}/{pf:.1}"),
            ]);
            json.push(serde_json::json!({
                "workload": w.label, "gpus": gpus,
                "baseline_comm_min": mins(base.cpu_gpu_comm()),
                "fae_comm_min": mins(fae.cpu_gpu_comm()),
                "paper_baseline_comm_min": pb, "paper_fae_comm_min": pf,
                "baseline_breakdown": Phase::ALL.iter()
                    .map(|&p| (p.to_string(), base.get(p))).collect::<Vec<_>>(),
                "fae_breakdown": Phase::ALL.iter()
                    .map(|&p| (p.to_string(), fae.get(p))).collect::<Vec<_>>(),
            }));
        }
    }
    print_table(
        "Table V: CPU-GPU communication, 10 epochs (simulated minutes)",
        &["workload", "GPUs", "baseline", "FAE", "paper (base/FAE)"],
        &comm_rows,
    );
    println!(
        "\npaper: the optimizer dominates baseline time; FAE eliminates PCIe transfers for hot \
         batches and pays a small embed-sync overhead instead"
    );
    save_json("fig14_breakdown", &serde_json::Value::Array(json));
}
