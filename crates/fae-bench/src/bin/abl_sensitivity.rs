//! Sensitivity analysis of the cost model's calibration constants.
//!
//! DESIGN.md commits to four calibrated constants (CPU row-access cost,
//! per-step framework overhead, multi-GPU penalty, PCIe small-tensor
//! efficiency). This harness perturbs each by ×0.5 and ×2 around the
//! calibrated point and reports the resulting 4-GPU Kaggle speedup — the
//! headline conclusion should survive every perturbation (FAE > 1.5× in
//! all cells), showing it is not an artefact of the calibration.

use fae_bench::{print_table, save_json};
use fae_core::scheduler::Rate;
use fae_core::simsched::SimConfig;
use fae_data::WorkloadSpec;
use fae_models::bridge::profile_for;
use fae_sysmodel::{ModelProfile, SystemConfig};

/// Re-implements the 4-GPU Kaggle speedup with an explicit system config
/// so individual constants can be perturbed. (simulate_* uses the paper
/// server; here we inline its construction.)
fn speedup_with(mut mutate: impl FnMut(&mut SystemConfig, &mut ModelProfile)) -> f64 {
    let spec = WorkloadSpec::rmc2_kaggle_paper();
    let mut profile = profile_for(&spec, 256e6);
    let mut sys = SystemConfig::paper_server(4);
    mutate(&mut sys, &mut profile);
    let cfg = SimConfig {
        total_inputs: spec.num_inputs,
        batch: 4096,
        hot_fraction: 0.85,
        rate: Rate::new(50),
        epochs: 1,
        num_gpus: 4,
    };
    // simulate_* constructs its own paper server, so price steps directly.
    use fae_sysmodel::{step_cost, sync_cost, ExecMode};
    let shape = fae_core::simsched::schedule_shape(&cfg);
    let base = step_cost(&profile, &sys, ExecMode::BaselineHybrid, cfg.batch).total()
        * (shape.hot_steps + shape.cold_steps) as f64;
    let hot = step_cost(&profile, &sys, ExecMode::FaeHotGpu, cfg.batch).total();
    let cold = step_cost(&profile, &sys, ExecMode::BaselineHybrid, cfg.batch).total();
    let sync = sync_cost(&sys, profile.hot_emb_bytes).total();
    let fae = hot * shape.hot_steps as f64
        + cold * shape.cold_steps as f64
        + sync * (shape.transitions + 1) as f64;
    base / fae
}

fn main() {
    let nominal = speedup_with(|_, _| {});
    let mut rows = vec![vec!["(calibrated)".to_string(), "1.0".into(), format!("{nominal:.2}x")]];
    let mut json = vec![serde_json::json!({"knob": "nominal", "factor": 1.0, "speedup": nominal})];
    let mut all_ok = true;

    type Knob = (&'static str, fn(&mut SystemConfig, &mut ModelProfile, f64));
    let knobs: Vec<Knob> = vec![
        ("cpu row-access cost", |s, _, f| s.cpu.row_access *= f),
        ("cpu mem bandwidth", |s, _, f| s.cpu.mem_bw *= f),
        ("gpu throughput", |s, _, f| s.gpu.flops *= f),
        ("pcie bandwidth", |s, _, f| s.pcie.bandwidth *= f),
        ("nvlink bandwidth", |s, _, f| s.nvlink.bandwidth *= f),
        ("hot-bag bytes", |_, p, f| p.hot_emb_bytes *= f),
    ];
    for (name, apply) in knobs {
        for factor in [0.5f64, 2.0] {
            let s = speedup_with(|sys, prof| apply(sys, prof, factor));
            all_ok &= s > 1.5;
            rows.push(vec![name.to_string(), format!("{factor}"), format!("{s:.2}x")]);
            json.push(serde_json::json!({"knob": name, "factor": factor, "speedup": s}));
        }
    }
    print_table(
        "Sensitivity: 4-GPU Kaggle speedup under ±2x parameter perturbations",
        &["knob", "factor", "speedup"],
        &rows,
    );
    println!(
        "\nconclusion robust: FAE > 1.5x in every cell: {}",
        if all_ok { "YES" } else { "NO — see table" }
    );
    save_json("abl_sensitivity", &serde_json::Value::Array(json));
}
