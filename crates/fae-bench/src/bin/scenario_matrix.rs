//! CI scenario matrix: {baseline, fae, fae+skip} × {stationary Zipf,
//! long-tail α→1.0} on the tiny workload.
//!
//! Each cell is a real end-to-end run (calibrate → classify → preprocess
//! → train) small enough for CI, with its journal written under
//! `results/scenario_matrix/` so the CI job can upload the artifacts.
//! The matrix asserts
//!
//! * an accuracy floor per cell, and accuracy parity of both FAE
//!   configurations with the baseline, and
//! * the speedup ordering on the stationary Zipf stream: FAE (and FAE
//!   with lookahead + stale-skip) must finish in no more simulated time
//!   than the baseline.
//!
//! On the long-tail stream (α → 1.0) the hot set covers far less of the
//! access mass, so FAE's advantage can invert — the paper's own framing
//! (§II-B) is that skew is what FAE monetises. The matrix *records* the
//! crossover honestly instead of asserting a win there.
//!
//! Exits nonzero when any assertion fails, so the CI job gates on it.

use std::path::PathBuf;

use fae_bench::{print_table, save_json, timed};
use fae_core::{pipeline, CalibratorConfig, PreprocessConfig, ResilienceOptions, TrainConfig};
use fae_data::{generate, GenOptions, WorkloadSpec};
use fae_telemetry::Telemetry;

/// One trained cell of the matrix.
struct Cell {
    scenario: &'static str,
    mode: &'static str,
    accuracy: f64,
    simulated_seconds: f64,
    wall_seconds: f64,
    steps: usize,
    skipped: u64,
    /// Journal path, for the FAE cells. The baseline trainer has no
    /// telemetry hooks — it models the conventional loop untouched.
    journal: Option<PathBuf>,
}

fn journal_dir() -> PathBuf {
    let dir = PathBuf::from("results/scenario_matrix");
    std::fs::create_dir_all(&dir).expect("create results/scenario_matrix");
    dir
}

/// Runs one (scenario, mode) cell on a prepared dataset.
fn run_cell(
    scenario: &'static str,
    mode: &'static str,
    spec: &WorkloadSpec,
    train: &fae_data::Dataset,
    test: &fae_data::Dataset,
    art: &pipeline::StaticArtifacts,
) -> Cell {
    let base_cfg = TrainConfig { epochs: 1, minibatch_size: 64, num_gpus: 2, ..Default::default() };
    let cfg = match mode {
        "baseline" | "fae" => base_cfg,
        "fae-skip" => TrainConfig { lookahead: 64, stale_skip: 1e-4, ..base_cfg },
        other => panic!("unknown mode `{other}`"),
    };
    let mut journal = None;
    let (report, wall) = timed(|| {
        if mode == "baseline" {
            fae_core::train_baseline(spec, train, test, &cfg)
        } else {
            let path = journal_dir().join(format!("{scenario}-{mode}.jsonl"));
            let telemetry = Telemetry::builder()
                .journal_path(&path)
                .try_build()
                .expect("journal under results/ is writable");
            journal = Some(path);
            let opts = ResilienceOptions { telemetry, ..Default::default() };
            fae_core::train_fae_resilient(spec, &art.preprocessed, test, &cfg, &opts)
        }
    });
    Cell {
        scenario,
        mode,
        accuracy: report.final_test.accuracy,
        simulated_seconds: report.simulated_seconds,
        wall_seconds: wall,
        steps: report.hot_steps + report.cold_steps,
        skipped: report.skip.deferred,
        journal,
    }
}

/// Runs one scenario row: prepare once, train all three modes on it.
fn run_scenario(scenario: &'static str, spec: &WorkloadSpec) -> Vec<Cell> {
    let ds = generate(spec, &GenOptions::sized(0x5CE2, 12_000));
    let (train, test) = ds.split(0.2);
    // The forced-partial budget keeps both hot and cold batches in play
    // on the tiny tables (an all-hot run would trivialise the matrix).
    let art = pipeline::prepare(
        &train,
        CalibratorConfig {
            gpu_budget_bytes: 40 << 10,
            small_table_bytes: 2 << 10,
            ..Default::default()
        },
        &PreprocessConfig { minibatch_size: 64, seed: 5 },
    );
    ["baseline", "fae", "fae-skip"]
        .into_iter()
        .map(|mode| run_cell(scenario, mode, spec, &train, &test, &art))
        .collect()
}

fn main() {
    let zipf_spec = WorkloadSpec::tiny_test();
    let longtail_spec = {
        let mut s = WorkloadSpec::tiny_test();
        s.zipf_exponent = 1.0; // α → 1.0: the long tail carries the mass
        s
    };
    let zipf = run_scenario("zipf", &zipf_spec);
    let longtail = run_scenario("longtail", &longtail_spec);

    let rows: Vec<Vec<String>> = zipf
        .iter()
        .chain(&longtail)
        .map(|c| {
            vec![
                c.scenario.to_string(),
                c.mode.to_string(),
                c.steps.to_string(),
                format!("{:.4}", c.accuracy),
                format!("{:.4}", c.simulated_seconds),
                format!("{:.2}", c.wall_seconds),
                c.skipped.to_string(),
            ]
        })
        .collect();
    print_table(
        "scenario matrix: {baseline, fae, fae+skip} x {zipf, longtail}",
        &["scenario", "mode", "steps", "accuracy", "sim (s)", "wall (s)", "deferred"],
        &rows,
    );

    // --- Gates ------------------------------------------------------
    let mut violations: Vec<String> = Vec::new();
    let floor = |cells: &[Cell], floor: f64| {
        cells
            .iter()
            .filter(|c| c.accuracy < floor)
            .map(|c| {
                format!(
                    "{}/{}: accuracy {:.4} below floor {floor:.2}",
                    c.scenario, c.mode, c.accuracy
                )
            })
            .collect::<Vec<_>>()
    };
    violations.extend(floor(&zipf, 0.55));
    violations.extend(floor(&longtail, 0.50));
    for cells in [&zipf, &longtail] {
        let base = &cells[0];
        for c in &cells[1..] {
            let delta = (c.accuracy - base.accuracy).abs();
            if delta > 0.05 {
                violations.push(format!(
                    "{}/{}: accuracy {:.4} not at parity with baseline {:.4} (|delta| {delta:.4} > 0.05)",
                    c.scenario, c.mode, c.accuracy, base.accuracy
                ));
            }
        }
    }
    // Speedup ordering holds on the skewed stream only.
    let zipf_base = zipf[0].simulated_seconds;
    for c in &zipf[1..] {
        if c.simulated_seconds > zipf_base {
            violations.push(format!(
                "zipf/{}: simulated {:.4}s slower than baseline {:.4}s — FAE must win on the skewed stream",
                c.mode, c.simulated_seconds, zipf_base
            ));
        }
    }
    let longtail_base = longtail[0].simulated_seconds;
    let longtail_fae_wins = longtail[1].simulated_seconds <= longtail_base;
    println!(
        "\nlongtail crossover: fae {:.4}s vs baseline {:.4}s — {}",
        longtail[1].simulated_seconds,
        longtail_base,
        if longtail_fae_wins {
            "fae still ahead (tail not flat enough to invert)"
        } else {
            "baseline ahead, as expected when the skew flattens"
        }
    );

    let cell_json = |c: &Cell| {
        serde_json::json!({
            "scenario": c.scenario,
            "mode": c.mode,
            "steps": c.steps,
            "accuracy": c.accuracy,
            "simulated_seconds": c.simulated_seconds,
            "wall_seconds": c.wall_seconds,
            "skip_deferred": c.skipped,
            "journal": c.journal.as_ref().map(|p| p.display().to_string()),
        })
    };
    save_json(
        "scenario_matrix",
        &serde_json::json!({
            "cells": zipf.iter().chain(&longtail).map(cell_json).collect::<Vec<_>>(),
            "zipf_speedup_fae": zipf_base / zipf[1].simulated_seconds,
            "zipf_speedup_fae_skip": zipf_base / zipf[2].simulated_seconds,
            "longtail_speedup_fae": longtail_base / longtail[1].simulated_seconds,
            "longtail_fae_wins": longtail_fae_wins,
            "violations": violations.clone(),
        }),
    );

    if !violations.is_empty() {
        eprintln!("\nscenario matrix FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("scenario matrix OK: accuracy floors, parity, and zipf speedup ordering all hold");
}
