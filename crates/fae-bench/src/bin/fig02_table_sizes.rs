//! Fig 2: full embedding-table sizes vs the size of their hot portions.
//!
//! The paper reports 2 GB / 1 GB* / 61 GB full tables for Kaggle, Taobao
//! and Terabyte, with hot portions under 256 MB capturing 75–92% of all
//! accesses (*Taobao's tables are 0.3 GB). We measure hotness on the
//! scaled datasets with the real calibrator and extrapolate the hot-row
//! fraction to the paper-scale tables.

use fae_bench::{measure_hotness, print_table, save_json, workloads};

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in workloads() {
        // Budget scaled to the dataset shrink so the calibrator picks a
        // comparably selective threshold.
        let shrink = w.paper.embedding_bytes() as f64 / w.scaled.embedding_bytes() as f64;
        let scaled_budget = ((w.budget_bytes as f64 / shrink) as usize).max(64 << 10);
        let stats = measure_hotness(&w.scaled, w.measure_inputs, scaled_budget);
        let full_gb = w.paper.embedding_bytes() as f64 / (1u64 << 30) as f64;
        let hot_mb = full_gb * 1024.0 * stats.hot_row_fraction;
        rows.push(vec![
            w.label.to_string(),
            format!("{full_gb:.1}"),
            format!("{hot_mb:.1}"),
            format!("{:.1}%", stats.hot_row_fraction * 100.0),
            format!("{:.1}%", stats.hot_access_share * 100.0),
        ]);
        json.push(serde_json::json!({
            "workload": w.label,
            "full_gb": full_gb,
            "hot_mb": hot_mb,
            "hot_row_fraction": stats.hot_row_fraction,
            "hot_access_share": stats.hot_access_share,
            "threshold": stats.threshold,
        }));
    }
    print_table(
        "Fig 2: embedding table sizes and hot portions",
        &["workload", "full (GB)", "hot (MB)", "hot rows", "hot access share"],
        &rows,
    );
    println!(
        "\npaper: full 2 / 0.3 / 61 GB; hot portions < 256 MB; hot rows capture 75-92% of accesses"
    );
    save_json("fig02_table_sizes", &serde_json::Value::Array(json));
}
