//! Fig 7: the access profile (sorted per-row access counts) of the
//! largest embedding table, computed from the full dataset and from a 5%
//! random sample — they should coincide after normalisation.

use fae_bench::{print_table, save_json};
use fae_core::calibrator::{log_accesses, sample_inputs};
use fae_data::{generate, GenOptions, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 100_000;
    let ds = generate(&spec, &GenOptions::seeded(77));

    let all: Vec<usize> = (0..ds.len()).collect();
    let full = log_accesses(&ds, &all);
    let mut rng = StdRng::seed_from_u64(5);
    let sample = sample_inputs(&ds, 0.05, &mut rng);
    let sampled = log_accesses(&ds, &sample);

    let fp = full[0].sorted_profile();
    let sp = sampled[0].sorted_profile();
    let f_total = full[0].total() as f64;
    let s_total = sampled[0].total() as f64;

    let ranks = [0usize, 9, 99, 499, 999, 4_999, 19_999];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &r in &ranks {
        let f_norm = fp.get(r).copied().unwrap_or(0) as f64 / f_total;
        let s_norm = sp.get(r).copied().unwrap_or(0) as f64 / s_total;
        rows.push(vec![
            format!("{}", r + 1),
            format!("{:.5}%", f_norm * 100.0),
            format!("{:.5}%", s_norm * 100.0),
        ]);
        json.push(serde_json::json!({"rank": r + 1, "full": f_norm, "sampled": s_norm}));
    }
    print_table(
        "Fig 7: access profile, full vs 5% sampled (largest table, normalised)",
        &["rank", "full", "5% sample"],
        &rows,
    );

    // Quantify agreement over the head of the distribution.
    let k = 2_000.min(fp.len());
    let mae: f64 =
        (0..k).map(|i| (fp[i] as f64 / f_total - sp[i] as f64 / s_total).abs()).sum::<f64>()
            / k as f64;
    println!("\nmean abs deviation over top-{k} ranks: {mae:.2e} (paper: profiles coincide)");
    save_json("fig07_access_profile", &serde_json::Value::Array(json));
}
