//! Extension experiment: multi-server scaling (§IV-A3's stated
//! expectation — "even in a multi-server scenario, we expect our insights
//! to hold true").
//!
//! Clusters of 1–8 paper servers (4 × V100 each) over 100 GbE and 25 GbE,
//! weak scaling (batch 1024 per GPU), on the Kaggle paper-scale shape.

use fae_bench::{measure_hotness, print_table, save_json, workloads};
use fae_models::bridge::profile_for;
use fae_sysmodel::multinode::cluster_step_cost_fae_sparse;
use fae_sysmodel::{cluster_step_cost, ClusterConfig, ExecMode};

fn main() {
    let w = workloads().into_iter().next().expect("kaggle");
    let shrink = w.paper.embedding_bytes() as f64 / w.scaled.embedding_bytes() as f64;
    let scaled_budget = ((w.budget_bytes as f64 / shrink) as usize).max(64 << 10);
    let stats = measure_hotness(&w.scaled, w.measure_inputs, scaled_budget);
    let profile = profile_for(&w.paper, w.budget_bytes as f64);
    let hot = stats.hot_input_fraction;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (net_label, net) in
        [("100GbE", ClusterConfig::network_100g()), ("25GbE", ClusterConfig::network_25g())]
    {
        for nodes in [1usize, 2, 4, 8] {
            let cluster = ClusterConfig::paper_cluster(nodes, 4, net.clone());
            let batch = 1024 * cluster.total_gpus();
            let base = cluster_step_cost(&profile, &cluster, ExecMode::BaselineHybrid, batch);
            let fae_naive_hot = cluster_step_cost(&profile, &cluster, ExecMode::FaeHotGpu, batch);
            let fae_sparse_hot = cluster_step_cost_fae_sparse(&profile, &cluster, batch);
            // Mixed schedule at the measured hot fraction.
            let mix = |hot_step: f64| hot * hot_step + (1.0 - hot) * base.total();
            let fae_naive = mix(fae_naive_hot.total());
            let fae_sparse = mix(fae_sparse_hot.total());
            rows.push(vec![
                net_label.to_string(),
                nodes.to_string(),
                (nodes * 4).to_string(),
                format!("{:.1}", base.total() * 1e3),
                format!("{:.1}", fae_naive * 1e3),
                format!("{:.1}", fae_sparse * 1e3),
                format!("{:.2}x", base.total() / fae_sparse),
            ]);
            json.push(serde_json::json!({
                "network": net_label, "nodes": nodes, "gpus": nodes * 4,
                "baseline_step_ms": base.total() * 1e3,
                "fae_naive_step_ms": fae_naive * 1e3,
                "fae_sparse_step_ms": fae_sparse * 1e3,
                "speedup_sparse": base.total() / fae_sparse,
            }));
        }
    }
    print_table(
        "Extension: multi-server scaling (Kaggle paper-scale, weak scaling, per-step ms)",
        &["network", "nodes", "GPUs", "baseline", "FAE naive", "FAE sparse", "speedup"],
        &rows,
    );
    println!(
        "\nfinding: on fast fabrics the paper's expectation (§IV-A3) holds directly; on slow \
         Ethernet the naive full-hot-bag all-reduce drowns, and FAE needs a sparse \
         touched-rows-only cross-node sync — with it, FAE wins at every cluster size"
    );
    save_json("ext_multinode", &serde_json::Value::Array(json));
}
