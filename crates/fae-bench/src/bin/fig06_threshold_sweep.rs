//! Fig 6: (a) hot-embedding size and (b) hot-input percentage as the
//! access threshold varies — the calibrator's capacity/performance knob.
//!
//! The paper's observation: lowering the threshold grows the hot *table*
//! much faster than it grows the hot *input* share (diminishing returns).

use fae_bench::{print_table, save_json};
use fae_core::calibrator::log_accesses;
use fae_core::classifier::classify_tables;
use fae_core::input_processor::classify_inputs;
use fae_core::{Calibrator, CalibratorConfig};
use fae_data::{generate, GenOptions, WorkloadSpec};

fn main() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 60_000;
    let ds = generate(&spec, &GenOptions::seeded(6));
    let all: Vec<usize> = (0..ds.len()).collect();
    let counters = log_accesses(&ds, &all);

    let ladder = [1e-3, 5e-4, 2e-4, 1e-4, 5e-5, 2e-5, 1e-5];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut prev_bytes = 0.0f64;
    let mut prev_inputs = 0.0f64;
    for &t in &ladder {
        // Force the pure-threshold classification (small-table rule off) so
        // the knob's effect is visible end to end.
        let calibrator = Calibrator::new(CalibratorConfig {
            threshold_ladder: vec![t],
            small_table_bytes: 0,
            gpu_budget_bytes: usize::MAX >> 1,
            ..Default::default()
        });
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(7);
        let cal = calibrator.converge(&ds, &counters, &mut rng);
        let parts = classify_tables(&spec, &counters, &cal);
        let hot_bytes: usize = parts.iter().map(|p| p.hot_bytes(spec.embedding_dim)).sum();
        let hot_inputs =
            classify_inputs(&ds, &parts).iter().filter(|&&h| h).count() as f64 / ds.len() as f64;
        let growth_b = if prev_bytes > 0.0 { hot_bytes as f64 / prev_bytes } else { f64::NAN };
        let growth_i = if prev_inputs > 0.0 { hot_inputs / prev_inputs } else { f64::NAN };
        rows.push(vec![
            format!("{t:.0e}"),
            format!("{:.1}", hot_bytes as f64 / 1024.0),
            format!("{:.1}%", hot_inputs * 100.0),
            if growth_b.is_nan() { "-".into() } else { format!("{growth_b:.2}x") },
            if growth_i.is_nan() { "-".into() } else { format!("{growth_i:.2}x") },
        ]);
        json.push(serde_json::json!({
            "threshold": t, "hot_bytes": hot_bytes, "hot_input_fraction": hot_inputs,
        }));
        prev_bytes = hot_bytes as f64;
        prev_inputs = hot_inputs;
    }
    print_table(
        "Fig 6: threshold sweep (Criteo-Kaggle-shaped, scaled)",
        &["threshold", "hot size (KiB)", "hot inputs", "size growth", "input growth"],
        &rows,
    );
    println!("\npaper: hot size grows much faster than hot-input share as the threshold falls");
    save_json("fig06_threshold_sweep", &serde_json::Value::Array(json));
}
