//! Ablation: input-sampling rate (the paper fixes x = 5%).
//!
//! Sweeps x ∈ {1, 2, 5, 10, 100}% and reports profiling latency and the
//! fidelity of the resulting hot classification (Jaccard overlap of the
//! hot-row set vs the full-scan ground truth at the same cutoff).

use fae_bench::{print_table, save_json, timed};
use fae_core::calibrator::{log_accesses, sample_inputs};
use fae_data::{generate, GenOptions, WorkloadSpec};
use fae_embed::HotColdPartition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hot_set(ds: &fae_data::Dataset, samples: &[usize], t: f64) -> Vec<HotColdPartition> {
    log_accesses(ds, samples)
        .iter()
        .map(|c| {
            let cutoff = ((t * c.total() as f64).ceil() as u64).max(1);
            HotColdPartition::from_counts(c, cutoff)
        })
        .collect()
}

fn jaccard(a: &HotColdPartition, b: &HotColdPartition) -> f64 {
    let sa: std::collections::BTreeSet<u32> = a.hot_ids().iter().copied().collect();
    let sb: std::collections::BTreeSet<u32> = b.hot_ids().iter().copied().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

fn main() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 120_000;
    let ds = generate(&spec, &GenOptions::seeded(55));
    let all: Vec<usize> = (0..ds.len()).collect();
    let t = 1e-4;
    let truth = hot_set(&ds, &all, t);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for rate in [0.01f64, 0.02, 0.05, 0.10, 1.0] {
        let mut rng = StdRng::seed_from_u64(66);
        let samples = if rate >= 1.0 { all.clone() } else { sample_inputs(&ds, rate, &mut rng) };
        let (parts, secs) = timed(|| hot_set(&ds, &samples, t));
        // Fidelity on the largest (hardest) table.
        let j = jaccard(&parts[0], &truth[0]);
        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            samples.len().to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{j:.3}"),
        ]);
        json.push(serde_json::json!({
            "rate": rate, "samples": samples.len(), "ms": secs * 1e3, "jaccard": j,
        }));
    }
    print_table(
        "Ablation: sampling rate vs hot-set fidelity (largest table, t = 1e-4)",
        &["rate", "samples", "latency (ms)", "hot-set Jaccard"],
        &rows,
    );
    println!(
        "\npaper: 5% sampling reproduces the full access profile (Fig 7) at 19-55x lower cost"
    );
    save_json("abl_sampling", &serde_json::Value::Array(json));
}
