//! Fig 4: probability that a *randomly assembled* mini-batch contains
//! only hot inputs, as batch size grows — the motivation for constructing
//! pure batches instead of hoping for them.
//!
//! Analytic curve `p^B` plus an empirical check: randomly batch a
//! synthetic population with hot fraction `p` and count all-hot batches.

use fae_bench::{print_table, save_json};
use fae_core::input_processor::all_hot_minibatch_probability;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn empirical(p: f64, batch: usize, trials: usize, rng: &mut StdRng) -> f64 {
    let mut all_hot = 0usize;
    for _ in 0..trials {
        if (0..batch).all(|_| rng.gen_bool(p)) {
            all_hot += 1;
        }
    }
    all_hot as f64 / trials as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let hot_fractions = [0.99f64, 0.995, 0.999];
    let batches = [1usize, 4, 16, 64, 256, 1024, 4096];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &b in &batches {
        let mut row = vec![b.to_string()];
        for &p in &hot_fractions {
            let analytic = all_hot_minibatch_probability(p, b);
            row.push(format!("{analytic:.4}"));
            json.push(serde_json::json!({"p": p, "batch": b, "analytic": analytic}));
        }
        // Empirical spot-check for p = 0.99.
        let emp = empirical(0.99, b, 2_000, &mut rng);
        row.push(format!("{emp:.4}"));
        rows.push(row);
    }
    print_table(
        "Fig 4: P(random mini-batch is all hot)",
        &["batch", "p=0.99", "p=0.995", "p=0.999", "empirical(p=0.99)"],
        &rows,
    );
    println!("\npaper: even with 99% hot inputs the probability collapses as batch size grows");
    save_json("fig04_minibatch_prob", &serde_json::Value::Array(json));
}
