//! Multi-node training benchmark: what the fae-net wire protocol costs.
//!
//! Two kinds of numbers, both honest about what they are:
//!
//! 1. **Measured** — real localhost TCP runs of the tiny workload:
//!    in-process `ParallelEngine` vs `RemoteEngine` + node threads at
//!    1/2/4 workers (wall-clock overhead of framing, CRC, RPC and
//!    apply-broadcast), plus a crash run (worker-crash@6) showing the
//!    reshard + rejoin path. Every run must match the in-process model
//!    digest bit for bit — the benchmark fails loudly otherwise.
//! 2. **Modeled** — the §5 cost model's price for the same recovery
//!    events at paper scale (Kaggle, 4 × V100, 256 MB hot bag): one
//!    hot-bag sync and one reshard (communicator reinit + dense
//!    re-broadcast + hot re-replication).
//!
//! Output: `results/BENCH_multinode.json` (via `scripts/bench.sh multinode`).

use std::net::TcpListener;
use std::thread;
use std::time::Instant;

use fae_bench::{print_table, save_json};
use fae_core::input_processor::{PreprocessConfig, Preprocessed};
use fae_core::{
    pipeline, train_fae_resilient, train_fae_with_engine, AnyModel, CalibratorConfig, FaultPlan,
    RecoveryAction, ResilienceOptions, TrainConfig, TrainReport,
};
use fae_data::{generate, Dataset, GenOptions, WorkloadSpec};
use fae_models::RecModel;
use fae_net::{run_node, NetConfig, NodeConfig, RemoteEngine};
use fae_sysmodel::{reshard_cost, sync_cost, SystemConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shrunken calibrator budget so the tiny workload has both hot and cold
/// batches (same shape as tests/distributed.rs).
fn setup(workers: usize) -> (WorkloadSpec, Preprocessed, Dataset, TrainConfig) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(131, 6_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        CalibratorConfig {
            gpu_budget_bytes: 40 << 10,
            small_table_bytes: 2 << 10,
            ..Default::default()
        },
        &PreprocessConfig { minibatch_size: 64, seed: 3 },
    );
    let cfg = TrainConfig {
        epochs: 1,
        minibatch_size: 64,
        initial_rate: 25,
        workers,
        ..Default::default()
    };
    (spec, artifacts.preprocessed, test, cfg)
}

/// One distributed run over real loopback TCP, node threads running the
/// same supervisor the `fae node` binary runs.
fn train_distributed(
    spec: &WorkloadSpec,
    pre: &Preprocessed,
    test: &Dataset,
    cfg: &TrainConfig,
    workers: usize,
    plan: &FaultPlan,
) -> TrainReport {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handles: Vec<_> = (0..workers)
        .map(|k| {
            let node = NodeConfig {
                addr: addr.clone(),
                node_id: k as u32,
                workers: workers as u32,
                net: NetConfig::default(),
                plan: plan.clone(),
            };
            thread::spawn(move || run_node(node))
        })
        .collect();
    let seed = cfg.seed;
    let num_gpus = cfg.num_gpus;
    let coordinator_plan = plan.clone();
    let report =
        train_fae_with_engine(spec, pre, test, cfg, &ResilienceOptions::default(), move |model| {
            RemoteEngine::new(
                model,
                spec,
                seed,
                workers,
                num_gpus,
                listener,
                NetConfig::default(),
                coordinator_plan,
            )
            .expect("coordinator start")
        });
    for h in handles {
        h.join().expect("node thread").expect("node exit");
    }
    report
}

fn main() {
    let mut rows = Vec::new();
    let mut scaling = Vec::new();
    for workers in [1usize, 2, 4] {
        let (spec, pre, test, cfg) = setup(workers);
        let t0 = Instant::now();
        let local = train_fae_resilient(&spec, &pre, &test, &cfg, &ResilienceOptions::default());
        let local_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let remote = train_distributed(&spec, &pre, &test, &cfg, workers, &FaultPlan::default());
        let remote_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            local.model_digest, remote.model_digest,
            "distributed digest diverged at {workers} workers — benchmark invalid"
        );
        rows.push(vec![
            workers.to_string(),
            format!("{local_ms:.0}"),
            format!("{remote_ms:.0}"),
            format!("{:.2}x", remote_ms / local_ms.max(1e-9)),
            "yes".to_string(),
        ]);
        scaling.push(serde_json::json!({
            "workers": workers,
            "in_process_ms": local_ms,
            "distributed_ms": remote_ms,
            "wire_overhead_x": remote_ms / local_ms.max(1e-9),
            "digest_match": true,
        }));
    }

    // Crash + reshard + rejoin at 2 workers: the recovery path's price.
    let (spec, pre, test, cfg) = setup(2);
    let local = train_fae_resilient(&spec, &pre, &test, &cfg, &ResilienceOptions::default());
    let plan = FaultPlan::parse_seeded("worker-crash@6", 41).expect("plan");
    let t = Instant::now();
    let crashed = train_distributed(&spec, &pre, &test, &cfg, 2, &plan);
    let crash_ms = t.elapsed().as_secs_f64() * 1e3;
    let resharded =
        crashed.recoveries.iter().any(|r| matches!(r, RecoveryAction::ReshardedToSurvivors { .. }));
    let rejoined =
        crashed.recoveries.iter().any(|r| matches!(r, RecoveryAction::NodeRejoined { .. }));
    assert_eq!(local.model_digest, crashed.model_digest, "crash run digest diverged");
    assert!(resharded && rejoined, "crash run must reshard and rejoin");

    // The cost model's price for the same events at paper scale.
    let sys = SystemConfig::paper_server(4);
    let paper = WorkloadSpec::rmc2_kaggle_paper();
    let mut rng = StdRng::seed_from_u64(1);
    let dense_bytes = AnyModel::from_spec(&paper, &mut rng).dense_param_count() as f64 * 4.0;
    let hot_bytes = (256u64 << 20) as f64;
    let modeled_sync_s = sync_cost(&sys, hot_bytes).total();
    let modeled_reshard_s = reshard_cost(&sys, dense_bytes, hot_bytes).total();

    print_table(
        "Multi-node wire overhead (tiny workload, real loopback TCP, wall-clock)",
        &["workers", "in-proc ms", "distributed ms", "overhead", "digest match"],
        &rows,
    );
    println!(
        "\ncrash @ step 6 (2 workers): {crash_ms:.0} ms wall, resharded={resharded}, \
         rejoined={rejoined}, digest bit-identical"
    );
    println!(
        "modeled at paper scale (Kaggle, 4 GPUs, 256 MB hot bag): hot-bag sync \
         {:.1} ms, reshard (reinit + dense bcast + re-replicate) {:.1} ms",
        modeled_sync_s * 1e3,
        modeled_reshard_s * 1e3
    );

    save_json(
        "BENCH_multinode",
        &serde_json::json!({
            "scaling": scaling,
            "crash_recovery": {
                "workers": 2,
                "fault_plan": "worker-crash@6",
                "wall_ms": crash_ms,
                "resharded": resharded,
                "rejoined": rejoined,
                "digest_match": true,
            },
            "modeled_paper_scale": {
                "gpus": 4,
                "hot_bag_bytes": hot_bytes,
                "dense_param_bytes": dense_bytes,
                "sync_s": modeled_sync_s,
                "reshard_s": modeled_reshard_s,
            },
        }),
    );
}
