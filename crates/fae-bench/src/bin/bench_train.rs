//! `BENCH_train` — end-to-end training throughput benchmark.
//!
//! Runs the full pipeline (calibrate → classify → preprocess → train) on
//! the scaled Kaggle workload under both the baseline and FAE, and
//! records wall-clock throughput (steps/sec), the simulated speedup at
//! paper scale, and the process peak RSS. The JSON record lands in
//! `results/BENCH_train.json` so successive checkouts can be compared.

use fae_bench::{print_table, save_json, timed};
use fae_core::{pipeline, CalibratorConfig, PreprocessConfig, TrainConfig};
use fae_data::{generate, GenOptions, WorkloadSpec};

/// Peak resident set size in bytes, from `/proc/self/status` (`VmHWM`).
/// Returns 0 where procfs is unavailable (non-Linux).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn main() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 60_000;
    let ds = generate(&spec, &GenOptions::sized(0xBE9C, spec.num_inputs));
    let (train, test) = ds.split(0.15);
    let cfg = TrainConfig { epochs: 1, minibatch_size: 256, num_gpus: 2, ..Default::default() };

    let (art, prep_secs) = timed(|| {
        pipeline::prepare(
            &train,
            CalibratorConfig {
                gpu_budget_bytes: spec.embedding_bytes() / 8,
                small_table_bytes: 8 << 10,
                ..Default::default()
            },
            &PreprocessConfig { minibatch_size: cfg.minibatch_size, seed: 7 },
        )
    });

    let (base, base_secs) = timed(|| fae_core::train_baseline(&spec, &train, &test, &cfg));
    let (fae, fae_secs) = timed(|| fae_core::train_fae(&spec, &art.preprocessed, &test, &cfg));

    let base_steps = base.hot_steps + base.cold_steps;
    let fae_steps = fae.hot_steps + fae.cold_steps;
    let base_sps = base_steps as f64 / base_secs.max(1e-9);
    let fae_sps = fae_steps as f64 / fae_secs.max(1e-9);
    let sim_speedup = base.simulated_seconds / fae.simulated_seconds;
    let rss = peak_rss_bytes();

    print_table(
        "BENCH_train: end-to-end training throughput (scaled Kaggle, 2 GPUs)",
        &["mode", "steps", "wall (s)", "steps/sec", "sim (s)", "accuracy"],
        &[
            vec![
                "baseline".into(),
                base_steps.to_string(),
                format!("{base_secs:.2}"),
                format!("{base_sps:.1}"),
                format!("{:.2}", base.simulated_seconds),
                format!("{:.4}", base.final_test.accuracy),
            ],
            vec![
                "fae".into(),
                fae_steps.to_string(),
                format!("{fae_secs:.2}"),
                format!("{fae_sps:.1}"),
                format!("{:.2}", fae.simulated_seconds),
                format!("{:.4}", fae.final_test.accuracy),
            ],
        ],
    );
    println!(
        "\nstatic phase {prep_secs:.2}s | simulated speedup {sim_speedup:.2}x | peak RSS {:.1} MiB",
        rss as f64 / (1 << 20) as f64
    );

    save_json(
        "BENCH_train",
        &serde_json::json!({
            "workload": spec.name,
            "inputs": spec.num_inputs,
            "minibatch_size": cfg.minibatch_size,
            "num_gpus": cfg.num_gpus,
            "prepare_seconds": prep_secs,
            "baseline": {
                "steps": base_steps,
                "wall_seconds": base_secs,
                "steps_per_sec": base_sps,
                "simulated_seconds": base.simulated_seconds,
                "accuracy": base.final_test.accuracy,
            },
            "fae": {
                "steps": fae_steps,
                "wall_seconds": fae_secs,
                "steps_per_sec": fae_sps,
                "simulated_seconds": fae.simulated_seconds,
                "accuracy": fae.final_test.accuracy,
            },
            "simulated_speedup": sim_speedup,
            "hot_input_fraction": art.preprocessed.hot_input_fraction,
            "peak_rss_bytes": rss,
        }),
    );
}
