//! `BENCH_train` — end-to-end training throughput benchmark.
//!
//! Runs the full pipeline (calibrate → classify → preprocess → train) on
//! the scaled Kaggle workload under the baseline and FAE, sweeps the
//! execution engine's worker count, and runs FAE once more with the int8
//! cold tier (`quantize_cold`). Wall-clock throughput (steps/sec), the
//! simulated speedup at paper scale, accuracy, and memory are recorded
//! to `results/BENCH_train.json` so successive checkouts can be
//! compared.
//!
//! Memory methodology: `VmHWM` is a *process-lifetime* high-water mark —
//! it only ever rises, so sampling it between phases of one process
//! makes every later reading echo the largest earlier one. Each
//! configuration therefore runs in its own child process (`--phase`),
//! and the `rss_hwm_bytes` it reports is that configuration's own peak.
//! In particular the f32-vs-int8 master footprint difference shows up as
//! an honest RSS delta between the `fae-w1` and `fae-quant` children.

use fae_bench::{print_table, save_json, timed};
use fae_core::{pipeline, CalibratorConfig, PreprocessConfig, TrainConfig};
use fae_data::{generate, GenOptions, WorkloadSpec};

/// Peak resident set size in bytes so far, from `/proc/self/status`
/// (`VmHWM`). Monotone over the process lifetime — which is exactly why
/// each benchmark configuration gets its own process. Returns 0 where
/// procfs is unavailable (non-Linux).
fn rss_hwm_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The shared workload/config every phase rebuilds deterministically.
fn workload() -> (WorkloadSpec, TrainConfig) {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 60_000;
    let cfg = TrainConfig { epochs: 1, minibatch_size: 256, num_gpus: 2, ..Default::default() };
    (spec, cfg)
}

/// Runs one benchmark configuration and returns its record. Called in a
/// child process so the reported `rss_hwm_bytes` belongs to this
/// configuration alone.
fn run_phase(phase: &str) -> serde_json::Value {
    let (spec, cfg) = workload();
    let ds = generate(&spec, &GenOptions::sized(0xBE9C, spec.num_inputs));
    let (train, test) = ds.split(0.15);

    let (art, prep_secs) = timed(|| {
        pipeline::prepare(
            &train,
            CalibratorConfig {
                gpu_budget_bytes: spec.embedding_bytes() / 8,
                small_table_bytes: 8 << 10,
                ..Default::default()
            },
            &PreprocessConfig { minibatch_size: cfg.minibatch_size, seed: 7 },
        )
    });

    let run_cfg = match phase {
        "baseline" | "fae" => cfg.clone(),
        "fae-w1" => TrainConfig { workers: 1, ..cfg.clone() },
        "fae-w2" => TrainConfig { workers: 2, ..cfg.clone() },
        "fae-w4" => TrainConfig { workers: 4, ..cfg.clone() },
        "fae-quant" => TrainConfig { workers: 1, quantize_cold: true, ..cfg.clone() },
        "fae-la" => TrainConfig { lookahead: 32, ..cfg.clone() },
        "fae-la-skip" => TrainConfig { lookahead: 32, stale_skip: 1e-4, ..cfg.clone() },
        "fae-q-la" => TrainConfig { workers: 1, quantize_cold: true, lookahead: 32, ..cfg.clone() },
        "fae-q-la-skip" => TrainConfig {
            workers: 1,
            quantize_cold: true,
            lookahead: 32,
            stale_skip: 1e-4,
            ..cfg.clone()
        },
        other => panic!("unknown phase `{other}`"),
    };
    let (report, secs) = timed(|| {
        if phase == "baseline" {
            fae_core::train_baseline(&spec, &train, &test, &run_cfg)
        } else {
            fae_core::train_fae(&spec, &art.preprocessed, &test, &run_cfg)
        }
    });

    let steps = report.hot_steps + report.cold_steps;
    // Skipped-update fraction: of the cold-row update events that hit the
    // deferral pool (deferred + threshold flushes), how many individual
    // optimizer applies were elided — coalesced into one later flush or
    // dropped outright at end of run. Pool flushes apply one update per
    // row regardless of how many contributions accumulated.
    let s = report.skip;
    let pool_events = s.deferred + s.flushed_threshold;
    let elided = s.deferred.saturating_sub(s.flushed_access + s.flushed_checkpoint);
    let skipped_frac = if pool_events > 0 { elided as f64 / pool_events as f64 } else { 0.0 };
    let mut out = serde_json::json!({
        "phase": phase,
        "workers": run_cfg.workers,
        "lookahead": run_cfg.lookahead,
        "stale_skip": run_cfg.stale_skip,
        "steps": steps,
        "wall_seconds": secs,
        "steps_per_sec": steps as f64 / secs.max(1e-9),
        "sim_steps_per_sec": steps as f64 / report.simulated_seconds.max(1e-9),
        "simulated_seconds": report.simulated_seconds,
        "accuracy": report.final_test.accuracy,
        "prepare_seconds": prep_secs,
        "hot_input_fraction": art.preprocessed.hot_input_fraction,
        "rss_hwm_bytes": rss_hwm_bytes(),
        "skipped_update_fraction": skipped_frac,
        "skip_deferred": s.deferred,
        "skip_flushed_threshold": s.flushed_threshold,
        "skip_flushed_access": s.flushed_access,
        "skip_flushed_checkpoint": s.flushed_checkpoint,
        "skip_dropped": s.dropped,
        "oracle_prefetched_rows": report.oracle.prefetched_rows,
        "oracle_hits": report.oracle.hits,
        "oracle_misses": report.oracle.misses,
        "oracle_moved_bytes": report.oracle.moved_bytes,
        "oracle_saved_bytes": report.oracle.full_bytes.saturating_sub(report.oracle.moved_bytes),
    });
    if phase == "fae-quant" {
        // Exact master footprints (arithmetic, not sampled): f32 tables
        // vs hot-f32 + cold-int8 + per-row metadata (DESIGN.md §14).
        let dim = spec.embedding_dim;
        let f32_bytes: usize = spec.embedding_bytes();
        let tiered_bytes: usize = art
            .preprocessed
            .partitions
            .iter()
            .map(|p| {
                let hot = p.hot_count();
                let cold = p.rows() - hot;
                hot * dim * 4 + cold * dim + cold * 8 + p.rows() * 4
            })
            .sum();
        if let serde_json::Value::Object(m) = &mut out {
            m.insert("master_bytes_f32".to_string(), serde_json::json!(f32_bytes));
            m.insert("master_bytes_tiered".to_string(), serde_json::json!(tiered_bytes));
        }
    }
    out
}

/// Spawns this binary as `--phase <name>` and parses its JSON line.
fn spawn_phase(name: &str) -> serde_json::Value {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .args(["--phase", name])
        .output()
        .unwrap_or_else(|e| panic!("spawning phase {name}: {e}"));
    assert!(out.status.success(), "phase {name} failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().last().unwrap_or_else(|| panic!("phase {name}: empty output"));
    serde_json::from_value_str(line)
        .unwrap_or_else(|e| panic!("phase {name}: bad JSON ({e}): {line}"))
}

/// The `scripts/bench.sh skip` ablation: plain FAE vs oracle lookahead vs
/// lookahead + stale-skip on the same workload, each in its own child
/// process. Writes `results/abl_skip.json`.
fn run_abl_skip() {
    let (spec, cfg) = workload();
    let f = |v: &serde_json::Value, k: &str| {
        v.get(k).and_then(serde_json::Value::as_f64).unwrap_or(f64::NAN)
    };
    let u =
        |v: &serde_json::Value, k: &str| v.get(k).and_then(serde_json::Value::as_u64).unwrap_or(0);

    // Throughput verdicts live on the simulated timeline, like every
    // speedup this repo reports (the modeled hardware is the instrument;
    // at this tiny scale the wall deltas between these modes are a few
    // milliseconds of elided sparse applies against multi-percent host
    // noise). Wall steps/s is still recorded honestly: shared hosts
    // drift, so phases run in interleaved rounds, each phase reports its
    // best (min-wall) round, and every round's wall rate lands in the
    // JSON so the spread is visible.
    const ROUNDS: usize = 3;
    let phases = ["fae", "fae-la", "fae-la-skip"];
    let mut best: Vec<Option<serde_json::Value>> = vec![None, None, None];
    let mut rounds: Vec<Vec<f64>> = vec![Vec::new(), Vec::new(), Vec::new()];
    for round in 0..ROUNDS {
        for (i, name) in phases.iter().enumerate() {
            let v = spawn_phase(name);
            println!("round {}: {} {:.1} steps/s", round + 1, name, f(&v, "steps_per_sec"));
            rounds[i].push(f(&v, "steps_per_sec"));
            let better =
                best[i].as_ref().is_none_or(|b| f(&v, "steps_per_sec") > f(b, "steps_per_sec"));
            if better {
                best[i] = Some(v);
            }
        }
    }
    let las = best.pop().flatten().expect("fae-la-skip ran");
    let la = best.pop().flatten().expect("fae-la ran");
    let off = best.pop().flatten().expect("fae ran");

    let row = |name: &str, v: &serde_json::Value| {
        vec![
            name.to_string(),
            format!("{:.1}", f(v, "sim_steps_per_sec")),
            format!("{:.1}", f(v, "steps_per_sec")),
            format!("{:.2}", f(v, "simulated_seconds")),
            format!("{:.3}", f(v, "skipped_update_fraction")),
            u(v, "skip_dropped").to_string(),
            format!("{:.1}", f(v, "oracle_saved_bytes") / (1 << 20) as f64),
            format!("{:.4}", f(v, "accuracy")),
        ]
    };
    print_table(
        "abl_skip: oracle lookahead + stale-skip ablation (scaled Kaggle, 2 GPUs)",
        &[
            "mode",
            "steps/sec (sim)",
            "steps/sec (wall)",
            "sim (s)",
            "skipped frac",
            "dropped",
            "saved (MiB)",
            "accuracy",
        ],
        &[row("off", &off), row("lookahead", &la), row("lookahead+skip", &las)],
    );
    let sim_speedup = f(&las, "sim_steps_per_sec") / f(&off, "sim_steps_per_sec");
    println!(
        "\nlookahead+skip vs off: simulated {:.3}x | wall {:.2}x | accuracy delta {:+.4}",
        sim_speedup,
        f(&las, "steps_per_sec") / f(&off, "steps_per_sec"),
        f(&las, "accuracy") - f(&off, "accuracy"),
    );
    // The ablation's contract: on the Zipf workload, lookahead+skip must
    // out-run plain FAE on the simulated timeline (lookahead moves fewer
    // bytes, skip elides cold applies — both deterministic there).
    assert!(
        sim_speedup > 1.0,
        "lookahead+skip must beat plain fae in simulated steps/s, got {sim_speedup:.4}x"
    );

    save_json(
        "abl_skip",
        &serde_json::json!({
            "workload": spec.name,
            "inputs": spec.num_inputs,
            "minibatch_size": cfg.minibatch_size,
            "num_gpus": cfg.num_gpus,
            "off": off,
            "lookahead": la,
            "lookahead_skip": las,
            "rounds_wall_steps_per_sec": {
                "off": rounds[0],
                "lookahead": rounds[1],
                "lookahead_skip": rounds[2],
            },
            "sim_speedup_skip_vs_off": sim_speedup,
            "wall_speedup_skip_vs_off":
                f(&las, "steps_per_sec") / f(&off, "steps_per_sec"),
            "sim_speedup_lookahead_vs_off":
                f(&off, "simulated_seconds") / f(&la, "simulated_seconds"),
            "accuracy_delta_skip_vs_off": f(&las, "accuracy") - f(&off, "accuracy"),
            "methodology": "same prepared workload per phase; throughput verdict is simulated steps/s (the modeled-hardware timeline every speedup in this repo reports on; the wall delta between modes is a few ms of elided sparse applies, below shared-host noise) with the ordering asserted; lookahead=32 covers typical hot blocks so partial refreshes beat full-bag syncs; stale-skip threshold 1e-4 in weight-delta units; phases run as child processes in 3 interleaved rounds, best wall round per phase reported (rounds_wall_steps_per_sec has them all)",
        }),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--phase" {
        let record = run_phase(&args[2]);
        println!("{}", serde_json::to_string(&record).expect("phase record serializes"));
        return;
    }
    if args.len() == 2 && args[1] == "--abl-skip" {
        run_abl_skip();
        return;
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (spec, cfg) = workload();

    let base = spawn_phase("baseline");
    let fae = spawn_phase("fae");
    let f = |v: &serde_json::Value, k: &str| {
        v.get(k).and_then(serde_json::Value::as_f64).unwrap_or(f64::NAN)
    };
    let u =
        |v: &serde_json::Value, k: &str| v.get(k).and_then(serde_json::Value::as_u64).unwrap_or(0);
    let mib = |v: &serde_json::Value| f(v, "rss_hwm_bytes") / (1 << 20) as f64;
    let sim_speedup = f(&base, "simulated_seconds") / f(&fae, "simulated_seconds");

    let mode_row = |name: &str, v: &serde_json::Value| {
        vec![
            name.to_string(),
            u(v, "steps").to_string(),
            format!("{:.2}", f(v, "wall_seconds")),
            format!("{:.1}", f(v, "steps_per_sec")),
            format!("{:.2}", f(v, "simulated_seconds")),
            format!("{:.4}", f(v, "accuracy")),
            format!("{:.1}", mib(v)),
        ]
    };
    print_table(
        "BENCH_train: end-to-end training throughput (scaled Kaggle, 2 GPUs)",
        &["mode", "steps", "wall (s)", "steps/sec", "sim (s)", "accuracy", "RSS (MiB)"],
        &[mode_row("baseline", &base), mode_row("fae", &fae)],
    );

    // Worker sweep: each point is its own process, so wall clock and RSS
    // are per-configuration. On a single-core container the sweep
    // measures engine overhead rather than speedup — the `cores` field
    // records which regime produced these numbers.
    let mut sweep_rows = Vec::new();
    let mut sweep_json = Vec::new();
    let mut w1_sps = f64::NAN;
    for phase in ["fae-w1", "fae-w2", "fae-w4"] {
        let mut v = spawn_phase(phase);
        let sps = f(&v, "steps_per_sec");
        if phase == "fae-w1" {
            w1_sps = sps;
        }
        let scaling = sps / w1_sps;
        if let serde_json::Value::Object(m) = &mut v {
            m.insert("scaling_vs_1_worker".to_string(), serde_json::json!(scaling));
        }
        sweep_rows.push(vec![
            u(&v, "workers").to_string(),
            u(&v, "steps").to_string(),
            format!("{:.2}", f(&v, "wall_seconds")),
            format!("{sps:.1}"),
            format!("{scaling:.2}x"),
            format!("{:.4}", f(&v, "accuracy")),
            format!("{:.1}", mib(&v)),
        ]);
        sweep_json.push(v);
    }
    print_table(
        &format!("FAE worker sweep ({cores} host core(s) available)"),
        &["workers", "steps", "wall (s)", "steps/sec", "vs W=1", "accuracy", "RSS (MiB)"],
        &sweep_rows,
    );

    // Quantized cold tier: same run as fae-w1 but with the int8 master.
    let quant = spawn_phase("fae-quant");
    let w1 = &sweep_json[0];
    let rss_saved_mib = mib(w1) - mib(&quant);
    print_table(
        "FAE with int8 cold tier (quantize_cold, W=1)",
        &["config", "steps/sec", "accuracy", "RSS (MiB)", "master f32 (MiB)", "master int8 (MiB)"],
        &[vec![
            "fae-quant".into(),
            format!("{:.1}", f(&quant, "steps_per_sec")),
            format!("{:.4}", f(&quant, "accuracy")),
            format!("{:.1}", mib(&quant)),
            format!("{:.1}", f(&quant, "master_bytes_f32") / (1 << 20) as f64),
            format!("{:.1}", f(&quant, "master_bytes_tiered") / (1 << 20) as f64),
        ]],
    );
    println!(
        "\nstatic phase {:.2}s | simulated speedup {sim_speedup:.2}x | int8 tier saves {rss_saved_mib:.1} MiB RSS vs f32 (W=1)",
        f(&fae, "prepare_seconds"),
    );

    save_json(
        "BENCH_train",
        &serde_json::json!({
            "workload": spec.name,
            "inputs": spec.num_inputs,
            "minibatch_size": cfg.minibatch_size,
            "num_gpus": cfg.num_gpus,
            "cores": cores,
            "prepare_seconds": f(&fae, "prepare_seconds"),
            "baseline": base,
            "fae": fae,
            "worker_sweep": sweep_json,
            "quantized": quant,
            "quantized_rss_saved_bytes":
                (f(w1, "rss_hwm_bytes") - f(&quant, "rss_hwm_bytes")) as i64,
            "simulated_speedup": sim_speedup,
            "hot_input_fraction": f(&fae, "hot_input_fraction"),
            "rss_note": "each configuration runs in its own child process, so rss_hwm_bytes is that configuration's own peak (VmHWM is monotone per process)",
        }),
    );
}
