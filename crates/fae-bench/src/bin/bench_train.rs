//! `BENCH_train` — end-to-end training throughput benchmark.
//!
//! Runs the full pipeline (calibrate → classify → preprocess → train) on
//! the scaled Kaggle workload under the baseline and FAE, then sweeps
//! the execution engine's worker count over the FAE run, and records
//! wall-clock throughput (steps/sec), the simulated speedup at paper
//! scale, and memory high-water marks. The JSON record lands in
//! `results/BENCH_train.json` so successive checkouts can be compared.
//!
//! Memory caveat: `VmHWM` is a *process-lifetime* high-water mark — it
//! only ever rises. The per-phase values recorded here are therefore
//! "peak RSS observed by the end of that phase", not independent
//! per-phase peaks; the first phase to touch the most memory dominates
//! every later reading. The schema names them `rss_hwm_after_bytes` to
//! keep that explicit.

use fae_bench::{print_table, save_json, timed};
use fae_core::{pipeline, CalibratorConfig, PreprocessConfig, TrainConfig};
use fae_data::{generate, GenOptions, WorkloadSpec};

/// Peak resident set size in bytes so far, from `/proc/self/status`
/// (`VmHWM`). Monotone over the process lifetime. Returns 0 where
/// procfs is unavailable (non-Linux).
fn rss_hwm_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 60_000;
    let ds = generate(&spec, &GenOptions::sized(0xBE9C, spec.num_inputs));
    let (train, test) = ds.split(0.15);
    let cfg = TrainConfig { epochs: 1, minibatch_size: 256, num_gpus: 2, ..Default::default() };

    let (art, prep_secs) = timed(|| {
        pipeline::prepare(
            &train,
            CalibratorConfig {
                gpu_budget_bytes: spec.embedding_bytes() / 8,
                small_table_bytes: 8 << 10,
                ..Default::default()
            },
            &PreprocessConfig { minibatch_size: cfg.minibatch_size, seed: 7 },
        )
    });
    let rss_after_prepare = rss_hwm_bytes();

    let (base, base_secs) = timed(|| fae_core::train_baseline(&spec, &train, &test, &cfg));
    let rss_after_baseline = rss_hwm_bytes();
    let (fae, fae_secs) = timed(|| fae_core::train_fae(&spec, &art.preprocessed, &test, &cfg));
    let rss_after_fae = rss_hwm_bytes();

    let base_steps = base.hot_steps + base.cold_steps;
    let fae_steps = fae.hot_steps + fae.cold_steps;
    let base_sps = base_steps as f64 / base_secs.max(1e-9);
    let fae_sps = fae_steps as f64 / fae_secs.max(1e-9);
    let sim_speedup = base.simulated_seconds / fae.simulated_seconds;

    print_table(
        "BENCH_train: end-to-end training throughput (scaled Kaggle, 2 GPUs)",
        &["mode", "steps", "wall (s)", "steps/sec", "sim (s)", "accuracy"],
        &[
            vec![
                "baseline".into(),
                base_steps.to_string(),
                format!("{base_secs:.2}"),
                format!("{base_sps:.1}"),
                format!("{:.2}", base.simulated_seconds),
                format!("{:.4}", base.final_test.accuracy),
            ],
            vec![
                "fae".into(),
                fae_steps.to_string(),
                format!("{fae_secs:.2}"),
                format!("{fae_sps:.1}"),
                format!("{:.2}", fae.simulated_seconds),
                format!("{:.4}", fae.final_test.accuracy),
            ],
        ],
    );

    // Worker sweep over the FAE run: real threads, real wall clock. On a
    // single-core container the sweep measures engine overhead rather
    // than speedup — the `cores` field records which regime produced
    // these numbers.
    let mut sweep_rows = Vec::new();
    let mut sweep_json = Vec::new();
    let mut w1_sps = f64::NAN;
    for workers in [1usize, 2, 4] {
        let wcfg = TrainConfig { workers, ..cfg.clone() };
        let (run, secs) = timed(|| fae_core::train_fae(&spec, &art.preprocessed, &test, &wcfg));
        let steps = run.hot_steps + run.cold_steps;
        let sps = steps as f64 / secs.max(1e-9);
        if workers == 1 {
            w1_sps = sps;
        }
        let scaling = sps / w1_sps;
        sweep_rows.push(vec![
            workers.to_string(),
            steps.to_string(),
            format!("{secs:.2}"),
            format!("{sps:.1}"),
            format!("{scaling:.2}x"),
            format!("{:.4}", run.final_test.accuracy),
        ]);
        sweep_json.push(serde_json::json!({
            "workers": workers,
            "steps": steps,
            "wall_seconds": secs,
            "steps_per_sec": sps,
            "scaling_vs_1_worker": scaling,
            "accuracy": run.final_test.accuracy,
            "rss_hwm_after_bytes": rss_hwm_bytes(),
        }));
    }
    let rss_after_sweep = rss_hwm_bytes();
    print_table(
        &format!("FAE worker sweep ({cores} host core(s) available)"),
        &["workers", "steps", "wall (s)", "steps/sec", "vs W=1", "accuracy"],
        &sweep_rows,
    );
    println!(
        "\nstatic phase {prep_secs:.2}s | simulated speedup {sim_speedup:.2}x | peak RSS {:.1} MiB",
        rss_after_sweep as f64 / (1 << 20) as f64
    );

    save_json(
        "BENCH_train",
        &serde_json::json!({
            "workload": spec.name,
            "inputs": spec.num_inputs,
            "minibatch_size": cfg.minibatch_size,
            "num_gpus": cfg.num_gpus,
            "cores": cores,
            "prepare_seconds": prep_secs,
            "baseline": {
                "steps": base_steps,
                "wall_seconds": base_secs,
                "steps_per_sec": base_sps,
                "simulated_seconds": base.simulated_seconds,
                "accuracy": base.final_test.accuracy,
                "rss_hwm_after_bytes": rss_after_baseline,
            },
            "fae": {
                "steps": fae_steps,
                "wall_seconds": fae_secs,
                "steps_per_sec": fae_sps,
                "simulated_seconds": fae.simulated_seconds,
                "accuracy": fae.final_test.accuracy,
                "rss_hwm_after_bytes": rss_after_fae,
            },
            "worker_sweep": sweep_json,
            "simulated_speedup": sim_speedup,
            "hot_input_fraction": art.preprocessed.hot_input_fraction,
            "rss_hwm_after_prepare_bytes": rss_after_prepare,
            // Kept for older tooling: the final process-lifetime peak.
            "peak_rss_bytes": rss_after_sweep,
            "rss_note": "VmHWM is a process-lifetime high-water mark; per-phase values are peaks observed by the end of that phase, not independent per-phase peaks",
        }),
    );
}
