//! CSR-style storage for sparse recommendation datasets.

use serde::{Deserialize, Serialize};

use crate::spec::WorkloadSpec;

/// All lookups into one embedding table, for every sample, in CSR form:
/// sample `i` owns `indices[offsets[i]..offsets[i+1]]`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableIndices {
    /// Flat row-id stream.
    pub indices: Vec<u32>,
    /// `num_samples + 1` boundaries into `indices`.
    pub offsets: Vec<usize>,
}

impl TableIndices {
    /// An empty CSR with zero samples.
    pub fn new() -> Self {
        Self { indices: Vec::new(), offsets: vec![0] }
    }

    /// With pre-reserved capacity.
    pub fn with_capacity(samples: usize, lookups: usize) -> Self {
        let mut offsets = Vec::with_capacity(samples + 1);
        offsets.push(0);
        Self { indices: Vec::with_capacity(lookups), offsets }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one sample's bag of row ids.
    pub fn push_bag(&mut self, bag: &[u32]) {
        self.indices.extend_from_slice(bag);
        self.offsets.push(self.indices.len());
    }

    /// The bag of sample `i`.
    #[inline]
    pub fn bag(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Gathers the listed samples into a new CSR (mini-batch assembly).
    pub fn gather(&self, samples: &[usize]) -> TableIndices {
        let mut out = TableIndices::with_capacity(samples.len(), samples.len());
        for &s in samples {
            out.push_bag(self.bag(s));
        }
        out
    }
}

/// A full synthetic dataset: dense features, per-table sparse lookups and
/// binary labels.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// The shape this dataset was generated from.
    pub spec: WorkloadSpec,
    /// Row-major `num_samples × dense_features` continuous features.
    pub dense: Vec<f32>,
    /// One CSR per embedding table.
    pub sparse: Vec<TableIndices>,
    /// 0/1 click labels.
    pub labels: Vec<f32>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Dense feature row of sample `i`.
    pub fn dense_row(&self, i: usize) -> &[f32] {
        let w = self.spec.dense_features;
        &self.dense[i * w..(i + 1) * w]
    }

    /// Iterates `(table, bag)` for sample `i`.
    pub fn bags_of(&self, i: usize) -> impl Iterator<Item = (usize, &[u32])> {
        self.sparse.iter().enumerate().map(move |(t, csr)| (t, csr.bag(i)))
    }

    /// Positive-label fraction (sanity statistic).
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l >= 0.5).count() as f64 / self.labels.len() as f64
    }

    /// Splits off the last `frac` of samples as a test set, returning
    /// `(train, test)`. The split is positional, matching the paper's use
    /// of held-out test/validation partitions.
    pub fn split(mut self, test_frac: f64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_frac), "test_frac must be in [0,1)");
        let n = self.len();
        let n_test = (n as f64 * test_frac) as usize;
        let n_train = n - n_test;
        let test_samples: Vec<usize> = (n_train..n).collect();
        let test = Dataset {
            spec: self.spec.clone(),
            dense: self.dense[n_train * self.spec.dense_features..].to_vec(),
            sparse: self.sparse.iter().map(|c| c.gather(&test_samples)).collect(),
            labels: self.labels[n_train..].to_vec(),
        };
        self.dense.truncate(n_train * self.spec.dense_features);
        self.sparse = {
            let train_samples: Vec<usize> = (0..n_train).collect();
            self.sparse.iter().map(|c| c.gather(&train_samples)).collect()
        };
        self.labels.truncate(n_train);
        (self, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    #[test]
    fn csr_push_and_bag() {
        let mut c = TableIndices::new();
        c.push_bag(&[1, 2, 3]);
        c.push_bag(&[]);
        c.push_bag(&[7]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.bag(0), &[1, 2, 3]);
        assert_eq!(c.bag(1), &[] as &[u32]);
        assert_eq!(c.bag(2), &[7]);
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let mut c = TableIndices::new();
        c.push_bag(&[0]);
        c.push_bag(&[1, 1]);
        c.push_bag(&[2]);
        let g = c.gather(&[2, 0, 2]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.bag(0), &[2]);
        assert_eq!(g.bag(1), &[0]);
        assert_eq!(g.bag(2), &[2]);
    }

    fn mini_dataset(n: usize) -> Dataset {
        let spec = WorkloadSpec::tiny_test();
        let w = spec.dense_features;
        let mut sparse: Vec<TableIndices> =
            (0..spec.tables.len()).map(|_| TableIndices::new()).collect();
        for i in 0..n {
            for (t, csr) in sparse.iter_mut().enumerate() {
                csr.push_bag(&[(i % (10 + t)) as u32]);
            }
        }
        Dataset {
            spec,
            dense: (0..n * w).map(|v| v as f32).collect(),
            sparse,
            labels: (0..n).map(|i| (i % 2) as f32).collect(),
        }
    }

    #[test]
    fn dense_rows_and_labels() {
        let ds = mini_dataset(5);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.dense_row(1), &[4.0, 5.0, 6.0, 7.0]);
        assert!((ds.positive_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn split_preserves_totals_and_order() {
        let ds = mini_dataset(10);
        let (train, test) = ds.split(0.3);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Test rows are the tail.
        assert_eq!(test.dense_row(0)[0], 7.0 * 4.0);
        assert_eq!(test.sparse[0].bag(0), &[7]);
        assert_eq!(train.sparse[0].bag(6), &[6]);
    }

    #[test]
    fn bags_of_iterates_every_table() {
        let ds = mini_dataset(3);
        let bags: Vec<(usize, &[u32])> = ds.bags_of(2).collect();
        assert_eq!(bags.len(), 4);
        assert_eq!(bags[0], (0, &[2u32][..]));
    }
}
