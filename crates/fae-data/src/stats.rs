//! Dataset access-skew statistics.
//!
//! The quantities behind Fig 2 and the paper's motivating claims: how
//! concentrated are accesses per table (top-k shares, Gini coefficient),
//! and what does the access CDF look like. Works on raw per-row access
//! counts, so both full scans and sampled logs can be summarised.

use serde::{Deserialize, Serialize};

/// Concentration summary of one table's access counts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableSkew {
    /// Rows in the table.
    pub rows: usize,
    /// Rows with at least one access.
    pub touched_rows: usize,
    /// Total accesses.
    pub total_accesses: u64,
    /// Fraction of accesses captured by the top 1% of rows.
    pub top1pct_share: f64,
    /// Fraction captured by the top 10% of rows.
    pub top10pct_share: f64,
    /// Gini coefficient of the access distribution (0 = uniform,
    /// → 1 = maximally concentrated).
    pub gini: f64,
}

/// Computes the skew summary from per-row access counts.
pub fn table_skew(counts: &[u64]) -> TableSkew {
    let rows = counts.len();
    let total: u64 = counts.iter().sum();
    let touched = counts.iter().filter(|&&c| c > 0).count();
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let share = |top: usize| -> f64 {
        if total == 0 {
            return 0.0;
        }
        let k = top.max(1).min(rows);
        sorted[..k].iter().sum::<u64>() as f64 / total as f64
    };
    TableSkew {
        rows,
        touched_rows: touched,
        total_accesses: total,
        top1pct_share: share(rows / 100),
        top10pct_share: share(rows / 10),
        gini: gini(&sorted),
    }
}

/// Gini coefficient over (descending-sorted) counts.
fn gini(sorted_desc: &[u64]) -> f64 {
    let n = sorted_desc.len();
    let total: u64 = sorted_desc.iter().sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    // With x sorted ascending: G = (2·Σ i·x_i) / (n·Σ x) − (n+1)/n.
    let mut weighted = 0.0f64;
    for (i, &x) in sorted_desc.iter().rev().enumerate() {
        weighted += (i + 1) as f64 * x as f64;
    }
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// The empirical access CDF over popularity ranks: `cdf[k]` = share of
/// accesses captured by the `k+1` most-accessed rows, at the requested
/// sample points. Useful for plotting Fig 2/Fig 7-style curves.
pub fn access_cdf(counts: &[u64], sample_points: &[usize]) -> Vec<(usize, f64)> {
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return sample_points.iter().map(|&k| (k, 0.0)).collect();
    }
    let mut prefix = 0u64;
    let mut out = Vec::with_capacity(sample_points.len());
    let mut next = sample_points.iter().copied().peekable();
    for (i, &c) in sorted.iter().enumerate() {
        prefix += c;
        while next.peek() == Some(&(i + 1)) {
            out.push((i + 1, prefix as f64 / total as f64));
            next.next();
        }
    }
    for k in next {
        out.push((k, 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts_have_zero_gini() {
        let s = table_skew(&[5; 100]);
        assert!(s.gini.abs() < 1e-9, "gini {}", s.gini);
        assert_eq!(s.touched_rows, 100);
        assert!((s.top1pct_share - 0.01).abs() < 1e-9);
        assert!((s.top10pct_share - 0.10).abs() < 1e-9);
    }

    #[test]
    fn single_hot_row_has_extreme_gini() {
        let mut counts = vec![0u64; 1000];
        counts[123] = 1_000;
        let s = table_skew(&counts);
        assert!(s.gini > 0.99, "gini {}", s.gini);
        assert_eq!(s.touched_rows, 1);
        assert!((s.top1pct_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_like_counts_are_concentrated() {
        // counts[i] ∝ 1/(i+1): top 1% should grab a large share.
        let counts: Vec<u64> = (0..10_000).map(|i| (100_000 / (i + 1)) as u64).collect();
        let s = table_skew(&counts);
        assert!(s.top1pct_share > 0.4, "top 1% only {}", s.top1pct_share);
        assert!(s.gini > 0.7, "gini {}", s.gini);
    }

    #[test]
    fn empty_and_zero_are_safe() {
        let s = table_skew(&[]);
        assert_eq!(s.gini, 0.0);
        let z = table_skew(&[0, 0, 0]);
        assert_eq!(z.total_accesses, 0);
        assert_eq!(z.top10pct_share, 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let counts: Vec<u64> = (0..1000).map(|i| (1000 - i) as u64).collect();
        let pts = [1usize, 10, 100, 500, 1000];
        let cdf = access_cdf(&counts, &pts);
        assert_eq!(cdf.len(), pts.len());
        let mut prev = 0.0;
        for &(_, v) in &cdf {
            assert!(v >= prev);
            prev = v;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_sample_beyond_rows_clamps_to_one() {
        let cdf = access_cdf(&[3, 1], &[1, 2, 50]);
        assert!((cdf[0].1 - 0.75).abs() < 1e-12);
        assert!((cdf[1].1 - 1.0).abs() < 1e-12);
        assert_eq!(cdf[2], (50, 1.0));
    }
}
