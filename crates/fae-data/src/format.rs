//! The FAE on-disk format for preprocessed hot/cold mini-batch streams.
//!
//! §III-B: "Once we have pre-processed the sparse-input data into hot and
//! cold mini-batches, we store this in the FAE format for any subsequent
//! training runs." The container is a little-endian binary layout:
//!
//! ```text
//! magic "FAE1" | version u32 | workload-name (u32 len + utf8)
//! dense_width u32 | num_tables u32 | num_batches u32
//! repeat per batch:
//!   kind u8 (0 hot, 1 cold, 2 unclassified) | batch_len u32
//!   dense:  batch_len * dense_width f32
//!   labels: batch_len f32
//!   per table: nnz u32 | indices u32[nnz] | offsets u32[batch_len + 1]
//! ```
//!
//! Decoding validates magic, version, offset monotonicity and trailing
//! bytes, returning [`FormatError`] instead of panicking — this file
//! crosses process boundaries, so it is treated as untrusted input.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::dataset::TableIndices;
use crate::minibatch::{BatchKind, MiniBatch};

const MAGIC: &[u8; 4] = b"FAE1";
const VERSION: u32 = 1;

/// Errors produced while decoding an FAE container.
#[derive(Debug)]
pub enum FormatError {
    /// The magic bytes were wrong — not an FAE file.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u32),
    /// The buffer ended before the declared content.
    Truncated(&'static str),
    /// A structural invariant failed (e.g. non-monotonic offsets).
    Corrupt(&'static str),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not an FAE file (bad magic)"),
            FormatError::BadVersion(v) => write!(f, "unsupported FAE version {v}"),
            FormatError::Truncated(what) => write!(f, "FAE file truncated while reading {what}"),
            FormatError::Corrupt(what) => write!(f, "FAE file corrupt: {what}"),
            FormatError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// A preprocessed mini-batch stream plus identifying metadata.
#[derive(Clone, Debug)]
pub struct FaeFile {
    /// Name of the workload the stream was preprocessed from.
    pub workload: String,
    /// Dense feature width shared by all batches.
    pub dense_width: u32,
    /// Embedding-table count shared by all batches.
    pub num_tables: u32,
    /// The batches, in schedule-ready order.
    pub batches: Vec<MiniBatch>,
}

impl FaeFile {
    /// Wraps batches in a container. All batches must agree on dense width
    /// and table count.
    pub fn new(workload: impl Into<String>, batches: Vec<MiniBatch>) -> Self {
        let dense_width = batches.first().map_or(0, |b| b.dense_width as u32);
        let num_tables = batches.first().map_or(0, |b| b.sparse.len() as u32);
        assert!(
            batches
                .iter()
                .all(|b| b.dense_width as u32 == dense_width && b.sparse.len() as u32 == num_tables),
            "inconsistent batch shapes"
        );
        Self { workload: workload.into(), dense_width, num_tables, batches }
    }

    /// Number of hot batches.
    pub fn hot_count(&self) -> usize {
        self.batches.iter().filter(|b| b.kind == BatchKind::Hot).count()
    }

    /// Number of cold batches.
    pub fn cold_count(&self) -> usize {
        self.batches.iter().filter(|b| b.kind == BatchKind::Cold).count()
    }

    /// Serialises to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1024);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.workload.len() as u32);
        buf.put_slice(self.workload.as_bytes());
        buf.put_u32_le(self.dense_width);
        buf.put_u32_le(self.num_tables);
        buf.put_u32_le(self.batches.len() as u32);
        for b in &self.batches {
            buf.put_u8(match b.kind {
                BatchKind::Hot => 0,
                BatchKind::Cold => 1,
                BatchKind::Unclassified => 2,
            });
            buf.put_u32_le(b.len() as u32);
            for &v in &b.dense {
                buf.put_f32_le(v);
            }
            for &v in &b.labels {
                buf.put_f32_le(v);
            }
            for csr in &b.sparse {
                buf.put_u32_le(csr.indices.len() as u32);
                for &i in &csr.indices {
                    buf.put_u32_le(i);
                }
                for &o in &csr.offsets {
                    buf.put_u32_le(o as u32);
                }
            }
        }
        buf.freeze()
    }

    /// Parses a container from bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, FormatError> {
        let mut reader = FaeStreamReader::open(buf)?;
        // The declared batch count is untrusted: clamp the up-front
        // allocation by what the buffer could physically hold (a batch
        // header alone is 5 bytes), so a corrupt header cannot force a
        // huge allocation before the first decode error surfaces.
        let plausible = (reader.batches_remaining() as usize).min(buf.len() / 5 + 1);
        let mut batches = Vec::with_capacity(plausible);
        while let Some(batch) = reader.next_batch()? {
            batches.push(batch);
        }
        if reader.trailing_bytes() > 0 {
            return Err(FormatError::Corrupt("trailing bytes after final batch"));
        }
        Ok(Self {
            workload: reader.workload().to_string(),
            dense_width: reader.dense_width(),
            num_tables: reader.num_tables(),
            batches,
        })
    }

    /// Writes the container to a file.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), FormatError> {
        fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads a container from a file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, FormatError> {
        let data = fs::read(path)?;
        Self::decode(&data)
    }
}

fn need(buf: &[u8], n: usize, what: &'static str) -> Result<(), FormatError> {
    if buf.remaining() < n {
        Err(FormatError::Truncated(what))
    } else {
        Ok(())
    }
}

/// Incremental decoder over an FAE container: yields one [`MiniBatch`] at
/// a time, so a training loop can stream a large preprocessed file
/// without materialising every batch up front.
pub struct FaeStreamReader<'a> {
    buf: &'a [u8],
    workload: String,
    dense_width: u32,
    num_tables: u32,
    remaining: u32,
}

impl<'a> FaeStreamReader<'a> {
    /// Validates the header and positions the reader at the first batch.
    pub fn open(mut buf: &'a [u8]) -> Result<Self, FormatError> {
        need(buf, 8, "header")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(FormatError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(FormatError::BadVersion(version));
        }
        need(buf, 4, "workload name")?;
        let name_len = buf.get_u32_le() as usize;
        need(buf, name_len, "workload name")?;
        let workload = String::from_utf8(buf[..name_len].to_vec())
            .map_err(|_| FormatError::Corrupt("workload name not utf8"))?;
        buf.advance(name_len);
        need(buf, 12, "shape header")?;
        let dense_width = buf.get_u32_le();
        let num_tables = buf.get_u32_le();
        let remaining = buf.get_u32_le();
        Ok(Self { buf, workload, dense_width, num_tables, remaining })
    }

    /// Workload name recorded in the header.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Dense feature width shared by all batches.
    pub fn dense_width(&self) -> u32 {
        self.dense_width
    }

    /// Embedding-table count shared by all batches.
    pub fn num_tables(&self) -> u32 {
        self.num_tables
    }

    /// Batches not yet decoded.
    pub fn batches_remaining(&self) -> u32 {
        self.remaining
    }

    /// Bytes left after the declared batches (0 for a well-formed file;
    /// only meaningful once every batch has been read).
    pub fn trailing_bytes(&self) -> usize {
        if self.remaining == 0 {
            self.buf.remaining()
        } else {
            0
        }
    }

    /// Decodes the next batch, or `Ok(None)` when the stream is done.
    #[allow(clippy::should_implement_trait)] // fallible next; Iterator wraps it
    pub fn next_batch(&mut self) -> Result<Option<MiniBatch>, FormatError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let buf = &mut self.buf;
        need(buf, 5, "batch header")?;
        let kind = match buf.get_u8() {
            0 => BatchKind::Hot,
            1 => BatchKind::Cold,
            2 => BatchKind::Unclassified,
            _ => return Err(FormatError::Corrupt("unknown batch kind")),
        };
        let len = buf.get_u32_le() as usize;
        // Both factors are untrusted u32s: the products can exceed usize
        // on 32-bit targets (and `dense_n * 4` can on 64-bit), so every
        // size computation is overflow-checked before it sizes a read.
        let dense_n = len
            .checked_mul(self.dense_width as usize)
            .ok_or(FormatError::Corrupt("dense block size overflows"))?;
        let dense_bytes =
            dense_n.checked_mul(4).ok_or(FormatError::Corrupt("dense block size overflows"))?;
        need(buf, dense_bytes, "dense block")?;
        let mut dense = Vec::with_capacity(dense_n);
        for _ in 0..dense_n {
            dense.push(buf.get_f32_le());
        }
        need(buf, len * 4, "labels")?;
        let mut labels = Vec::with_capacity(len);
        for _ in 0..len {
            labels.push(buf.get_f32_le());
        }
        let mut sparse = Vec::with_capacity(self.num_tables as usize);
        for _ in 0..self.num_tables {
            need(buf, 4, "csr nnz")?;
            let nnz = buf.get_u32_le() as usize;
            let csr_bytes = nnz
                .checked_mul(4)
                .and_then(|b| (len + 1).checked_mul(4).and_then(|c| b.checked_add(c)))
                .ok_or(FormatError::Corrupt("csr body size overflows"))?;
            need(buf, csr_bytes, "csr body")?;
            let mut indices = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                indices.push(buf.get_u32_le());
            }
            let mut offsets = Vec::with_capacity(len + 1);
            for _ in 0..=len {
                offsets.push(buf.get_u32_le() as usize);
            }
            if offsets[0] != 0 || offsets[len] != nnz || offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(FormatError::Corrupt("csr offsets not monotonic"));
            }
            sparse.push(TableIndices { indices, offsets });
        }
        Ok(Some(MiniBatch { kind, dense, dense_width: self.dense_width as usize, sparse, labels }))
    }
}

impl Iterator for FaeStreamReader<'_> {
    type Item = Result<MiniBatch, FormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_batch().transpose()
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    pub(crate) fn sample_batch(kind: BatchKind, len: usize) -> MiniBatch {
        let mut csr1 = TableIndices::new();
        let mut csr2 = TableIndices::new();
        for i in 0..len {
            csr1.push_bag(&[i as u32]);
            csr2.push_bag(&[(i * 2) as u32, (i * 2 + 1) as u32]);
        }
        MiniBatch {
            kind,
            dense: (0..len * 3).map(|v| v as f32 * 0.5).collect(),
            dense_width: 3,
            sparse: vec![csr1, csr2],
            labels: (0..len).map(|i| (i % 2) as f32).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::sample_batch;
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let f = FaeFile::new(
            "unit-test",
            vec![sample_batch(BatchKind::Hot, 4), sample_batch(BatchKind::Cold, 2)],
        );
        let bytes = f.encode();
        let g = FaeFile::decode(&bytes).expect("decode");
        assert_eq!(g.workload, "unit-test");
        assert_eq!(g.batches.len(), 2);
        assert_eq!(g.hot_count(), 1);
        assert_eq!(g.cold_count(), 1);
        for (a, b) in f.batches.iter().zip(&g.batches) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.dense, b.dense);
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.sparse, b.sparse);
        }
    }

    #[test]
    fn empty_container_round_trips() {
        let f = FaeFile::new("empty", vec![]);
        let g = FaeFile::decode(&f.encode()).expect("decode");
        assert!(g.batches.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = FaeFile::new("x", vec![]).encode().to_vec();
        bytes[0] = b'X';
        assert!(matches!(FaeFile::decode(&bytes), Err(FormatError::BadMagic)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = FaeFile::new("x", vec![]).encode().to_vec();
        bytes[4] = 99;
        assert!(matches!(FaeFile::decode(&bytes), Err(FormatError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let bytes = FaeFile::new("t", vec![sample_batch(BatchKind::Hot, 3)]).encode();
        for cut in 0..bytes.len() {
            let r = FaeFile::decode(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = FaeFile::new("t", vec![sample_batch(BatchKind::Cold, 1)]).encode().to_vec();
        bytes.push(0);
        assert!(matches!(FaeFile::decode(&bytes), Err(FormatError::Corrupt(_))));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fae-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.fae");
        let f = FaeFile::new("disk", vec![sample_batch(BatchKind::Hot, 2)]);
        f.write_file(&path).expect("write");
        let g = FaeFile::read_file(&path).expect("read");
        assert_eq!(g.workload, "disk");
        assert_eq!(g.batches.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    // Header layout for a 1-char workload name ("t"): magic 0..4,
    // version 4..8, name_len 8..12, name 12..13, dense_width 13..17,
    // num_tables 17..21, batch count 21..25; first batch kind at 25,
    // batch len at 26..30.

    #[test]
    fn huge_declared_batch_count_fails_fast_without_allocating() {
        let mut bytes = FaeFile::new("t", vec![sample_batch(BatchKind::Hot, 1)]).encode().to_vec();
        bytes[21..25].copy_from_slice(&u32::MAX.to_le_bytes());
        // Must error (the buffer holds one batch, not 4 billion) without
        // reserving u32::MAX batch slots first.
        assert!(FaeFile::decode(&bytes).is_err());
    }

    #[test]
    fn overflowing_declared_sizes_are_corrupt_not_a_panic() {
        let mut bytes = FaeFile::new("t", vec![sample_batch(BatchKind::Hot, 1)]).encode().to_vec();
        // dense_width = u32::MAX and batch len = u32::MAX: the dense block
        // byte count overflows usize — the checked math must catch it.
        bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        bytes[26..30].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(FaeFile::decode(&bytes), Err(FormatError::Corrupt(_))));
    }

    #[test]
    fn huge_declared_nnz_is_truncation_not_a_panic() {
        let mut bytes = FaeFile::new("t", vec![sample_batch(BatchKind::Hot, 1)]).encode().to_vec();
        // First CSR's nnz follows the batch header (1+4), one dense row
        // (3×4) and one label (4): offset 25 + 5 + 12 + 4 = 46.
        bytes[46..50].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(FaeFile::decode(&bytes), Err(FormatError::Truncated(_))));
    }

    #[test]
    #[should_panic(expected = "inconsistent batch shapes")]
    fn new_rejects_mixed_shapes() {
        let mut odd = sample_batch(BatchKind::Hot, 1);
        odd.sparse.pop();
        let _ = FaeFile::new("bad", vec![sample_batch(BatchKind::Hot, 1), odd]);
    }
}

#[cfg(test)]
mod stream_tests {
    use super::tests_support::sample_batch;
    use super::*;

    #[test]
    fn streaming_matches_bulk_decode() {
        let f = FaeFile::new(
            "stream",
            vec![
                sample_batch(BatchKind::Hot, 3),
                sample_batch(BatchKind::Cold, 1),
                sample_batch(BatchKind::Unclassified, 2),
            ],
        );
        let bytes = f.encode();
        let bulk = FaeFile::decode(&bytes).expect("bulk");
        let mut reader = FaeStreamReader::open(&bytes).expect("open");
        assert_eq!(reader.workload(), "stream");
        assert_eq!(reader.batches_remaining(), 3);
        let mut streamed = Vec::new();
        while let Some(b) = reader.next_batch().expect("batch") {
            streamed.push(b);
        }
        assert_eq!(streamed.len(), bulk.batches.len());
        for (a, b) in streamed.iter().zip(&bulk.batches) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.sparse, b.sparse);
        }
        assert_eq!(reader.trailing_bytes(), 0);
        assert!(reader.next_batch().expect("eof").is_none());
    }

    #[test]
    fn iterator_adapter_yields_every_batch() {
        let f = FaeFile::new("it", vec![sample_batch(BatchKind::Hot, 2); 5]);
        let bytes = f.encode();
        let reader = FaeStreamReader::open(&bytes).expect("open");
        let got: Result<Vec<_>, _> = reader.collect();
        assert_eq!(got.expect("stream").len(), 5);
    }

    #[test]
    fn truncated_stream_errors_midway_not_upfront() {
        let f = FaeFile::new(
            "trunc",
            vec![sample_batch(BatchKind::Hot, 2), sample_batch(BatchKind::Cold, 2)],
        );
        let bytes = f.encode();
        // Cut inside the second batch.
        let cut = bytes.len() - 8;
        let mut reader = FaeStreamReader::open(&bytes[..cut]).expect("header ok");
        assert!(reader.next_batch().expect("first batch intact").is_some());
        assert!(reader.next_batch().is_err(), "second batch should fail");
    }
}
