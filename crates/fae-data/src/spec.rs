//! Workload specifications mirroring Table I of the paper.
//!
//! Each spec fixes the *shape* of a workload: embedding tables (count, row
//! counts, dimension), sparse lookups per input, dense feature width, the
//! MLP layer widths of the matching model, the paper's per-GPU mini-batch
//! size, and the Zipf exponent steering access skew. Scaled constructors
//! shrink row/input counts ~64× so real training runs on a laptop CPU;
//! `*_paper()` constructors carry the full published sizes for the cost
//! model (they are never materialised as weights).

use serde::{Deserialize, Serialize};

/// Which model family trains on this workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// DLRM: bottom MLP + pairwise feature interaction + top MLP.
    Dlrm,
    /// TBSM: DLRM-style embeddings + attention over a behaviour sequence.
    Tbsm,
}

/// One embedding table's shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSpec {
    /// Number of rows (distinct categorical values).
    pub rows: usize,
    /// Lookups into this table per input (1 for DLRM fields; the sequence
    /// length for TBSM behaviour tables).
    pub lookups_per_input: usize,
}

/// The shape of one benchmark workload (paper Table I).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name, e.g. `"rmc2-kaggle"`.
    pub name: String,
    /// Model family.
    pub kind: WorkloadKind,
    /// Embedding tables.
    pub tables: Vec<TableSpec>,
    /// Embedding dimension (shared across tables, as in DLRM/TBSM).
    pub embedding_dim: usize,
    /// Number of dense (continuous) features.
    pub dense_features: usize,
    /// Default number of training inputs to synthesise.
    pub num_inputs: usize,
    /// Zipf exponent for row popularity (≈1.05–1.25 matches the paper's
    /// observed skew where a few percent of rows draw ≥75% of accesses).
    pub zipf_exponent: f64,
    /// Probability that an input is a *popular* input, drawing all its
    /// lookups from each table's head region. Real click logs exhibit
    /// strong cross-field popularity correlation (a popular ad carries
    /// popular values in every field); without it, 26 independent lookups
    /// would almost never be jointly hot (Fig 4's argument) and the
    /// paper's hot-input volumes could not exist.
    pub popularity_correlation: f64,
    /// Fraction of each table's popularity ranks forming the head region
    /// popular inputs draw from.
    pub head_fraction: f64,
    /// Bottom MLP widths, dense_features first.
    pub bottom_mlp: Vec<usize>,
    /// Top MLP widths, ending in 1 (CTR output).
    pub top_mlp: Vec<usize>,
    /// Per-GPU mini-batch size used in the paper's main experiments.
    pub minibatch_size: usize,
}

impl WorkloadSpec {
    /// Total embedding parameters across tables.
    pub fn embedding_params(&self) -> usize {
        self.tables.iter().map(|t| t.rows * self.embedding_dim).sum()
    }

    /// Total embedding bytes (f32) — Fig 2's "full table" bars.
    pub fn embedding_bytes(&self) -> usize {
        self.embedding_params() * std::mem::size_of::<f32>()
    }

    /// Bytes of one table.
    pub fn table_bytes(&self, t: usize) -> usize {
        self.tables[t].rows * self.embedding_dim * std::mem::size_of::<f32>()
    }

    /// Tables at or above the paper's 1 MB "large table" threshold; smaller
    /// tables are de-facto hot (§III-A.1).
    pub fn large_tables(&self) -> Vec<usize> {
        (0..self.tables.len()).filter(|&t| self.table_bytes(t) >= 1 << 20).collect()
    }

    /// Total sparse lookups per input, across tables.
    pub fn lookups_per_input(&self) -> usize {
        self.tables.iter().map(|t| t.lookups_per_input).sum()
    }

    /// Scaled RMC1: TBSM on a Taobao-shaped workload — 3 tables (items,
    /// categories, users), dim 16, behaviour sequences up to 21 steps.
    pub fn rmc1_taobao() -> Self {
        Self {
            name: "rmc1-taobao".into(),
            kind: WorkloadKind::Tbsm,
            tables: vec![
                TableSpec { rows: 64_000, lookups_per_input: 21 }, // items
                TableSpec { rows: 5_000, lookups_per_input: 21 },  // categories
                TableSpec { rows: 16_000, lookups_per_input: 1 },  // users
            ],
            embedding_dim: 16,
            dense_features: 3,
            num_inputs: 160_000,
            zipf_exponent: 1.15,
            popularity_correlation: 0.72,
            head_fraction: 0.02,
            bottom_mlp: vec![3, 16],
            top_mlp: vec![30, 60, 1],
            minibatch_size: 256,
        }
    }

    /// Scaled RMC2: DLRM on a Criteo-Kaggle-shaped workload — 26 tables
    /// with a heavy-tailed size distribution (max 158k rows), dim 16.
    pub fn rmc2_kaggle() -> Self {
        Self {
            name: "rmc2-kaggle".into(),
            kind: WorkloadKind::Dlrm,
            tables: criteo_like_tables(158_000, 26),
            embedding_dim: 16,
            dense_features: 13,
            num_inputs: 700_000,
            zipf_exponent: 1.1,
            popularity_correlation: 0.85,
            head_fraction: 0.005,
            bottom_mlp: vec![13, 512, 256, 64, 16],
            top_mlp: vec![512, 256, 1],
            minibatch_size: 1024,
        }
    }

    /// Scaled RMC3: DLRM on a Criteo-Terabyte-shaped workload — 26 tables
    /// (max 1.14M rows), dim 64.
    pub fn rmc3_terabyte() -> Self {
        Self {
            name: "rmc3-terabyte".into(),
            kind: WorkloadKind::Dlrm,
            tables: criteo_like_tables(1_140_000, 26),
            embedding_dim: 64,
            dense_features: 13,
            num_inputs: 1_250_000,
            zipf_exponent: 1.05,
            popularity_correlation: 0.88,
            head_fraction: 0.002,
            bottom_mlp: vec![13, 512, 256, 64],
            top_mlp: vec![512, 512, 256, 1],
            minibatch_size: 1024,
        }
    }

    /// Full-size RMC1 shape (0.3 GB of embeddings; cost model only).
    pub fn rmc1_taobao_paper() -> Self {
        let mut s = Self::rmc1_taobao();
        s.name = "rmc1-taobao-paper".into();
        s.tables = vec![
            TableSpec { rows: 4_100_000, lookups_per_input: 21 },
            TableSpec { rows: 320_000, lookups_per_input: 21 },
            TableSpec { rows: 990_000, lookups_per_input: 1 },
        ];
        s.num_inputs = 10_000_000;
        s
    }

    /// Full-size RMC2 shape (2 GB of embeddings; cost model only).
    pub fn rmc2_kaggle_paper() -> Self {
        let mut s = Self::rmc2_kaggle();
        s.name = "rmc2-kaggle-paper".into();
        s.tables = criteo_like_tables(10_100_000, 26);
        s.num_inputs = 45_000_000;
        s
    }

    /// Full-size RMC3 shape (61 GB of embeddings; cost model only).
    pub fn rmc3_terabyte_paper() -> Self {
        let mut s = Self::rmc3_terabyte();
        s.name = "rmc3-terabyte-paper".into();
        s.tables = criteo_like_tables(73_100_000, 26);
        s.num_inputs = 80_000_000;
        s
    }

    /// Negative control: a near-uniform workload with no cross-field
    /// popularity correlation. FAE's premise (a small hot set serving
    /// most accesses) does not hold here, so the framework should find
    /// few hot inputs and deliver little speedup — a falsifiability
    /// check on the whole pipeline.
    pub fn uniform_control() -> Self {
        Self {
            name: "uniform-control".into(),
            kind: WorkloadKind::Dlrm,
            tables: (0..8).map(|_| TableSpec { rows: 50_000, lookups_per_input: 1 }).collect(),
            embedding_dim: 16,
            dense_features: 8,
            num_inputs: 100_000,
            zipf_exponent: 0.2, // nearly flat
            popularity_correlation: 0.0,
            head_fraction: 0.01,
            bottom_mlp: vec![8, 64, 16],
            top_mlp: vec![64, 32, 1],
            minibatch_size: 512,
        }
    }

    /// A tiny workload for unit/integration tests: 4 tables, dim 8.
    pub fn tiny_test() -> Self {
        Self {
            name: "tiny-test".into(),
            kind: WorkloadKind::Dlrm,
            tables: vec![
                TableSpec { rows: 2_000, lookups_per_input: 1 },
                TableSpec { rows: 1_000, lookups_per_input: 1 },
                TableSpec { rows: 500, lookups_per_input: 1 },
                TableSpec { rows: 50, lookups_per_input: 1 },
            ],
            embedding_dim: 8,
            dense_features: 4,
            num_inputs: 8_000,
            zipf_exponent: 1.2,
            popularity_correlation: 0.8,
            head_fraction: 0.05,
            bottom_mlp: vec![4, 16, 8],
            top_mlp: vec![32, 16, 1],
            minibatch_size: 64,
        }
    }

    /// Serialises the spec to pretty JSON (for `--spec-file` workflows).
    /// Errs only if the in-memory spec fails to serialize.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a spec from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// All three scaled benchmark workloads, in paper order (RMC2, RMC1,
    /// RMC3 appear in various orders; we use Kaggle, Taobao, Terabyte as in
    /// the result figures).
    pub fn all_scaled() -> Vec<Self> {
        vec![Self::rmc2_kaggle(), Self::rmc1_taobao(), Self::rmc3_terabyte()]
    }
}

/// Builds a Criteo-like heavy-tailed table size distribution: a few huge
/// tables, a middle band, and a tail of tiny (de-facto hot) tables — the
/// qualitative shape of the open Criteo datasets.
/// The 26 categorical-field cardinalities of the public Criteo Kaggle
/// dataset, sorted descending. The shape is strongly bimodal: five huge
/// id-spaces (users/items/ads), a handful of mid-sized fields, and a long
/// tail of tiny enumerations — which is why most tables fall under the
/// paper's 1 MB de-facto-hot rule and only a few need calibration.
const CRITEO_CARDINALITIES: [usize; 26] = [
    10_131_227, 8_351_593, 7_046_547, 5_461_306, 2_202_608, 286_181, 142_572, 93_146, 14_993,
    12_518, 5_684, 5_653, 3_195, 2_173, 1_461, 634, 584, 306, 105, 28, 24, 18, 15, 10, 4, 4,
];

fn criteo_like_tables(max_rows: usize, count: usize) -> Vec<TableSpec> {
    assert_eq!(count, 26, "the Criteo profile defines exactly 26 fields");
    let scale = max_rows as f64 / CRITEO_CARDINALITIES[0] as f64;
    CRITEO_CARDINALITIES
        .iter()
        .map(|&c| TableSpec { rows: ((c as f64 * scale) as usize).max(4), lookups_per_input: 1 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaggle_shape_matches_table_i() {
        let s = WorkloadSpec::rmc2_kaggle();
        assert_eq!(s.tables.len(), 26);
        assert_eq!(s.embedding_dim, 16);
        assert_eq!(s.dense_features, 13);
        assert_eq!(s.bottom_mlp, vec![13, 512, 256, 64, 16]);
        assert_eq!(s.top_mlp, vec![512, 256, 1]);
        assert_eq!(s.kind, WorkloadKind::Dlrm);
        assert_eq!(s.tables[0].rows, 158_000);
    }

    #[test]
    fn taobao_is_a_sequence_workload() {
        let s = WorkloadSpec::rmc1_taobao();
        assert_eq!(s.kind, WorkloadKind::Tbsm);
        assert_eq!(s.tables.len(), 3);
        assert_eq!(s.tables[0].lookups_per_input, 21);
        assert_eq!(s.lookups_per_input(), 43);
    }

    #[test]
    fn paper_sizes_match_published_footprints() {
        // Fig 2: Kaggle ≈ 2 GB, Terabyte ≈ 61 GB, Taobao ≈ 0.3 GB.
        let gb = |b: usize| b as f64 / (1u64 << 30) as f64;
        let kaggle = gb(WorkloadSpec::rmc2_kaggle_paper().embedding_bytes());
        assert!((1.0..3.0).contains(&kaggle), "kaggle {kaggle} GB");
        let tb = gb(WorkloadSpec::rmc3_terabyte_paper().embedding_bytes());
        assert!((45.0..70.0).contains(&tb), "terabyte {tb} GB");
        let taobao = gb(WorkloadSpec::rmc1_taobao_paper().embedding_bytes());
        assert!((0.2..0.5).contains(&taobao), "taobao {taobao} GB");
    }

    #[test]
    fn criteo_like_tables_are_heavy_tailed() {
        let t = criteo_like_tables(100_000, 26);
        assert_eq!(t.len(), 26);
        assert_eq!(t[0].rows, 100_000);
        assert!(t.windows(2).all(|w| w[0].rows >= w[1].rows));
        assert!(t.last().unwrap().rows >= 4);
    }

    #[test]
    fn large_table_threshold_is_1mb() {
        let s = WorkloadSpec::tiny_test();
        // dim 8 f32 => 32 bytes/row; 1 MB = 32768 rows. All tiny tables are small.
        assert!(s.large_tables().is_empty());
        let k = WorkloadSpec::rmc2_kaggle();
        // 16 f32 = 64 B/row => tables with ≥ 16384 rows are large.
        for &t in &k.large_tables() {
            assert!(k.tables[t].rows >= 16_384);
        }
        assert!(!k.large_tables().is_empty());
        assert!(k.large_tables().len() < k.tables.len());
    }

    #[test]
    fn embedding_bytes_sums_tables() {
        let s = WorkloadSpec::tiny_test();
        let expect: usize = s.tables.iter().map(|t| t.rows * 8 * 4).sum();
        assert_eq!(s.embedding_bytes(), expect);
        assert_eq!(s.table_bytes(0), 2_000 * 8 * 4);
    }
}
