//! # fae-data — synthetic recommendation workloads
//!
//! The paper evaluates on Criteo Kaggle, Criteo Terabyte and Taobao
//! (Alibaba). Those datasets are not redistributable, so this crate builds
//! the closest synthetic equivalents: Zipf-skewed sparse datasets whose
//! *shape* (table count, row counts, feature counts, embedding dimensions,
//! access skew) matches Table I and Fig 2 of the paper, with labels planted
//! by a hidden ground-truth model so accuracy experiments are meaningful.
//!
//! * [`WorkloadSpec`] — the shape of one workload; `rmc1_taobao()`,
//!   `rmc2_kaggle()`, `rmc3_terabyte()` give laptop-scaled variants and the
//!   `*_paper()` constructors give the full published shapes (used only by
//!   the cost model, never materialised),
//! * [`generate`] — deterministic dataset synthesis with per-table Zipf
//!   popularity and shuffled id spaces,
//! * [`Dataset`] / [`TableIndices`] / [`MiniBatch`] — CSR-style storage,
//! * [`mod@format`] — the *FAE format*: a binary container for the
//!   preprocessed hot/cold mini-batch stream, written once per dataset and
//!   reloaded on subsequent training runs (§III-B).

#![forbid(unsafe_code)]
pub mod dataset;
pub mod format;
pub mod gen;
pub mod minibatch;
pub mod spec;
pub mod stats;
pub mod zipf;

pub use dataset::{Dataset, TableIndices};
pub use gen::{generate, GenOptions};
pub use minibatch::{BatchKind, MiniBatch};
pub use spec::{TableSpec, WorkloadKind, WorkloadSpec};
pub use zipf::ZipfSampler;
