//! Mini-batches as produced by the FAE input processor.
//!
//! The paper requires mini-batches to be *purely* hot or *purely* cold so a
//! hot batch never stalls on CPU-resident rows (§II-B challenge 1, Fig 4).
//! The [`BatchKind`] tag records that purity.

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, TableIndices};

/// Whether a mini-batch is all-hot, all-cold, or unclassified (baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchKind {
    /// Every lookup of every sample hits a hot embedding row: eligible for
    /// pure GPU data-parallel execution.
    Hot,
    /// At least one sample touches a cold row: runs in the hybrid CPU-GPU
    /// baseline mode.
    Cold,
    /// No classification performed (baseline training).
    Unclassified,
}

/// One training mini-batch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MiniBatch {
    /// Purity tag.
    pub kind: BatchKind,
    /// Row-major `batch × dense_features`.
    pub dense: Vec<f32>,
    /// Dense feature width.
    pub dense_width: usize,
    /// One CSR per embedding table.
    pub sparse: Vec<TableIndices>,
    /// 0/1 labels, length `batch`.
    pub labels: Vec<f32>,
}

impl MiniBatch {
    /// Assembles a mini-batch from the listed dataset samples.
    pub fn gather(ds: &Dataset, samples: &[usize], kind: BatchKind) -> Self {
        let w = ds.spec.dense_features;
        let mut dense = Vec::with_capacity(samples.len() * w);
        let mut labels = Vec::with_capacity(samples.len());
        for &s in samples {
            dense.extend_from_slice(ds.dense_row(s));
            labels.push(ds.labels[s]);
        }
        Self {
            kind,
            dense,
            dense_width: w,
            sparse: ds.sparse.iter().map(|c| c.gather(samples)).collect(),
            labels,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total sparse lookups across tables.
    pub fn total_lookups(&self) -> usize {
        self.sparse.iter().map(|c| c.indices.len()).sum()
    }

    /// Bytes of dense activations entering the model (used by the cost
    /// model's transfer terms).
    pub fn dense_bytes(&self) -> usize {
        self.dense.len() * std::mem::size_of::<f32>()
    }

    /// Re-assembles the sub-batch holding the listed sample positions (in
    /// the given order), preserving the purity tag.
    pub fn select(&self, ids: &[usize]) -> MiniBatch {
        let w = self.dense_width;
        let mut dense = Vec::with_capacity(ids.len() * w);
        let mut labels = Vec::with_capacity(ids.len());
        for &i in ids {
            dense.extend_from_slice(&self.dense[i * w..(i + 1) * w]);
            labels.push(self.labels[i]);
        }
        MiniBatch {
            kind: self.kind,
            dense,
            dense_width: w,
            sparse: self.sparse.iter().map(|csr| csr.gather(ids)).collect(),
            labels,
        }
    }

    /// Splits the batch into `k` contiguous shards whose sizes differ by
    /// at most one sample (the data-parallel sharding of §II-B: shard `d`
    /// gets samples `[d·⌈n/k⌉ …]`, earlier shards take the remainder).
    /// Shards past the sample count come back empty. The split is a pure
    /// function of `(len, k)`, which is what makes worker-sharded
    /// execution replayable.
    pub fn shards(&self, k: usize) -> Vec<MiniBatch> {
        assert!(k >= 1, "need at least one shard");
        let n = self.len();
        let base = n / k;
        let extra = n % k;
        let mut out = Vec::with_capacity(k);
        let mut start = 0usize;
        for d in 0..k {
            let len = base + usize::from(d < extra);
            let ids: Vec<usize> = (start..start + len).collect();
            start += len;
            out.push(self.select(&ids));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn ds(n: usize) -> Dataset {
        let spec = WorkloadSpec::tiny_test();
        let w = spec.dense_features;
        let mut sparse: Vec<TableIndices> =
            (0..spec.tables.len()).map(|_| TableIndices::new()).collect();
        for i in 0..n {
            for csr in sparse.iter_mut() {
                csr.push_bag(&[i as u32]);
            }
        }
        Dataset {
            spec,
            dense: (0..n * w).map(|v| v as f32).collect(),
            sparse,
            labels: (0..n).map(|i| (i % 2) as f32).collect(),
        }
    }

    #[test]
    fn gather_builds_consistent_batch() {
        let d = ds(6);
        let mb = MiniBatch::gather(&d, &[5, 1, 3], BatchKind::Hot);
        assert_eq!(mb.kind, BatchKind::Hot);
        assert_eq!(mb.len(), 3);
        assert_eq!(mb.labels, vec![1.0, 1.0, 1.0]);
        assert_eq!(mb.sparse[0].bag(0), &[5]);
        assert_eq!(mb.sparse[0].bag(1), &[1]);
        assert_eq!(&mb.dense[0..4], d.dense_row(5));
        assert_eq!(mb.total_lookups(), 3 * 4);
        assert_eq!(mb.dense_bytes(), 3 * 4 * 4);
    }

    #[test]
    fn empty_gather_is_empty_batch() {
        let d = ds(2);
        let mb = MiniBatch::gather(&d, &[], BatchKind::Cold);
        assert!(mb.is_empty());
        assert_eq!(mb.total_lookups(), 0);
    }
}
