//! Deterministic synthesis of Zipf-skewed recommendation datasets.
//!
//! Substitution for the paper's Criteo/Taobao inputs (see DESIGN.md §2):
//! each table gets a [`crate::ZipfSampler`] (skew matching the paper's
//! observed hot-fractions), dense features are standard normal, and labels
//! come from a *planted* ground-truth model — a hidden linear scorer over
//! the dense features plus per-row latent affinities — so that training on
//! the synthetic data exhibits real learning curves (Fig 12 / Table III).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Bernoulli, Distribution, Normal};

use crate::dataset::{Dataset, TableIndices};
use crate::spec::WorkloadSpec;
use crate::zipf::ZipfSampler;

/// Generation options.
#[derive(Clone, Copy, Debug)]
pub struct GenOptions {
    /// RNG seed; everything downstream is a pure function of this.
    pub seed: u64,
    /// Overrides `spec.num_inputs` when set.
    pub num_inputs: Option<usize>,
    /// Popularity drift: fraction of each table's id space the popular
    /// set rotates through over the course of the dataset (0.0 = static
    /// popularity, the paper's setting; 1.0 = the hot set has moved
    /// entirely by the last input). Models the real-world effect behind
    /// §II-B challenge 4 — "hotness needs to be re-calibrated".
    pub drift: f64,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self { seed: 0x0FAE, num_inputs: None, drift: 0.0 }
    }
}

impl GenOptions {
    /// Options with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Default::default() }
    }

    /// Options with the given seed and input count.
    pub fn sized(seed: u64, num_inputs: usize) -> Self {
        Self { seed, num_inputs: Some(num_inputs), ..Default::default() }
    }

    /// Adds popularity drift (see [`GenOptions::drift`]).
    pub fn with_drift(mut self, drift: f64) -> Self {
        assert!((0.0..=1.0).contains(&drift), "drift must be in [0, 1]");
        self.drift = drift;
        self
    }
}

/// Popularity drift moves in discrete regimes (a "trend" holds for a
/// while, then shifts), not continuously — a continuous rotation would
/// smear the hot set across the whole table inside any finite window.
const DRIFT_STEPS: f64 = 8.0;

/// How strongly dense features drive the planted label.
const DENSE_GAIN: f32 = 1.2;
/// How strongly embedding-row affinities drive the planted label.
const AFFINITY_GAIN: f32 = 1.8;

/// Generates a dataset for `spec`.
pub fn generate(spec: &WorkloadSpec, opts: &GenOptions) -> Dataset {
    let n = opts.num_inputs.unwrap_or(spec.num_inputs);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    // fae-lint: allow(no-panic, reason = "Normal::new(0, 1) has constant, provably valid parameters")
    let normal = Normal::new(0.0f32, 1.0).expect("valid normal");

    // Planted model: per-row affinities and a dense scorer.
    let samplers: Vec<ZipfSampler> = spec
        .tables
        .iter()
        .map(|t| ZipfSampler::new(t.rows, spec.zipf_exponent, &mut rng))
        .collect();
    let affinities: Vec<Vec<f32>> = spec
        .tables
        .iter()
        .map(|t| (0..t.rows).map(|_| normal.sample(&mut rng)).collect())
        .collect();
    let dense_w: Vec<f32> = (0..spec.dense_features)
        .map(|_| normal.sample(&mut rng) / (spec.dense_features as f32).sqrt())
        .collect();

    let mut dense = Vec::with_capacity(n * spec.dense_features);
    let mut sparse: Vec<TableIndices> = spec
        .tables
        .iter()
        .map(|t| TableIndices::with_capacity(n, n * t.lookups_per_input))
        .collect();
    let mut labels = Vec::with_capacity(n);

    // Per-table head sizes for popular inputs (cross-field correlation).
    let head_ranks: Vec<usize> = spec
        .tables
        .iter()
        .map(|t| ((t.rows as f64 * spec.head_fraction).ceil() as usize).max(1))
        .collect();

    let mut bag = Vec::new();
    for i in 0..n {
        // Popularity drift: rotate every sampled id forward through the
        // table as the dataset progresses, so the hot set at the end of
        // the stream differs from the hot set the calibrator saw.
        let progress = if n > 1 { i as f64 / (n - 1) as f64 } else { 0.0 };
        let drift_frac = opts.drift * (progress * DRIFT_STEPS).floor() / DRIFT_STEPS;
        let mut score = 0.0f32;
        for &w in &dense_w {
            let x: f32 = normal.sample(&mut rng);
            dense.push(x);
            score += DENSE_GAIN * w * x;
        }
        // Popular inputs draw every lookup from each table's head region —
        // the cross-field popularity correlation of real click logs that
        // makes jointly-hot inputs common (see DESIGN.md §2).
        let popular = rng.gen_bool(spec.popularity_correlation);
        let mut lookups = 0usize;
        let mut affinity_sum = 0.0f32;
        for (((tspec, sampler), &head), (aff, csr)) in spec
            .tables
            .iter()
            .zip(&samplers)
            .zip(&head_ranks)
            .zip(affinities.iter().zip(sparse.iter_mut()))
        {
            bag.clear();
            // Sequence tables draw a variable-length bag (1..=max), like
            // Taobao's up-to-21-step behaviour histories; single-lookup
            // tables always draw exactly one id.
            let len = if tspec.lookups_per_input > 1 {
                rng.gen_range(1..=tspec.lookups_per_input)
            } else {
                1
            };
            for _ in 0..len {
                let raw = if popular {
                    sampler.sample_head(&mut rng, head)
                } else {
                    sampler.sample(&mut rng)
                };
                let id = if drift_frac > 0.0 {
                    let shift = (drift_frac * tspec.rows as f64) as u32;
                    (raw + shift) % tspec.rows as u32
                } else {
                    raw
                };
                affinity_sum += aff[id as usize];
                bag.push(id);
            }
            lookups += len;
            csr.push_bag(&bag);
        }
        score += AFFINITY_GAIN * affinity_sum / lookups as f32;
        let p = 1.0 / (1.0 + (-score).exp());
        // fae-lint: allow(no-panic, reason = "p is a sigmoid output, always inside (0, 1)")
        let label = Bernoulli::new(p as f64).expect("valid p").sample(&mut rng);
        labels.push(if label { 1.0 } else { 0.0 });
    }

    Dataset { spec: spec.clone(), dense, sparse, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_spec() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(1, 500));
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dense.len(), 500 * spec.dense_features);
        assert_eq!(ds.sparse.len(), spec.tables.len());
        for csr in &ds.sparse {
            assert_eq!(csr.len(), 500);
        }
        // DLRM workload: every bag holds exactly one id, in range.
        for i in 0..500 {
            for (t, bag) in ds.bags_of(i) {
                assert_eq!(bag.len(), 1);
                assert!((bag[0] as usize) < spec.tables[t].rows);
            }
        }
    }

    #[test]
    fn sequence_tables_get_variable_bags() {
        let spec = WorkloadSpec::rmc1_taobao();
        let ds = generate(&spec, &GenOptions::sized(2, 200));
        let lens: Vec<usize> = (0..200).map(|i| ds.sparse[0].bag(i).len()).collect();
        assert!(lens.iter().all(|&l| (1..=21).contains(&l)));
        assert!(lens.iter().any(|&l| l > 1), "no multi-step sequences generated");
        // The user table stays single-lookup.
        assert!((0..200).all(|i| ds.sparse[2].bag(i).len() == 1));
    }

    #[test]
    fn deterministic_under_seed() {
        let spec = WorkloadSpec::tiny_test();
        let a = generate(&spec, &GenOptions::sized(7, 100));
        let b = generate(&spec, &GenOptions::sized(7, 100));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.sparse, b.sparse);
        assert_eq!(a.dense, b.dense);
        let c = generate(&spec, &GenOptions::sized(8, 100));
        assert_ne!(a.sparse, c.sparse, "different seeds should differ");
    }

    #[test]
    fn labels_are_learnable_not_degenerate() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(3, 4_000));
        let rate = ds.positive_rate();
        assert!((0.2..0.8).contains(&rate), "positive rate {rate} degenerate");
    }

    #[test]
    fn accesses_are_zipf_skewed() {
        // Count accesses to the largest table and verify the hot-fraction
        // story of Fig 2: a small share of rows draws most accesses.
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(4, 20_000));
        let rows = spec.tables[0].rows;
        let mut counts = vec![0u64; rows];
        for i in 0..ds.len() {
            counts[ds.sparse[0].bag(i)[0] as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = counts[..rows / 10].iter().sum();
        let share = top as f64 / 20_000.0;
        assert!(share > 0.6, "top-10% rows capture only {share}");
    }

    #[test]
    fn label_correlates_with_planted_affinity() {
        // Samples that share the same hot rows should have correlated
        // labels; verify by checking the label rate conditioned on the
        // hottest id differs from the global rate for at least one hot id.
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(5, 30_000));
        let global = ds.positive_rate();
        let mut by_id: std::collections::HashMap<u32, (u32, u32)> = Default::default();
        for i in 0..ds.len() {
            let id = ds.sparse[0].bag(i)[0];
            let e = by_id.entry(id).or_default();
            e.0 += 1;
            if ds.labels[i] >= 0.5 {
                e.1 += 1;
            }
        }
        let deviates = by_id
            .values()
            .filter(|(n, _)| *n > 300)
            .any(|(n, p)| ((*p as f64 / *n as f64) - global).abs() > 0.1);
        assert!(deviates, "labels look independent of embedding ids");
    }
}

#[cfg(test)]
mod drift_tests {
    use super::*;

    #[test]
    fn zero_drift_matches_default_generation() {
        let spec = WorkloadSpec::tiny_test();
        let a = generate(&spec, &GenOptions::sized(5, 300));
        let b = generate(&spec, &GenOptions::sized(5, 300).with_drift(0.0));
        assert_eq!(a.sparse, b.sparse);
    }

    #[test]
    fn drift_moves_the_hot_set_over_the_stream() {
        let spec = WorkloadSpec::tiny_test();
        let n = 20_000;
        let ds = generate(&spec, &GenOptions::sized(6, n).with_drift(0.8));
        // Hot sets of the first and last quarters should barely overlap.
        let count = |range: std::ops::Range<usize>| {
            let mut c = vec![0u64; spec.tables[0].rows];
            for i in range {
                c[ds.sparse[0].bag(i)[0] as usize] += 1;
            }
            c
        };
        let head = count(0..n / 4);
        let tail = count(3 * n / 4..n);
        let top = |c: &[u64]| {
            let mut idx: Vec<usize> = (0..c.len()).collect();
            idx.sort_unstable_by_key(|&i| std::cmp::Reverse(c[i]));
            idx[..50].iter().copied().collect::<std::collections::BTreeSet<_>>()
        };
        let overlap = top(&head).intersection(&top(&tail)).count();
        assert!(overlap < 20, "hot sets overlap too much under drift: {overlap}/50");

        // Without drift the same comparison overlaps heavily.
        let ds0 = generate(&spec, &GenOptions::sized(6, n));
        let count0 = |range: std::ops::Range<usize>| {
            let mut c = vec![0u64; spec.tables[0].rows];
            for i in range {
                c[ds0.sparse[0].bag(i)[0] as usize] += 1;
            }
            c
        };
        let overlap0 = top(&count0(0..n / 4)).intersection(&top(&count0(3 * n / 4..n))).count();
        assert!(overlap0 > 30, "static popularity should overlap: {overlap0}/50");
    }

    #[test]
    #[should_panic(expected = "drift must be in")]
    fn rejects_out_of_range_drift() {
        let _ = GenOptions::seeded(1).with_drift(1.5);
    }
}
