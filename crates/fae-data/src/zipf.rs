//! Zipf popularity sampling with shuffled id spaces.
//!
//! The paper's premise ("prior work ... show that access patterns follow a
//! Power or Zipfian distribution", §V) is reproduced by drawing each
//! lookup's *popularity rank* from a Zipf(s) distribution and mapping rank
//! → row id through a per-table random permutation, so hot rows are
//! scattered across the table exactly as in real datasets (this is what
//! makes the Rand-Em Box's random-chunk sampling statistically sound).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// Samples row ids for one embedding table with Zipfian popularity.
///
/// ```
/// use fae_data::ZipfSampler;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(2);
/// let z = ZipfSampler::new(10_000, 1.2, &mut rng);
/// let mut counts = vec![0u32; 10_000];
/// for _ in 0..10_000 { counts[z.sample(&mut rng) as usize] += 1; }
/// // The most popular id draws far more than its uniform share.
/// assert!(counts[z.id_of_rank(0) as usize] > 100);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    zipf: Zipf<f64>,
    /// rank (0-based) -> row id.
    perm: Vec<u32>,
}

impl ZipfSampler {
    /// Creates a sampler over `rows` ids with exponent `s`, shuffling the
    /// rank→id mapping with `rng`.
    pub fn new(rows: usize, s: f64, rng: &mut impl Rng) -> Self {
        assert!(rows > 0, "zipf over empty id space");
        assert!(s > 0.0, "zipf exponent must be positive");
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        perm.shuffle(rng);
        // fae-lint: allow(no-panic, reason = "rows > 0 and s > 0 are asserted above, the only Zipf::new error cases")
        Self { zipf: Zipf::new(rows as u64, s).expect("valid zipf parameters"), perm }
    }

    /// Number of distinct ids.
    pub fn rows(&self) -> usize {
        self.perm.len()
    }

    /// Draws one row id.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let rank = self.zipf.sample(rng) as usize - 1; // Zipf yields 1..=n
        self.perm[rank.min(self.perm.len() - 1)]
    }

    /// The row id holding popularity rank `rank` (0 = most popular). Used
    /// by tests to assert that the generator's hottest ids really are the
    /// most-sampled ones.
    pub fn id_of_rank(&self, rank: usize) -> u32 {
        self.perm[rank]
    }

    /// Draws one row id uniformly from the *head region*: the
    /// `head_ranks` most popular ranks. Used to synthesise popular inputs
    /// whose every field carries a popular value (cross-field popularity
    /// correlation). Uniform-within-head keeps the whole head frequently
    /// accessed, so a 5% input sample observes (and the classifier tags)
    /// essentially all of it — matching how real logs keep their hot set
    /// densely covered.
    pub fn sample_head(&self, rng: &mut impl Rng, head_ranks: usize) -> u32 {
        let head = head_ranks.clamp(1, self.perm.len());
        self.perm[rng.gen_range(0..head)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = ZipfSampler::new(100, 1.1, &mut rng);
        for _ in 0..10_000 {
            assert!((z.sample(&mut rng) as usize) < 100);
        }
    }

    #[test]
    fn rank_zero_is_the_mode() {
        let mut rng = StdRng::seed_from_u64(2);
        let z = ZipfSampler::new(1_000, 1.2, &mut rng);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let mode =
            counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i as u32).unwrap();
        assert_eq!(mode, z.id_of_rank(0));
    }

    #[test]
    fn skew_concentrates_mass_in_few_ids() {
        // With s ≈ 1.2, a small fraction of ids should capture most draws —
        // the paper's core observation (top 6.8% ⇒ ≥76% on Kaggle).
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let z = ZipfSampler::new(n, 1.2, &mut rng);
        let draws = 200_000;
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = counts[..n / 14].iter().sum(); // top ~7%
        let share = top as f64 / draws as f64;
        assert!(share > 0.7, "top-7% share only {share}");
    }

    #[test]
    fn permutation_scatters_hot_ids() {
        // Hot ids must not be the lowest ids — otherwise chunked sampling
        // in the Rand-Em Box would be biased.
        let mut rng = StdRng::seed_from_u64(4);
        let z = ZipfSampler::new(10_000, 1.1, &mut rng);
        let top10: Vec<u32> = (0..10).map(|r| z.id_of_rank(r)).collect();
        assert!(top10.iter().any(|&id| id > 1_000), "hot ids suspiciously clustered: {top10:?}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let z1 = ZipfSampler::new(500, 1.05, &mut r1);
        let z2 = ZipfSampler::new(500, 1.05, &mut r2);
        for _ in 0..100 {
            assert_eq!(z1.sample(&mut r1), z2.sample(&mut r2));
        }
    }
}
