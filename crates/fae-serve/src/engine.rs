//! The serving engine (DESIGN.md §10): batcher → cache → worker pool.
//!
//! Serving runs in two passes, mirroring the trainer's "real numerics on
//! a simulated clock" split:
//!
//! 1. **Discrete-event simulation** — arrivals (from a recorded trace, an
//!    open-loop generator or closed-loop clients) flow through the
//!    [`MicroBatcher`]; each closed batch is assigned to the earliest-free
//!    worker, its embedding lookups run through the [`ServeCache`], and
//!    its service time is charged phase by phase to a
//!    [`Timeline`]: GPU gathers for cached rows,
//!    CPU gathers + a PCIe transfer for misses, a V100 dense forward, and
//!    a fixed dispatch overhead. Request latencies, queue depths, and the
//!    makespan all come from this pass, so a same-seed serve run is
//!    bit-identical.
//! 2. **Real compute** — the dispatched batches re-run as actual MLP
//!    forwards ([`fae_models::predict`]) on scoped worker threads, one
//!    model replica per worker, producing real click scores. Wall-clock
//!    spans are recorded per worker but never feed back into the
//!    simulated timing.

use std::collections::BinaryHeap;

use fae_core::{AnyModel, TrainCheckpoint};
use fae_data::{BatchKind, Dataset, MiniBatch, WorkloadSpec};
use fae_embed::HotColdPartition;
use fae_models::bridge::profile_for;
use fae_models::{predict, MasterEmbeddings, RecModel};
use fae_sysmodel::{ModelProfile, Phase, SystemConfig, Timeline};
use fae_telemetry::journal::PhaseSeconds;
use fae_telemetry::{JournalEvent, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::batcher::{BatcherConfig, CloseReason, ClosedBatch, MicroBatcher};
use crate::cache::{CacheStats, ServeCache};
use crate::request::{InferRequest, ServeLoad};

/// Fixed per-dispatch framework overhead. The trainer's
/// `PER_STEP_FIXED_S` (11 ms) models a full optimizer-step framework
/// round trip; an inference dispatch skips the optimizer, gradient and
/// host-side bookkeeping almost entirely, so it gets its own, much
/// smaller constant.
const SERVE_DISPATCH_S: f64 = 50e-6;

/// Serving configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Micro-batcher close threshold (requests).
    pub max_batch: usize,
    /// Micro-batcher deadline, seconds.
    pub max_delay_s: f64,
    /// Bounded-queue admission cap: arrivals are rejected while this many
    /// requests are queued or in flight.
    pub queue_cap: usize,
    /// Worker pool size.
    pub workers: usize,
    /// Dynamic (cold-tier) cache slots, spread across tables.
    pub cold_cache_rows: usize,
    /// Cache aging window (cold accesses between count halvings).
    pub freq_window: usize,
    /// Seed for closed-loop input draws and the untrained-model fallback.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay_s: 2e-3,
            queue_cap: 1024,
            workers: 2,
            cold_cache_rows: 4096,
            freq_window: 4096,
            seed: 1,
        }
    }
}

/// One arrival in the event heap, ordered earliest-first with `(time,
/// seq)` ties broken in insertion order — deterministic regardless of
/// float coincidences.
#[derive(Clone, Copy, Debug)]
struct Arrival {
    at: f64,
    seq: u64,
    input: usize,
    client: Option<usize>,
}

impl PartialEq for Arrival {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Arrival {}
impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.at.total_cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// One batch after simulated dispatch (pass 1), awaiting real compute.
struct Dispatched {
    worker: usize,
    end_s: f64,
    members: Vec<usize>,
    batch: MiniBatch,
    phases: PhaseSeconds,
}

/// What a serve run reports.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests that completed.
    pub completed: u64,
    /// Requests rejected at the bounded queue.
    pub rejected: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean request latency, milliseconds.
    pub mean_ms: f64,
    /// Worst request latency, milliseconds.
    pub max_ms: f64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Simulated makespan (serve start to last batch completion).
    pub simulated_seconds: f64,
    /// GPU-side share of embedding lookups.
    pub hit_rate: f64,
    /// Cache counters summed across tables.
    pub cache: CacheStats,
    /// Phase-tagged busy time summed across workers.
    pub timeline: Timeline,
    /// Mean predicted click probability over completed requests (real
    /// numerics from pass 2).
    pub mean_score: f64,
    /// Every arrival the run saw (admitted and rejected), arrival order —
    /// what `--record` persists for later replay.
    pub requests: Vec<InferRequest>,
}

impl ServeReport {
    /// Exact `q`-quantile of `sorted` (ascending): `sorted[⌈q·n⌉-1]`.
    fn quantile(sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The report as a JSON value (what `fae serve` prints and
    /// `bench_serve` embeds in `results/BENCH_serve.json`).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "completed": self.completed,
            "rejected": self.rejected,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "throughput_rps": self.throughput_rps,
            "simulated_seconds": self.simulated_seconds,
            "hit_rate": self.hit_rate,
            "pinned_hits": self.cache.pinned_hits,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "admissions": self.cache.admissions,
            "evictions": self.cache.evictions,
            "mean_score": self.mean_score,
        })
    }
}

/// The serving engine: frozen model + embeddings + partitions + knobs.
pub struct ServeEngine {
    spec: WorkloadSpec,
    partitions: Vec<HotColdPartition>,
    master: MasterEmbeddings,
    dense_params: Vec<f32>,
    cfg: ServeConfig,
    telemetry: Telemetry,
}

impl ServeEngine {
    /// Loads the frozen model + embeddings from a training checkpoint.
    /// The partitions must be the ones the checkpointed run was
    /// calibrated with (the preprocessed sidecar's, or a re-run of the
    /// calibrator on the same dataset) for the pinned tier to line up.
    pub fn from_checkpoint(
        spec: WorkloadSpec,
        ck: &TrainCheckpoint,
        partitions: Vec<HotColdPartition>,
        cfg: ServeConfig,
    ) -> Self {
        Self {
            spec,
            partitions,
            master: ck.restore_master(),
            dense_params: ck.dense_params.clone(),
            cfg,
            telemetry: Telemetry::disabled(),
        }
    }

    /// A freshly initialised (untrained) engine — latency and cache
    /// behaviour are identical to a trained one, only the scores are
    /// meaningless. The fallback when no checkpoint is available.
    pub fn untrained(
        spec: WorkloadSpec,
        partitions: Vec<HotColdPartition>,
        cfg: ServeConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let master = MasterEmbeddings::from_spec(&spec, &mut rng);
        let model = AnyModel::from_spec(&spec, &mut rng);
        let mut dense_params = Vec::new();
        model.write_params(&mut dense_params);
        Self { spec, partitions, master, dense_params, cfg, telemetry: Telemetry::disabled() }
    }

    /// Attaches a telemetry handle (metrics + journal events).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Re-stores the master's cold rows as int8 (DESIGN.md §14). The
    /// calibrator-pinned rows — exactly the set the cache serves
    /// GPU-side — stay exact f32, so hot lookups score bit-identically;
    /// cold-row scores move by at most one quantization step per
    /// element while the cold majority shrinks ~4×. Gauges the new
    /// footprint as `serve.master_bytes`.
    pub fn quantize_cold_tier(&mut self) {
        self.master.quantize_cold_tier(&self.partitions);
        self.telemetry.gauge_set("serve.master_bytes", self.master.total_bytes() as f64);
    }

    /// Resident bytes of the master tables the engine serves from
    /// (shrinks after [`ServeEngine::quantize_cold_tier`]).
    pub fn master_bytes(&self) -> usize {
        self.master.total_bytes()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The workload this engine serves.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The partitions seeding the cache's pinned tier.
    pub fn partitions(&self) -> &[HotColdPartition] {
        &self.partitions
    }

    fn profile(&self) -> ModelProfile {
        let hot_bytes: usize =
            self.partitions.iter().map(|p| p.hot_bytes(self.spec.embedding_dim)).sum();
        profile_for(&self.spec, hot_bytes as f64)
    }

    /// Estimated service seconds of one full all-hot batch — the unit the
    /// load generator's default arrival rate is derived from.
    pub fn estimated_batch_seconds(&self) -> f64 {
        let profile = self.profile();
        let lookups: usize = self.spec.tables.iter().map(|t| t.lookups_per_input).sum();
        batch_cost(
            &profile,
            &SystemConfig::paper_server(1),
            self.spec.embedding_dim,
            self.cfg.max_batch,
            self.cfg.max_batch * lookups,
            0,
        )
        .total()
    }

    /// Runs the load through the engine (both passes) and reports.
    pub fn serve(&self, ds: &Dataset, load: &ServeLoad) -> ServeReport {
        assert!(self.cfg.workers >= 1, "need at least one serving worker");
        assert_eq!(
            self.partitions.len(),
            self.spec.tables.len(),
            "one partition per table (serve against the calibrated workload)"
        );
        let telem = &self.telemetry;
        telem.emit(&JournalEvent::ServeStart {
            workload: self.spec.name.clone(),
            seed: self.cfg.seed,
            workers: self.cfg.workers,
            max_batch: self.cfg.max_batch,
            max_delay_us: (self.cfg.max_delay_s * 1e6).round() as u64,
            queue_cap: self.cfg.queue_cap,
        });

        let profile = self.profile();
        let sys = SystemConfig::paper_server(1);
        let mut cache =
            ServeCache::new(&self.partitions, self.cfg.cold_cache_rows, self.cfg.freq_window);
        let mut batcher = MicroBatcher::new(BatcherConfig {
            max_batch: self.cfg.max_batch,
            max_delay_s: self.cfg.max_delay_s,
            queue_cap: self.cfg.queue_cap,
        });
        let mut free_at = vec![0.0f64; self.cfg.workers];
        let mut dispatched: Vec<Dispatched> = Vec::new();
        let mut requests: Vec<InferRequest> = Vec::new();
        let mut client_of: Vec<Option<usize>> = Vec::new();
        let mut latency: Vec<Option<f64>> = Vec::new();
        let mut rejected = 0u64;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        let mut heap: BinaryHeap<Arrival> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut budgets: Vec<usize> = Vec::new();
        match load {
            ServeLoad::Open(reqs) => {
                for r in reqs {
                    assert!(r.input < ds.len(), "request input {} out of range", r.input);
                    heap.push(Arrival { at: r.arrival_s, seq, input: r.input, client: None });
                    seq += 1;
                }
            }
            ServeLoad::Closed { clients, per_client } => {
                assert!(*clients >= 1, "closed loop needs at least one client");
                budgets = vec![*per_client; *clients];
                for (c, budget) in budgets.iter_mut().enumerate() {
                    if *budget > 0 {
                        *budget -= 1;
                        // Microsecond stagger: client starts are ordered
                        // but effectively simultaneous.
                        heap.push(Arrival {
                            at: c as f64 * 1e-6,
                            seq,
                            input: rng.gen_range(0..ds.len()),
                            client: Some(c),
                        });
                        seq += 1;
                    }
                }
            }
        }

        // Pass 1: discrete-event simulation on the simulated clock.
        let dim = self.spec.embedding_dim;
        let dispatch = |b: ClosedBatch,
                        free_at: &mut Vec<f64>,
                        cache: &mut ServeCache,
                        requests: &[InferRequest],
                        latency: &mut Vec<Option<f64>>,
                        dispatched: &mut Vec<Dispatched>|
         -> (f64, Vec<usize>) {
            // Earliest-free worker, lowest index on ties.
            let worker = free_at
                .iter()
                .enumerate()
                .min_by(|(ai, at), (bi, bt)| at.total_cmp(bt).then(ai.cmp(bi)))
                .map_or(0, |(i, _)| i);
            let start_s = b.close_s.max(free_at[worker]);
            let inputs: Vec<usize> = b.members.iter().map(|&m| requests[m].input).collect();
            let batch = MiniBatch::gather(ds, &inputs, BatchKind::Unclassified);
            let access = cache.access_batch(&batch);
            let cost =
                batch_cost(&profile, &sys, dim, batch.len(), access.gpu_rows, access.cpu_rows);
            let end_s = start_s + cost.total();
            free_at[worker] = end_s;
            for &m in &b.members {
                let l = end_s - requests[m].arrival_s;
                latency[m] = Some(l);
                telem.observe("serve.latency_s", l);
            }
            telem.observe("serve.batch_size", b.members.len() as f64);
            telem.counter_add("serve.cache_hits", access.gpu_rows as u64);
            telem.counter_add("serve.cache_misses", access.cpu_rows as u64);
            let phases = PhaseSeconds::delta(&Timeline::new(), &cost);
            telem.emit(&JournalEvent::ServeBatch {
                batch: dispatched.len() as u64 + 1,
                worker,
                size: b.members.len(),
                start_s,
                hits: access.gpu_rows as u64,
                misses: access.cpu_rows as u64,
                phases,
            });
            let members = b.members.clone();
            dispatched.push(Dispatched { worker, end_s, members: b.members, batch, phases });
            (end_s, members)
        };

        loop {
            let next_at = heap.peek().map(|a| a.at);
            // A pending deadline at or before the next arrival fires first;
            // with no arrivals left, it drains the final batch.
            if let Some(dl) = batcher.deadline() {
                if next_at.is_none_or(|at| dl <= at) {
                    let reason =
                        if next_at.is_some() { CloseReason::Deadline } else { CloseReason::Drain };
                    // fae-lint: allow(no-panic, reason = "deadline() is Some only while a batch is open, so flush cannot return None here")
                    let b = batcher.flush(dl, reason).expect("open batch behind a deadline");
                    let (end_s, members) = dispatch(
                        b,
                        &mut free_at,
                        &mut cache,
                        &requests,
                        &mut latency,
                        &mut dispatched,
                    );
                    // Completed closed-loop clients issue their next request.
                    for m in members {
                        if let Some(c) = client_of[m] {
                            if budgets[c] > 0 {
                                budgets[c] -= 1;
                                heap.push(Arrival {
                                    at: end_s,
                                    seq,
                                    input: rng.gen_range(0..ds.len()),
                                    client: Some(c),
                                });
                                seq += 1;
                            }
                        }
                    }
                    continue;
                }
            }
            let Some(arr) = heap.pop() else { break };
            let now = arr.at;
            // Queue depth: requests in the open batch plus requests
            // dispatched but not yet completed at `now`.
            let inflight: usize =
                dispatched.iter().filter(|d| d.end_s > now).map(|d| d.members.len()).sum();
            let depth = batcher.open_len() + inflight;
            telem.gauge_set("serve.queue_depth", depth as f64);
            if depth >= self.cfg.queue_cap {
                rejected += 1;
                telem.counter_add("serve.rejected", 1);
                requests.push(InferRequest {
                    id: requests.len() as u64,
                    arrival_s: now,
                    input: arr.input,
                });
                client_of.push(arr.client);
                latency.push(None);
                if let Some(c) = arr.client {
                    // A rejected closed-loop client backs off one deadline
                    // before issuing its next request.
                    if budgets[c] > 0 {
                        budgets[c] -= 1;
                        heap.push(Arrival {
                            at: now + self.cfg.max_delay_s,
                            seq,
                            input: rng.gen_range(0..ds.len()),
                            client: Some(c),
                        });
                        seq += 1;
                    }
                }
                continue;
            }
            let idx = requests.len();
            requests.push(InferRequest { id: idx as u64, arrival_s: now, input: arr.input });
            client_of.push(arr.client);
            latency.push(None);
            if let Some(b) = batcher.push(idx, now) {
                let (end_s, members) =
                    dispatch(b, &mut free_at, &mut cache, &requests, &mut latency, &mut dispatched);
                for m in members {
                    if let Some(c) = client_of[m] {
                        if budgets[c] > 0 {
                            budgets[c] -= 1;
                            heap.push(Arrival {
                                at: end_s,
                                seq,
                                input: rng.gen_range(0..ds.len()),
                                client: Some(c),
                            });
                            seq += 1;
                        }
                    }
                }
            }
        }

        self.finish(dispatched, requests, latency, rejected, cache.stats())
    }

    /// Pass 2 (real compute on worker threads) + report assembly.
    fn finish(
        &self,
        dispatched: Vec<Dispatched>,
        requests: Vec<InferRequest>,
        latency: Vec<Option<f64>>,
        rejected: u64,
        cache: CacheStats,
    ) -> ServeReport {
        let telem = &self.telemetry;

        // Real forward passes, one replica per worker, batches in
        // dispatch order. Scores never feed back into the timing.
        let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); self.cfg.workers];
        for (i, d) in dispatched.iter().enumerate() {
            per_worker[d.worker].push(i);
        }
        let (score_sum, score_n) = std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .iter()
                .enumerate()
                .filter(|(_, batches)| !batches.is_empty())
                .map(|(w, batches)| {
                    let telemetry = telem.clone();
                    let dispatched = &dispatched;
                    let master = &self.master;
                    let spec = &self.spec;
                    let params = &self.dense_params;
                    let seed = self.cfg.seed;
                    scope.spawn(move || {
                        let _span = telemetry.span(&format!("serve/worker{w}"));
                        let mut rng = StdRng::seed_from_u64(seed);
                        let mut model = AnyModel::from_spec(spec, &mut rng);
                        model.read_params(params);
                        let mut sum = 0.0f64;
                        let mut n = 0usize;
                        for &bi in batches {
                            let pred = predict(&mut model, master, &dispatched[bi].batch);
                            sum += pred.as_slice().iter().map(|&v| v as f64).sum::<f64>();
                            n += pred.as_slice().len();
                        }
                        (sum, n)
                    })
                })
                .collect();
            let mut sum = 0.0f64;
            let mut n = 0usize;
            for h in handles {
                let (s, c) = match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                sum += s;
                n += c;
            }
            (sum, n)
        });
        let mean_score = if score_n > 0 { score_sum / score_n as f64 } else { 0.0 };

        let mut timeline = Timeline::new();
        for d in &dispatched {
            for (i, phase) in Phase::ALL.iter().enumerate() {
                timeline.add(*phase, d.phases.0[i]);
            }
        }
        let mut lats: Vec<f64> = latency.iter().flatten().copied().collect();
        lats.sort_by(f64::total_cmp);
        let completed = lats.len() as u64;
        let simulated_seconds = dispatched.iter().map(|d| d.end_s).fold(0.0f64, f64::max);
        let throughput_rps =
            if simulated_seconds > 0.0 { completed as f64 / simulated_seconds } else { 0.0 };
        let total_lookups = cache.pinned_hits + cache.hits + cache.misses;
        let hit_rate = if total_lookups > 0 {
            (cache.pinned_hits + cache.hits) as f64 / total_lookups as f64
        } else {
            0.0
        };
        let batches = dispatched.len() as u64;
        let mean_batch_size = if batches > 0 { completed as f64 / batches as f64 } else { 0.0 };
        let report = ServeReport {
            completed,
            rejected,
            batches,
            mean_batch_size,
            p50_ms: ServeReport::quantile(&lats, 0.50) * 1e3,
            p95_ms: ServeReport::quantile(&lats, 0.95) * 1e3,
            p99_ms: ServeReport::quantile(&lats, 0.99) * 1e3,
            mean_ms: if lats.is_empty() {
                0.0
            } else {
                lats.iter().sum::<f64>() / lats.len() as f64 * 1e3
            },
            max_ms: lats.last().copied().unwrap_or(0.0) * 1e3,
            throughput_rps,
            simulated_seconds,
            hit_rate,
            cache,
            timeline,
            mean_score,
            requests,
        };
        telem.counter_add("serve.completed", report.completed);
        telem.gauge_set("serve.hit_rate", report.hit_rate);
        telem.emit(&JournalEvent::ServeEnd {
            completed: report.completed,
            rejected: report.rejected,
            p50_ms: report.p50_ms,
            p95_ms: report.p95_ms,
            p99_ms: report.p99_ms,
            throughput_rps: report.throughput_rps,
            hit_rate: report.hit_rate,
            simulated_seconds: report.simulated_seconds,
        });
        report
    }
}

/// Simulated cost of serving one micro-batch on a paper-server worker.
fn batch_cost(
    profile: &ModelProfile,
    sys: &SystemConfig,
    dim: usize,
    size: usize,
    gpu_rows: usize,
    cpu_rows: usize,
) -> Timeline {
    let row_bytes = (dim * std::mem::size_of::<f32>()) as f64;
    let mut t = Timeline::new();
    // Cached rows gather on the GPU.
    t.add(Phase::EmbedForward, sys.gpu.gather_rows_time(gpu_rows as f64, row_bytes));
    if cpu_rows > 0 {
        // Misses fetch from the CPU master copy and cross PCIe.
        t.add(Phase::EmbedForward, sys.cpu.gather_rows_time(cpu_rows as f64, row_bytes));
        t.add(Phase::Transfer, sys.pcie.transfer_time(cpu_rows as f64 * row_bytes));
    }
    t.add(
        Phase::DenseForward,
        sys.gpu.compute_time(profile.forward_flops(size), profile.ops_per_forward()),
    );
    t.add(Phase::Framework, SERVE_DISPATCH_S);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate_partitions;
    use fae_core::CalibratorConfig;
    use fae_data::{generate, GenOptions, WorkloadSpec};

    fn setup() -> (WorkloadSpec, Dataset, Vec<HotColdPartition>) {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(1, 512));
        let parts = calibrate_partitions(
            &ds,
            CalibratorConfig {
                gpu_budget_bytes: spec.embedding_bytes() / 8,
                small_table_bytes: 8 << 10,
                ..CalibratorConfig::default()
            },
        );
        (spec, ds, parts)
    }

    fn engine(cfg: ServeConfig) -> (Dataset, ServeEngine) {
        let (spec, ds, parts) = setup();
        (ds, ServeEngine::untrained(spec, parts, cfg))
    }

    fn open_load(n: usize, gap_s: f64, ds_len: usize) -> ServeLoad {
        ServeLoad::Open(
            (0..n)
                .map(|i| InferRequest {
                    id: i as u64,
                    arrival_s: i as f64 * gap_s,
                    input: (i * 7) % ds_len,
                })
                .collect(),
        )
    }

    #[test]
    fn open_loop_completes_every_request() {
        let (ds, eng) = engine(ServeConfig { workers: 2, ..ServeConfig::default() });
        let n = ds.len();
        let report = eng.serve(&ds, &open_load(200, 1e-4, n));
        assert_eq!(report.completed, 200);
        assert_eq!(report.rejected, 0);
        assert!(report.batches > 0);
        assert!(report.p50_ms > 0.0);
        assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);
        assert!(report.simulated_seconds > 0.0);
        assert!(report.throughput_rps > 0.0);
        assert!((report.timeline.total() - report.batches as f64 * 0.0).abs() >= 0.0);
        assert_eq!(report.requests.len(), 200);
    }

    #[test]
    fn serve_is_deterministic() {
        let cfg = ServeConfig { workers: 3, ..ServeConfig::default() };
        let (ds, eng_a) = engine(cfg);
        let (_, eng_b) = engine(cfg);
        let n = ds.len();
        let a = eng_a.serve(&ds, &open_load(300, 5e-5, n));
        let b = eng_b.serve(&ds, &open_load(300, 5e-5, n));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.p50_ms, b.p50_ms);
        assert_eq!(a.p99_ms, b.p99_ms);
        assert_eq!(a.hit_rate, b.hit_rate);
        assert_eq!(a.simulated_seconds, b.simulated_seconds);
        assert_eq!(a.mean_score, b.mean_score);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn quantized_master_serves_with_smaller_footprint_and_close_scores() {
        let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
        let (ds, eng_f32) = engine(cfg);
        let (_, mut eng_q) = engine(cfg);
        let before = eng_q.master_bytes();
        eng_q.quantize_cold_tier();
        assert!(
            eng_q.master_bytes() < before,
            "int8 cold tier must shrink the master: {} -> {}",
            before,
            eng_q.master_bytes()
        );
        let n = ds.len();
        let a = eng_f32.serve(&ds, &open_load(200, 1e-4, n));
        let b = eng_q.serve(&ds, &open_load(200, 1e-4, n));
        // Timing and cache behaviour never read embedding values: the
        // simulated side of the report is bit-identical.
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.p99_ms, b.p99_ms);
        assert_eq!(a.hit_rate, b.hit_rate);
        // Scores move only by cold-row quantization error.
        assert!(
            (a.mean_score - b.mean_score).abs() < 0.05,
            "quantized scores drifted: {} vs {}",
            a.mean_score,
            b.mean_score
        );
    }

    #[test]
    fn bounded_queue_rejects_overload() {
        // Everything arrives at t=0 against a tiny queue: most must bounce.
        let (ds, eng) = engine(ServeConfig {
            workers: 1,
            queue_cap: 8,
            max_batch: 4,
            ..ServeConfig::default()
        });
        let n = ds.len();
        let load = ServeLoad::Open(
            (0..100).map(|i| InferRequest { id: i as u64, arrival_s: 0.0, input: i % n }).collect(),
        );
        let report = eng.serve(&ds, &load);
        assert!(report.rejected > 0, "tiny queue under burst must reject");
        assert!(report.completed > 0);
        assert_eq!(report.completed + report.rejected, 100);
    }

    #[test]
    fn closed_loop_issues_full_budget() {
        let (ds, eng) = engine(ServeConfig { workers: 2, ..ServeConfig::default() });
        let report = eng.serve(&ds, &ServeLoad::Closed { clients: 4, per_client: 25 });
        assert_eq!(report.completed + report.rejected, 100);
        assert_eq!(report.rejected, 0, "default queue cap fits 4 clients");
        // Closed loop self-paces: latency stays near the service time.
        assert!(report.p99_ms < 1e3);
    }

    #[test]
    fn hot_requests_hit_the_pinned_tier() {
        let (ds, eng) = engine(ServeConfig::default());
        let n = ds.len();
        let report = eng.serve(&ds, &open_load(400, 1e-4, n));
        let total = report.cache.pinned_hits + report.cache.hits + report.cache.misses;
        assert!(total > 0);
        // tiny_test is Zipf-skewed with strong popularity correlation:
        // the calibrated pinned tier plus the dynamic tier must absorb
        // the paper's 75%+ of lookups.
        assert!(
            report.hit_rate >= 0.75,
            "hit rate {} below the paper's hot-access floor",
            report.hit_rate
        );
    }

    #[test]
    fn cost_model_charges_misses_to_cpu_and_pcie() {
        let (spec, _, _) = setup();
        let profile = profile_for(&spec, 0.0);
        let sys = SystemConfig::paper_server(1);
        let all_hot = batch_cost(&profile, &sys, spec.embedding_dim, 32, 128, 0);
        let half_cold = batch_cost(&profile, &sys, spec.embedding_dim, 32, 64, 64);
        assert_eq!(all_hot.get(Phase::Transfer), 0.0);
        assert!(half_cold.get(Phase::Transfer) > 0.0);
        assert!(half_cold.total() > all_hot.total(), "misses must cost more");
        assert!(all_hot.get(Phase::DenseForward) > 0.0);
        assert_eq!(all_hot.get(Phase::Framework), SERVE_DISPATCH_S);
    }
}
