//! # fae-serve — hot-embedding inference
//!
//! Serving-side counterpart of the FAE training pipeline (DESIGN.md §10):
//! a frozen model + embeddings loaded from a v2 [`TrainCheckpoint`]
//! answer lookup→MLP inference requests through
//!
//! * a **deadline-aware micro-batcher** ([`batcher::MicroBatcher`]) —
//!   bounded queue, batches close at `max_batch` requests or `max_delay`
//!   seconds, whichever comes first,
//! * a **frequency-aware hot-embedding cache** ([`cache::ServeCache`]) —
//!   seeded from the calibrator's hot partition (pinned, never evicted)
//!   with a dynamic cold tier admitting/evicting rows by windowed access
//!   counts; hits cost a GPU gather, misses a CPU fetch + PCIe transfer,
//!   both charged to the `fae-sysmodel` [`Timeline`],
//! * a **worker pool** ([`engine::ServeEngine`]) reusing the execution
//!   engine's scoped-thread pattern, with per-worker Chrome-trace lanes.
//!
//! Exactly like training, the split is *real numerics on a simulated
//! clock*: request latencies, queueing and cache hit/miss costs all come
//! from the deterministic discrete-event simulation, while the actual
//! MLP forward passes run on real threads for real scores.
//!
//! [`TrainCheckpoint`]: fae_core::TrainCheckpoint
//! [`Timeline`]: fae_sysmodel::Timeline

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod engine;
pub mod loadgen;
pub mod request;

pub use batcher::{BatcherConfig, CloseReason, ClosedBatch, MicroBatcher};
pub use cache::{CacheAccess, CacheStats, FreqCache, LruCache, ServeCache};
pub use engine::{ServeConfig, ServeEngine, ServeReport};
pub use loadgen::{open_loop_requests, saturation_sweep, sweep_json, SweepPoint, SweepReport};
pub use request::{InferRequest, RequestTrace, ServeLoad};

use fae_core::calibrator::{log_accesses, sample_inputs};
use fae_core::{classify_tables, Calibrator, CalibratorConfig};
use fae_data::Dataset;
use fae_embed::HotColdPartition;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the calibrator pipeline (sample → log → converge → classify) on
/// `ds` and returns the per-table hot/cold partitions that seed the
/// serve cache's pinned tier. Identical to what `pipeline::prepare` does
/// at preprocess time, so a checkpoint trained from the same dataset and
/// calibrator config sees the same hot rows at serve time.
pub fn calibrate_partitions(ds: &Dataset, cfg: CalibratorConfig) -> Vec<HotColdPartition> {
    let calibrator = Calibrator::new(cfg);
    let mut rng = StdRng::seed_from_u64(calibrator.config.seed);
    let samples = sample_inputs(ds, calibrator.config.sample_rate, &mut rng);
    let counters = log_accesses(ds, &samples);
    let cal = calibrator.converge(ds, &counters, &mut rng);
    classify_tables(&ds.spec, &counters, &cal)
}
