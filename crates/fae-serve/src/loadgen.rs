//! Load generation: open-loop Poisson arrivals and saturation sweeps.
//!
//! Two load shapes, matching the two classic serving-benchmark modes:
//!
//! * **Open loop** — arrivals are a Poisson process at a fixed offered
//!   rate, independent of completions. Drives the system past saturation
//!   and exposes queueing delay honestly (no coordinated omission).
//! * **Closed loop** — a fixed client pool where each client waits for
//!   its response before issuing the next request; self-pacing, so it
//!   measures service latency at the system's natural throughput.
//!
//! [`saturation_sweep`] runs a closed-loop baseline plus a ladder of
//! open-loop points at fractions of the engine's nominal capacity
//! (workers × max_batch ÷ estimated batch seconds), from comfortable to
//! past saturation — the shape `fae bench-serve` plots.

use fae_data::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{ServeEngine, ServeReport};
use crate::request::{InferRequest, ServeLoad};

/// Offered-rate fractions of nominal capacity swept by
/// [`saturation_sweep`]: two comfortable points, one near saturation,
/// one past it.
const SWEEP_FRACTIONS: [f64; 4] = [0.25, 0.5, 0.9, 1.5];

/// Generates `n` open-loop requests: Poisson arrivals at `rate_rps`
/// (exponential inter-arrival gaps) with inputs drawn uniformly from
/// `0..num_inputs`. Deterministic in `seed`.
pub fn open_loop_requests(
    n: usize,
    rate_rps: f64,
    num_inputs: usize,
    seed: u64,
) -> Vec<InferRequest> {
    assert!(rate_rps > 0.0, "offered rate must be positive");
    assert!(num_inputs > 0, "need at least one dataset input");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    (0..n)
        .map(|i| {
            let u: f64 = rng.gen_range(0.0..1.0);
            at += -(1.0 - u).ln() / rate_rps;
            InferRequest { id: i as u64, arrival_s: at, input: rng.gen_range(0..num_inputs) }
        })
        .collect()
}

/// One measured point of a saturation sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// `"closed"` for the self-paced baseline, `"open"` for rate-driven
    /// points.
    pub mode: String,
    /// Offered arrival rate, requests/s (0 for the closed-loop baseline).
    pub offered_rps: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected at the bounded queue.
    pub rejected: u64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Achieved throughput, requests/s.
    pub throughput_rps: f64,
    /// GPU-side share of embedding lookups.
    pub hit_rate: f64,
    /// Mean requests per dispatched micro-batch.
    pub mean_batch_size: f64,
}

impl SweepPoint {
    fn from_report(mode: &str, offered_rps: f64, r: &ServeReport) -> Self {
        Self {
            mode: mode.to_string(),
            offered_rps,
            completed: r.completed,
            rejected: r.rejected,
            p50_ms: r.p50_ms,
            p95_ms: r.p95_ms,
            p99_ms: r.p99_ms,
            throughput_rps: r.throughput_rps,
            hit_rate: r.hit_rate,
            mean_batch_size: r.mean_batch_size,
        }
    }
}

/// A full sweep: the engine's nominal capacity plus every measured point.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Workload the sweep ran against.
    pub workload: String,
    /// Nominal capacity the open-loop rates are fractions of,
    /// requests/s.
    pub capacity_rps: f64,
    /// Measured points: closed baseline first, then open-loop in
    /// ascending offered rate.
    pub points: Vec<SweepPoint>,
}

/// Runs a saturation sweep: one closed-loop baseline, then open-loop
/// points at 25/50/90/150% of the engine's nominal capacity, each
/// offering `requests_per_point` requests. Deterministic in the
/// engine's seed.
pub fn saturation_sweep(
    engine: &ServeEngine,
    ds: &Dataset,
    requests_per_point: usize,
) -> SweepReport {
    assert!(requests_per_point > 0, "sweep needs at least one request per point");
    let cfg = *engine.config();
    let capacity_rps =
        cfg.workers as f64 * cfg.max_batch as f64 / engine.estimated_batch_seconds().max(1e-9);
    let mut points = Vec::with_capacity(1 + SWEEP_FRACTIONS.len());

    let clients = (cfg.workers * 2).max(1);
    let per_client = (requests_per_point / clients).max(1);
    let closed = engine.serve(ds, &ServeLoad::Closed { clients, per_client });
    points.push(SweepPoint::from_report("closed", 0.0, &closed));

    for (i, frac) in SWEEP_FRACTIONS.iter().enumerate() {
        let rate = capacity_rps * frac;
        let reqs =
            open_loop_requests(requests_per_point, rate, ds.len(), cfg.seed ^ (i as u64 + 1));
        let report = engine.serve(ds, &ServeLoad::Open(reqs));
        points.push(SweepPoint::from_report("open", rate, &report));
    }

    SweepReport { workload: engine.spec().name.clone(), capacity_rps, points }
}

/// Serializes a sweep for `results/BENCH_serve.json`.
pub fn sweep_json(sweep: &SweepReport) -> serde_json::Value {
    let points: Vec<serde_json::Value> = sweep
        .points
        .iter()
        .map(|p| {
            serde_json::json!({
                "mode": p.mode,
                "offered_rps": p.offered_rps,
                "completed": p.completed,
                "rejected": p.rejected,
                "p50_ms": p.p50_ms,
                "p95_ms": p.p95_ms,
                "p99_ms": p.p99_ms,
                "throughput_rps": p.throughput_rps,
                "hit_rate": p.hit_rate,
                "mean_batch_size": p.mean_batch_size,
            })
        })
        .collect();
    serde_json::json!({
        "workload": sweep.workload,
        "capacity_rps": sweep.capacity_rps,
        "points": points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate_partitions;
    use crate::engine::ServeConfig;
    use fae_core::CalibratorConfig;
    use fae_data::{generate, GenOptions, WorkloadSpec};

    #[test]
    fn open_loop_is_deterministic_and_ordered() {
        let a = open_loop_requests(64, 1000.0, 128, 7);
        let b = open_loop_requests(64, 1000.0, 128, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for w in a.windows(2) {
            assert!(w[1].arrival_s > w[0].arrival_s, "arrivals must be strictly increasing");
        }
        assert!(a.iter().all(|r| r.input < 128));
        let c = open_loop_requests(64, 1000.0, 128, 8);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn open_loop_rate_is_roughly_honored() {
        let reqs = open_loop_requests(2000, 500.0, 16, 3);
        let span = reqs.last().unwrap().arrival_s;
        let rate = 2000.0 / span;
        assert!((rate / 500.0 - 1.0).abs() < 0.15, "empirical rate {rate} far from 500");
    }

    #[test]
    fn sweep_covers_closed_baseline_and_open_ladder() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(1, 256));
        let parts = calibrate_partitions(
            &ds,
            CalibratorConfig {
                gpu_budget_bytes: spec.embedding_bytes() / 8,
                small_table_bytes: 8 << 10,
                ..CalibratorConfig::default()
            },
        );
        let engine = ServeEngine::untrained(spec, parts, ServeConfig::default());
        let sweep = saturation_sweep(&engine, &ds, 80);
        assert_eq!(sweep.points.len(), 1 + SWEEP_FRACTIONS.len());
        assert!(sweep.capacity_rps > 0.0);
        assert_eq!(sweep.points[0].mode, "closed");
        assert!(sweep.points[1..].iter().all(|p| p.mode == "open"));
        for w in sweep.points[1..].windows(2) {
            assert!(w[1].offered_rps > w[0].offered_rps);
        }
        assert!(sweep.points.iter().all(|p| p.completed > 0));
        let json = sweep_json(&sweep);
        let text = serde_json::to_string(&json).unwrap();
        assert!(text.contains("\"points\""));
        assert!(text.contains("\"capacity_rps\""));
    }
}
