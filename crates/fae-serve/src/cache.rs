//! The frequency-aware hot-embedding cache (DESIGN.md §10.2).
//!
//! Two tiers per table:
//!
//! * a **pinned tier** seeded from the calibrator's hot partition — those
//!   rows absorbed 75–92% of training lookups (paper Fig 5) and are never
//!   evicted at serve time,
//! * a **dynamic tier** of `capacity` cold-row slots governed by windowed
//!   access counts: every cold access bumps the row's counter, and every
//!   `window` cold accesses all counters are halved (dropping zeros) so
//!   the cache tracks the *recent* popularity distribution rather than
//!   the all-time one. A missing row is admitted when a free slot exists
//!   or when its windowed count beats the coldest resident's — the
//!   TinyLFU admission rule, which is what lets the cache beat LRU under
//!   Zipf traffic (an LRU admits every scan victim; this cache refuses
//!   one-hit wonders).
//!
//! Every decision is deterministic: the eviction victim is the resident
//! with the smallest `(count, row id)` pair, so identical access streams
//! produce identical cache states on every run.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use fae_data::MiniBatch;
use fae_embed::HotColdPartition;

/// Outcome of a single row access against a [`FreqCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheAccess {
    /// The row is calibrator-pinned: always GPU-resident.
    Pinned,
    /// The row sits in the dynamic tier: GPU-resident.
    Hit,
    /// The row is not resident: fetched from the CPU master copy.
    Miss {
        /// Whether the admission policy brought the row in afterwards.
        admitted: bool,
    },
}

/// Lifetime counters of a cache (or of a whole [`ServeCache`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses answered by the pinned (calibrator-hot) tier.
    pub pinned_hits: u64,
    /// Accesses answered by the dynamic tier.
    pub hits: u64,
    /// Accesses that had to fetch from the CPU master copy.
    pub misses: u64,
    /// Misses that were admitted into the dynamic tier.
    pub admissions: u64,
    /// Residents displaced to make room for an admission.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of accesses served GPU-side (pinned + dynamic hits).
    pub fn hit_rate(&self) -> f64 {
        let total = self.pinned_hits + self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        (self.pinned_hits + self.hits) as f64 / total as f64
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.pinned_hits += other.pinned_hits;
        self.hits += other.hits;
        self.misses += other.misses;
        self.admissions += other.admissions;
        self.evictions += other.evictions;
    }
}

/// Frequency-aware cache for one embedding table: pinned hot rows plus a
/// TinyLFU-style dynamic tier (see module docs).
#[derive(Clone, Debug)]
pub struct FreqCache {
    pinned: BTreeSet<u32>,
    capacity: usize,
    resident: BTreeSet<u32>,
    // Windowed access counts, looked up by row id and aged via
    // `retain` — never iterated for output, so HashMap is safe under
    // the flow-aware det-taint rule (victim scans walk `resident`,
    // which stays ordered).
    freq: HashMap<u32, u32>,
    window: usize,
    cold_accesses: usize,
    stats: CacheStats,
}

impl FreqCache {
    /// Builds a cache whose pinned tier holds `pinned` rows and whose
    /// dynamic tier holds at most `capacity` rows, aging counts every
    /// `window` cold accesses (`window` 0 disables aging).
    pub fn new(pinned: impl IntoIterator<Item = u32>, capacity: usize, window: usize) -> Self {
        Self {
            pinned: pinned.into_iter().collect(),
            capacity,
            resident: BTreeSet::new(),
            freq: HashMap::new(),
            window,
            cold_accesses: 0,
            stats: CacheStats::default(),
        }
    }

    /// Seeds the pinned tier from a calibrator partition.
    pub fn from_partition(p: &HotColdPartition, capacity: usize, window: usize) -> Self {
        Self::new(p.hot_ids().iter().copied(), capacity, window)
    }

    /// Number of calibrator-pinned rows.
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// True when `row` is GPU-resident (pinned or dynamic).
    pub fn is_resident(&self, row: u32) -> bool {
        self.pinned.contains(&row) || self.resident.contains(&row)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Records an access to `row` and returns where it was served from.
    pub fn access(&mut self, row: u32) -> CacheAccess {
        if self.pinned.contains(&row) {
            self.stats.pinned_hits += 1;
            return CacheAccess::Pinned;
        }
        self.touch(row);
        if self.resident.contains(&row) {
            self.stats.hits += 1;
            return CacheAccess::Hit;
        }
        self.stats.misses += 1;
        let admitted = self.admit(row);
        CacheAccess::Miss { admitted }
    }

    /// Bumps the windowed count of a cold access, aging all counts when
    /// the window rolls over.
    fn touch(&mut self, row: u32) {
        *self.freq.entry(row).or_insert(0) += 1;
        self.cold_accesses += 1;
        if self.window > 0 && self.cold_accesses >= self.window {
            self.cold_accesses = 0;
            self.freq.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
    }

    /// TinyLFU admission: free slot → in; otherwise in only if the
    /// candidate's windowed count is at least the coldest resident's.
    fn admit(&mut self, row: u32) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.resident.len() < self.capacity {
            self.resident.insert(row);
            self.stats.admissions += 1;
            return true;
        }
        let Some((victim, victim_freq)) = self.coldest_resident() else {
            return false;
        };
        if self.freq.get(&row).copied().unwrap_or(0) >= victim_freq {
            self.resident.remove(&victim);
            self.resident.insert(row);
            self.stats.admissions += 1;
            self.stats.evictions += 1;
            return true;
        }
        false
    }

    /// Resident with the smallest `(count, row id)` pair, or `None` when
    /// the dynamic tier is empty.
    fn coldest_resident(&self) -> Option<(u32, u32)> {
        let mut best: Option<(u32, u32)> = None;
        for &r in &self.resident {
            let f = self.freq.get(&r).copied().unwrap_or(0);
            best = match best {
                None => Some((r, f)),
                Some((br, bf)) if (f, r) < (bf, br) => Some((r, f)),
                keep => keep,
            };
        }
        best
    }
}

/// Plain LRU cache of the same total capacity — the comparison baseline
/// for the frequency-aware policy (and the property tests' referee).
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    stamp: u64,
    resident: BTreeMap<u32, u64>,
    stats: CacheStats,
}

impl LruCache {
    /// Builds an LRU cache holding at most `capacity` rows.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, stamp: 0, resident: BTreeMap::new(), stats: CacheStats::default() }
    }

    /// Lifetime counters (only `hits`/`misses`/`admissions`/`evictions`
    /// are populated — an LRU has no pinned tier).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Records an access; LRU admits every miss, evicting the
    /// least-recently-used resident (ties broken by smallest row id).
    pub fn access(&mut self, row: u32) -> CacheAccess {
        self.stamp += 1;
        if let Some(s) = self.resident.get_mut(&row) {
            *s = self.stamp;
            self.stats.hits += 1;
            return CacheAccess::Hit;
        }
        self.stats.misses += 1;
        if self.capacity == 0 {
            return CacheAccess::Miss { admitted: false };
        }
        if self.resident.len() >= self.capacity {
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|&(&r, &s)| (s, r)) {
                self.resident.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.resident.insert(row, self.stamp);
        self.stats.admissions += 1;
        CacheAccess::Miss { admitted: true }
    }
}

/// Rows of one batch split by where their embeddings were served from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchAccess {
    /// Lookups served GPU-side (pinned tier + dynamic-tier hits).
    pub gpu_rows: usize,
    /// Lookups that fetched from the CPU master copy.
    pub cpu_rows: usize,
}

/// Per-table [`FreqCache`]s for a whole workload, seeded from the
/// calibrator's partitions.
#[derive(Clone, Debug)]
pub struct ServeCache {
    tables: Vec<FreqCache>,
}

impl ServeCache {
    /// Builds one cache per table. `cold_rows` dynamic slots are spread
    /// across tables proportionally to each table's cold-row count (every
    /// table with at least one cold row gets at least one slot).
    pub fn new(partitions: &[HotColdPartition], cold_rows: usize, window: usize) -> Self {
        let cold_counts: Vec<usize> = partitions.iter().map(|p| p.rows() - p.hot_count()).collect();
        let total_cold: usize = cold_counts.iter().sum();
        let tables = partitions
            .iter()
            .zip(&cold_counts)
            .map(|(p, &cold)| {
                let cap = if total_cold == 0 || cold == 0 {
                    0
                } else {
                    ((cold_rows * cold) / total_cold).max(1).min(cold)
                };
                FreqCache::from_partition(p, cap, window)
            })
            .collect();
        Self { tables }
    }

    /// Per-table caches (read-only).
    pub fn tables(&self) -> &[FreqCache] {
        &self.tables
    }

    /// Runs every sparse lookup of `batch` through its table's cache and
    /// returns the GPU/CPU row split the cost model charges for.
    pub fn access_batch(&mut self, batch: &MiniBatch) -> BatchAccess {
        let mut out = BatchAccess::default();
        for (t, csr) in batch.sparse.iter().enumerate() {
            let cache = &mut self.tables[t];
            for &row in &csr.indices {
                match cache.access(row) {
                    CacheAccess::Pinned | CacheAccess::Hit => out.gpu_rows += 1,
                    CacheAccess::Miss { .. } => out.cpu_rows += 1,
                }
            }
        }
        out
    }

    /// Summed lifetime counters across tables.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for t in &self.tables {
            total.merge(t.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pinned_rows_always_gpu_side() {
        let mut c = FreqCache::new([1u32, 5, 9], 2, 16);
        for _ in 0..100 {
            assert_eq!(c.access(5), CacheAccess::Pinned);
        }
        assert_eq!(c.stats().pinned_hits, 100);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn free_slots_admit_every_miss() {
        let mut c = FreqCache::new([], 2, 0);
        assert_eq!(c.access(7), CacheAccess::Miss { admitted: true });
        assert_eq!(c.access(8), CacheAccess::Miss { admitted: true });
        assert_eq!(c.access(7), CacheAccess::Hit);
        assert_eq!(c.access(8), CacheAccess::Hit);
    }

    #[test]
    fn one_hit_wonder_is_refused() {
        let mut c = FreqCache::new([], 1, 0);
        // Row 1 becomes popular; row 2 shows up once and must not displace it.
        for _ in 0..5 {
            c.access(1);
        }
        assert_eq!(c.access(2), CacheAccess::Miss { admitted: false });
        assert!(c.is_resident(1));
        assert!(!c.is_resident(2));
    }

    #[test]
    fn repeated_candidate_eventually_displaces_stale_resident() {
        let mut c = FreqCache::new([], 1, 0);
        c.access(1); // freq[1]=1, admitted
        c.access(2); // freq[2]=1 >= freq[1]=1 → displaces
        assert!(c.is_resident(2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn aging_halves_counts() {
        let mut c = FreqCache::new([], 1, 4);
        for _ in 0..3 {
            c.access(1);
        }
        // 4th cold access rolls the window: counts halve (1→3/2=1, 2→0 dropped).
        c.access(2);
        assert_eq!(c.freq.get(&1), Some(&1));
        assert_eq!(c.freq.get(&2), None);
    }

    #[test]
    fn zero_capacity_never_admits() {
        let mut c = FreqCache::new([3u32], 0, 0);
        assert_eq!(c.access(1), CacheAccess::Miss { admitted: false });
        assert_eq!(c.access(1), CacheAccess::Miss { admitted: false });
        assert_eq!(c.access(3), CacheAccess::Pinned);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // refresh 1 → victim is 2
        c.access(3);
        assert_eq!(c.access(1), CacheAccess::Hit);
        assert_eq!(c.access(2), CacheAccess::Miss { admitted: true });
    }

    #[test]
    fn serve_cache_splits_capacity_and_counts_batch_rows() {
        use fae_data::{generate, GenOptions, WorkloadSpec};
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(1, 64));
        let parts: Vec<HotColdPartition> =
            spec.tables.iter().map(|t| HotColdPartition::all_cold(t.rows)).collect();
        let mut cache = ServeCache::new(&parts, 64, 0);
        assert!(cache.tables().iter().any(|t| t.capacity > 0));
        let batch = MiniBatch::gather(&ds, &(0..8).collect::<Vec<_>>(), fae_data::BatchKind::Cold);
        let split = cache.access_batch(&batch);
        assert_eq!(split.gpu_rows + split.cpu_rows, batch.total_lookups());
        let stats = cache.stats();
        assert_eq!((stats.pinned_hits + stats.hits + stats.misses) as usize, batch.total_lookups());
    }

    /// Draws a Zipf(alpha)-distributed row id in `0..rows` from a uniform
    /// `u ∈ [0,1)` via inverse-CDF over the precomputed weights.
    fn zipf_row(cdf: &[f64], u: f64) -> u32 {
        match cdf.iter().position(|&c| u < c) {
            Some(i) => i as u32,
            None => (cdf.len() - 1) as u32,
        }
    }

    fn zipf_cdf(rows: usize, alpha: f64) -> Vec<f64> {
        let weights: Vec<f64> = (1..=rows).map(|r| (r as f64).powf(-alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    }

    proptest! {
        /// Satellite: the frequency-aware cache never evicts a
        /// calibrator-pinned hot row, whatever the access stream does.
        #[test]
        fn pinned_rows_never_evicted(
            stream in prop::collection::vec(0u32..64, 1..512),
            capacity in 0usize..8,
            window in 0usize..32,
        ) {
            let pinned = [2u32, 11, 33, 60];
            let mut c = FreqCache::new(pinned, capacity, window);
            for &row in &stream {
                c.access(row);
                for &p in &pinned {
                    prop_assert!(c.is_resident(p), "pinned row {p} left the cache");
                }
            }
            for &p in &pinned {
                prop_assert_eq!(c.access(p), CacheAccess::Pinned);
            }
        }

        /// Satellite: under Zipf(α ≥ 1.05) the frequency-aware policy's
        /// hit rate is at least a plain LRU's of equal total capacity
        /// (pinned tier + dynamic tier vs. one flat LRU arena).
        #[test]
        fn freq_cache_beats_lru_on_zipf(
            alpha in 1.05f64..1.6,
            raw in prop::collection::vec(0.0f64..1.0, 4096),
        ) {
            const ROWS: usize = 256;
            const PINNED: usize = 24;
            const DYNAMIC: usize = 8;
            let cdf = zipf_cdf(ROWS, alpha);
            let stream: Vec<u32> = raw.iter().map(|&u| zipf_row(&cdf, u)).collect();
            // Pin the top-K rows by realized frequency — what the
            // calibrator's access log would have picked.
            let mut counts = [0u64; ROWS];
            for &r in &stream {
                counts[r as usize] += 1;
            }
            let mut order: Vec<u32> = (0..ROWS as u32).collect();
            order.sort_by_key(|&r| (std::cmp::Reverse(counts[r as usize]), r));
            let mut freq = FreqCache::new(order[..PINNED].iter().copied(), DYNAMIC, 1024);
            let mut lru = LruCache::new(PINNED + DYNAMIC);
            for &r in &stream {
                freq.access(r);
                lru.access(r);
            }
            let f = freq.stats().hit_rate();
            let l = lru.stats().hit_rate();
            prop_assert!(
                f >= l,
                "freq-aware hit rate {f:.4} below LRU {l:.4} at alpha {alpha:.3}"
            );
        }
    }
}
