//! The deadline-aware dynamic micro-batcher (DESIGN.md §10.1).
//!
//! Requests accumulate into an open batch that closes on whichever comes
//! first: the batch reaching `max_batch` members, or `max_delay` seconds
//! elapsing since its first member arrived. The first rule bounds work
//! per dispatch; the second bounds the queueing delay a lone request can
//! suffer under light load — the classic dynamic-batching trade-off
//! (throughput wants big batches, tail latency wants prompt ones).
//!
//! The batcher is a pure state machine on the simulated clock: it holds
//! request indices and timestamps, never threads or timers, which is
//! what keeps the serving simulation deterministic and replayable.

/// Micro-batcher knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Close the open batch when it reaches this many requests.
    pub max_batch: usize,
    /// Close the open batch this many simulated seconds after its first
    /// request arrived, even if it is not full.
    pub max_delay_s: f64,
    /// Reject new arrivals while this many requests are queued or
    /// in flight (the bounded queue).
    pub queue_cap: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self { max_batch: 32, max_delay_s: 2e-3, queue_cap: 1024 }
    }
}

/// Why a batch closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// Reached `max_batch` members.
    Full,
    /// `max_delay` expired with the batch part-filled.
    Deadline,
    /// End of workload: the last part-filled batch was flushed.
    Drain,
}

/// A batch handed to the worker pool, with the simulated instant it
/// closed at.
#[derive(Clone, Debug)]
pub struct ClosedBatch {
    /// Simulated close time, seconds.
    pub close_s: f64,
    /// Request indices (into the workload's request list), arrival order.
    pub members: Vec<usize>,
    /// What closed it.
    pub reason: CloseReason,
}

/// The deadline-aware micro-batcher: one open batch at a time.
#[derive(Clone, Debug)]
pub struct MicroBatcher {
    cfg: BatcherConfig,
    open: Vec<usize>,
    opened_at: f64,
}

impl MicroBatcher {
    /// Creates an empty batcher.
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.max_delay_s >= 0.0, "max_delay must be non-negative");
        Self { cfg, open: Vec::new(), opened_at: 0.0 }
    }

    /// Requests currently in the open batch.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Simulated instant the open batch must close by, if one is open.
    pub fn deadline(&self) -> Option<f64> {
        if self.open.is_empty() {
            None
        } else {
            Some(self.opened_at + self.cfg.max_delay_s)
        }
    }

    /// Adds request `idx` arriving at simulated time `now`; returns the
    /// batch if this arrival filled it.
    pub fn push(&mut self, idx: usize, now: f64) -> Option<ClosedBatch> {
        if self.open.is_empty() {
            self.opened_at = now;
        }
        self.open.push(idx);
        if self.open.len() >= self.cfg.max_batch {
            return Some(ClosedBatch {
                close_s: now,
                members: std::mem::take(&mut self.open),
                reason: CloseReason::Full,
            });
        }
        None
    }

    /// Closes the part-filled open batch at `now` (deadline expiry or
    /// end-of-workload drain). Returns `None` when nothing is open.
    pub fn flush(&mut self, now: f64, reason: CloseReason) -> Option<ClosedBatch> {
        if self.open.is_empty() {
            return None;
        }
        Some(ClosedBatch { close_s: now, members: std::mem::take(&mut self.open), reason })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_batch: usize, max_delay_s: f64) -> BatcherConfig {
        BatcherConfig { max_batch, max_delay_s, queue_cap: 64 }
    }

    #[test]
    fn closes_at_max_batch() {
        let mut b = MicroBatcher::new(cfg(3, 1.0));
        assert!(b.push(0, 0.0).is_none());
        assert!(b.push(1, 0.1).is_none());
        let batch = b.push(2, 0.2).expect("third push fills the batch");
        assert_eq!(batch.members, vec![0, 1, 2]);
        assert_eq!(batch.reason, CloseReason::Full);
        assert_eq!(batch.close_s, 0.2);
        assert_eq!(b.open_len(), 0);
        assert!(b.deadline().is_none());
    }

    #[test]
    fn deadline_tracks_first_member() {
        let mut b = MicroBatcher::new(cfg(8, 0.5));
        assert!(b.deadline().is_none());
        b.push(0, 1.0);
        b.push(1, 1.3);
        // Deadline is first arrival + max_delay, not refreshed by later pushes.
        assert_eq!(b.deadline(), Some(1.5));
        let batch = b.flush(1.5, CloseReason::Deadline).unwrap();
        assert_eq!(batch.members, vec![0, 1]);
        assert_eq!(batch.reason, CloseReason::Deadline);
        // Next batch opens fresh.
        b.push(2, 9.0);
        assert_eq!(b.deadline(), Some(9.5));
    }

    #[test]
    fn flush_of_empty_batcher_is_none() {
        let mut b = MicroBatcher::new(cfg(4, 0.5));
        assert!(b.flush(1.0, CloseReason::Drain).is_none());
    }

    #[test]
    fn max_batch_one_closes_immediately() {
        let mut b = MicroBatcher::new(cfg(1, 0.5));
        let batch = b.push(7, 0.25).expect("singleton batch closes at once");
        assert_eq!(batch.members, vec![7]);
        assert_eq!(batch.reason, CloseReason::Full);
    }
}
