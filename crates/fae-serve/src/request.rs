//! Inference requests and recorded request traces.
//!
//! A request references a *dataset input index* rather than carrying raw
//! sparse features: the generator's rank→id permutation is a pure
//! function of the data seed, so requests only line up with the
//! calibrator's hot partition when trace, serving dataset and training
//! dataset all share that seed. The trace header records the seed and
//! workload so a replay against the wrong dataset fails fast instead of
//! silently measuring a cold cache.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde_json::{json, Value};

/// One inference request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InferRequest {
    /// Request id, unique within a workload.
    pub id: u64,
    /// Simulated arrival time, seconds from workload start.
    pub arrival_s: f64,
    /// Dataset input index supplying the request's features.
    pub input: usize,
}

/// The request stream a serve run executes: either generated fresh by the
/// load generator or replayed from a recorded [`RequestTrace`].
#[derive(Clone, Debug)]
pub enum ServeLoad {
    /// Open loop: arrivals at the recorded times regardless of progress.
    Open(Vec<InferRequest>),
    /// Closed loop: `clients` logical clients each issue `per_client`
    /// requests back to back, a client's next request arriving the
    /// instant its previous one completes.
    Closed {
        /// Number of concurrent clients.
        clients: usize,
        /// Requests each client issues.
        per_client: usize,
    },
}

impl ServeLoad {
    /// Total requests the load will issue.
    pub fn total_requests(&self) -> usize {
        match self {
            ServeLoad::Open(reqs) => reqs.len(),
            ServeLoad::Closed { clients, per_client } => clients * per_client,
        }
    }
}

/// A recorded request stream, persisted as JSONL with a header line.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestTrace {
    /// Workload name the trace was recorded against.
    pub workload: String,
    /// Data seed of the dataset the input indices refer to.
    pub data_seed: u64,
    /// The requests, ascending by arrival time.
    pub requests: Vec<InferRequest>,
}

/// Errors loading or validating a request trace.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structurally invalid trace file.
    Malformed(String),
    /// JSON serialization failure while writing.
    Json(serde_json::Error),
    /// Trace recorded against a different workload or data seed.
    Mismatch(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::Malformed(m) => write!(f, "malformed trace: {m}"),
            TraceError::Json(e) => write!(f, "trace serialization error: {e}"),
            TraceError::Mismatch(m) => write!(f, "trace mismatch: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

impl RequestTrace {
    /// Writes the trace: one header line, then one line per request.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        let mut w = BufWriter::new(File::create(path)?);
        let header = json!({
            "type": "serve_trace",
            "workload": self.workload,
            "data_seed": self.data_seed,
            "count": self.requests.len(),
        });
        writeln!(w, "{}", serde_json::to_string(&header)?)?;
        for r in &self.requests {
            let line = json!({"id": r.id, "arrival_s": r.arrival_s, "input": r.input});
            writeln!(w, "{}", serde_json::to_string(&line)?)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Reads a trace back, checking the header's shape.
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        let mut lines = BufReader::new(File::open(path)?).lines();
        let header: Value = match lines.next() {
            Some(line) => serde_json::from_str(&line?)
                .map_err(|e| TraceError::Malformed(format!("header: {e}")))?,
            None => return Err(TraceError::Malformed("empty file".into())),
        };
        if header.get("type").and_then(Value::as_str) != Some("serve_trace") {
            return Err(TraceError::Malformed("missing serve_trace header".into()));
        }
        let workload = header
            .get("workload")
            .and_then(Value::as_str)
            .ok_or_else(|| TraceError::Malformed("header missing workload".into()))?
            .to_string();
        let data_seed = header
            .get("data_seed")
            .and_then(Value::as_u64)
            .ok_or_else(|| TraceError::Malformed("header missing data_seed".into()))?;
        let mut requests = Vec::new();
        for (n, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(&line)
                .map_err(|e| TraceError::Malformed(format!("line {}: {e}", n + 2)))?;
            let field = |k: &str| {
                v.get(k)
                    .cloned()
                    .ok_or_else(|| TraceError::Malformed(format!("line {} missing {k}", n + 2)))
            };
            requests.push(InferRequest {
                id: field("id")?.as_u64().unwrap_or(0),
                arrival_s: field("arrival_s")?.as_f64().unwrap_or(0.0),
                input: field("input")?.as_u64().unwrap_or(0) as usize,
            });
        }
        Ok(Self { workload, data_seed, requests })
    }

    /// Fails unless the trace was recorded against the same workload and
    /// data seed as the serving dataset, and its input indices are in
    /// range — the preconditions for the pinned tier to line up.
    pub fn validate(
        &self,
        workload: &str,
        data_seed: u64,
        inputs: usize,
    ) -> Result<(), TraceError> {
        if self.workload != workload {
            return Err(TraceError::Mismatch(format!(
                "trace recorded on workload '{}', serving '{workload}'",
                self.workload
            )));
        }
        if self.data_seed != data_seed {
            return Err(TraceError::Mismatch(format!(
                "trace recorded with data seed {}, serving with {data_seed}",
                self.data_seed
            )));
        }
        if let Some(r) = self.requests.iter().find(|r| r.input >= inputs) {
            return Err(TraceError::Mismatch(format!(
                "request {} references input {} but the dataset has {inputs}",
                r.id, r.input
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> RequestTrace {
        RequestTrace {
            workload: "tiny".into(),
            data_seed: 1,
            requests: vec![
                InferRequest { id: 0, arrival_s: 0.0, input: 5 },
                InferRequest { id: 1, arrival_s: 0.0025, input: 17 },
                InferRequest { id: 2, arrival_s: 0.01, input: 5 },
            ],
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("fae-serve-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let t = trace();
        t.save(&path).unwrap();
        let back = RequestTrace::load(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_rejects_wrong_seed_and_out_of_range() {
        let t = trace();
        assert!(t.validate("tiny", 1, 100).is_ok());
        assert!(matches!(t.validate("tiny", 2, 100), Err(TraceError::Mismatch(_))));
        assert!(matches!(t.validate("kaggle", 1, 100), Err(TraceError::Mismatch(_))));
        assert!(matches!(t.validate("tiny", 1, 10), Err(TraceError::Mismatch(_))));
    }

    #[test]
    fn load_rejects_missing_header() {
        let dir = std::env::temp_dir().join(format!("fae-serve-badtrace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{\"id\":0,\"arrival_s\":0.0,\"input\":1}\n").unwrap();
        assert!(matches!(RequestTrace::load(&path), Err(TraceError::Malformed(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn closed_load_counts_requests() {
        let load = ServeLoad::Closed { clients: 4, per_client: 25 };
        assert_eq!(load.total_requests(), 100);
    }
}
