//! Loom model tests for the `Prefetcher`'s drop/hangup path.
//!
//! PR 3 claimed (but only incidentally exercised) the hangup contract:
//! dropping a `Prefetcher` whose producer is *blocked on a full bounded
//! channel* must disconnect first and join second, waking the producer
//! with a send error instead of deadlocking the consumer's drop against
//! a producer that will never finish. These models pin that ordering
//! under scheduling pressure; the loom shim's watchdog turns a
//! drop-order regression (join-before-disconnect) into a test failure
//! rather than a hung CI job.

use fae_core::pipeline::{Prefetcher, PREFETCH_DEPTH};
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::Arc;

#[test]
fn drop_while_sender_blocked_wakes_producer_and_joins() {
    loom::model(|| {
        let finished = Arc::new(AtomicBool::new(false));
        let flag = finished.clone();
        let mut pf = Prefetcher::spawn(move |tx| {
            // Unbounded intent: far more sends than the channel depth, so
            // the producer is blocked mid-send when the consumer drops.
            for i in 0..10_000u32 {
                if tx.send(i).is_err() {
                    break; // consumer hung up — the contract under test
                }
            }
            flag.store(true, Ordering::SeqCst);
        })
        .expect("spawn prefetcher");

        // Consume strictly fewer items than the producer wants to send,
        // guaranteeing it is (or will be) parked on a full channel.
        assert_eq!(pf.next(), Some(0));
        assert_eq!(pf.next(), Some(1));
        drop(pf); // must disconnect, wake the producer, then join

        // Drop joins the producer thread, so by now it must have
        // observed the hangup and run to completion.
        assert!(finished.load(Ordering::SeqCst), "producer still running after drop");
    });
}

#[test]
fn drop_without_consuming_anything_still_joins() {
    loom::model(|| {
        let pf = Prefetcher::spawn(|tx| {
            let mut i = 0u64;
            while tx.send(i).is_ok() {
                i += 1;
            }
        })
        .expect("spawn prefetcher");
        // The producer fills the channel (depth PREFETCH_DEPTH) and
        // blocks; dropping before any recv must still not deadlock.
        drop(pf);
    });
}

#[test]
fn exhausted_stream_drops_cleanly_after_producer_exit() {
    loom::model(|| {
        let mut pf = Prefetcher::spawn(|tx| {
            for i in 0..(PREFETCH_DEPTH as u32 + 2) {
                if tx.send(i).is_err() {
                    return;
                }
            }
            // Producer returns on its own; drop must join a thread that
            // is already gone without hanging or panicking.
        })
        .expect("spawn prefetcher");
        let got: Vec<u32> = pf.by_ref().collect();
        assert_eq!(got, (0..PREFETCH_DEPTH as u32 + 2).collect::<Vec<_>>());
        drop(pf);
    });
}
