//! Windowed FAE training with drift-triggered recalibration — closing the
//! loop on §II-B challenge 4.
//!
//! The paper's static pipeline calibrates once per dataset. Under
//! popularity drift that calibration decays; this engine consumes the
//! training stream in windows, watches the hot-access share of each
//! upcoming window through the [`crate::DriftMonitor`], and re-runs the
//! static pipeline (calibrate → classify → preprocess) on the window when
//! coverage has drifted. Each recalibration is charged a hot-bag
//! replication (sync) in the simulated timeline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fae_data::{Dataset, WorkloadSpec};
use fae_models::{evaluate, train_step, MasterEmbeddings, RecModel};
use fae_sysmodel::power::average_gpu_power;
use fae_sysmodel::{step_cost, sync_cost, ExecMode, SystemConfig, Timeline};

use crate::calibrator::{log_accesses, sample_inputs, CalibratorConfig};
use crate::classifier::classify_tables;
use crate::drift::{hot_access_share, DriftMonitor};
use crate::input_processor::{preprocess_inputs, PreprocessConfig, Preprocessed};
use crate::replicator::HotEmbeddings;
use crate::trainer::{AnyModel, EvalPoint, TrainConfig, TrainReport};
use fae_embed::HotColdPartition;

/// Configuration of the adaptive (recalibrating) engine.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Base trainer settings.
    pub train: TrainConfig,
    /// Calibrator settings (reused on every recalibration).
    pub calibrator: CalibratorConfig,
    /// Windows per epoch the stream is consumed in.
    pub windows_per_epoch: usize,
    /// Tolerated hot-access-share drop before recalibrating.
    pub tolerated_drop: f64,
}

/// Outcome of an adaptive run.
pub struct AdaptiveReport {
    /// The usual training report.
    pub report: TrainReport,
    /// How many times the engine recalibrated.
    pub recalibrations: usize,
    /// Hot-access share observed per window (before any recalibration).
    pub window_shares: Vec<f64>,
}

fn prepare_window(
    ds: &Dataset,
    window: &[usize],
    calibrator_cfg: &CalibratorConfig,
    pre_cfg: &PreprocessConfig,
) -> (Vec<HotColdPartition>, Preprocessed) {
    // Build a window-local dataset view by gathering the samples.
    let spec = &ds.spec;
    let sub = Dataset {
        spec: spec.clone(),
        dense: window.iter().flat_map(|&i| ds.dense_row(i).to_vec()).collect(),
        sparse: ds.sparse.iter().map(|c| c.gather(window)).collect(),
        labels: window.iter().map(|&i| ds.labels[i]).collect(),
    };
    let calibrator = crate::Calibrator::new(calibrator_cfg.clone());
    let mut rng = StdRng::seed_from_u64(calibrator.config.seed);
    let samples = sample_inputs(&sub, calibrator.config.sample_rate, &mut rng);
    let counters = log_accesses(&sub, &samples);
    let cal = calibrator.converge(&sub, &counters, &mut rng);
    let parts = classify_tables(spec, &counters, &cal);
    let pre = preprocess_inputs(&sub, parts.clone(), pre_cfg);
    (parts, pre)
}

/// Trains FAE over `train` in windows, recalibrating when the drift
/// monitor flags the upcoming window.
pub fn train_fae_adaptive(
    spec: &WorkloadSpec,
    train: &Dataset,
    test: &Dataset,
    cfg: &AdaptiveConfig,
) -> AdaptiveReport {
    assert!(cfg.windows_per_epoch >= 1, "need at least one window");
    let mut rng = StdRng::seed_from_u64(cfg.train.seed);
    let mut model = AnyModel::from_spec(spec, &mut rng);
    let mut master = MasterEmbeddings::from_spec(spec, &mut rng);
    let test_batches =
        crate::trainer::make_test_batches(test, cfg.train.minibatch_size, cfg.train.eval_batches);
    let sys = SystemConfig::paper_server(cfg.train.num_gpus);
    let pre_cfg =
        PreprocessConfig { minibatch_size: cfg.train.minibatch_size, seed: cfg.train.seed };

    let n = train.len();
    let window_len = n.div_ceil(cfg.windows_per_epoch);
    let windows: Vec<Vec<usize>> =
        (0..n).collect::<Vec<_>>().chunks(window_len).map(|c| c.to_vec()).collect();

    // Initial calibration on the first window.
    let (mut parts, mut pre) = prepare_window(train, &windows[0], &cfg.calibrator, &pre_cfg);
    let mut hot = HotEmbeddings::build(&master, parts.clone());
    let mut profile = fae_models::bridge::profile_for(spec, hot.hot_bytes() as f64);
    let baseline_share = hot_access_share(train, 0..windows[0].len(), &parts);
    let mut monitor = DriftMonitor::new(baseline_share, cfg.tolerated_drop);

    let mut timeline = Timeline::new();
    timeline.merge(&sync_cost(&sys, hot.hot_bytes() as f64));
    let (mut hot_steps, mut cold_steps, mut transitions, mut recals, mut steps) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    let mut history = Vec::new();
    let mut window_shares = Vec::new();

    for _ in 0..cfg.train.epochs {
        for (wi, window) in windows.iter().enumerate() {
            // Watch the upcoming window with the *current* partitions.
            let start = window[0];
            let share = hot_access_share(train, start..start + window.len(), &parts);
            window_shares.push(share);
            let verdict = monitor.check(train, start..start + window.len(), &parts);
            if verdict.drifted {
                // Write trained hot rows back, re-run the static pipeline
                // on this window, re-replicate.
                hot.write_back(&mut master);
                let (new_parts, new_pre) = prepare_window(train, window, &cfg.calibrator, &pre_cfg);
                parts = new_parts;
                pre = new_pre;
                hot = HotEmbeddings::build(&master, parts.clone());
                profile = fae_models::bridge::profile_for(spec, hot.hot_bytes() as f64);
                timeline.merge(&sync_cost(&sys, hot.hot_bytes() as f64));
                let new_baseline = hot_access_share(train, start..start + window.len(), &parts);
                monitor = DriftMonitor::new(new_baseline, cfg.tolerated_drop);
                recals += 1;
            } else if wi > 0 {
                // Windows after the first reuse the standing partitions;
                // re-pack this window's inputs against them.
                let sub_parts = parts.clone();
                pre = {
                    let sub = Dataset {
                        spec: spec.clone(),
                        dense: window.iter().flat_map(|&i| ds_row(train, i)).collect(),
                        sparse: train.sparse.iter().map(|c| c.gather(window)).collect(),
                        labels: window.iter().map(|&i| train.labels[i]).collect(),
                    };
                    preprocess_inputs(&sub, sub_parts, &pre_cfg)
                };
            }

            // Cold block then hot block over the window's batches.
            for mb in &pre.cold_batches {
                train_step(&mut model, &mut master, mb, cfg.train.lr);
                timeline.merge(&step_cost(&profile, &sys, ExecMode::BaselineHybrid, mb.len()));
                cold_steps += 1;
                steps += 1;
            }
            if !pre.hot_batches.is_empty() {
                hot.refresh_from(&master);
                timeline.merge(&sync_cost(&sys, hot.hot_bytes() as f64));
                transitions += 1;
                for mb in &pre.hot_batches {
                    train_step(&mut model, &mut hot, mb, cfg.train.lr);
                    timeline.merge(&step_cost(&profile, &sys, ExecMode::FaeHotGpu, mb.len()));
                    hot_steps += 1;
                    steps += 1;
                }
                hot.write_back(&mut master);
                timeline.merge(&sync_cost(&sys, hot.hot_bytes() as f64));
                transitions += 1;
            }
            let e = evaluate(&mut model, &master, &test_batches);
            history.push(EvalPoint {
                iteration: steps,
                test_loss: e.loss,
                test_accuracy: e.accuracy,
                rate: None,
                hot_steps,
                cold_steps,
                sim_seconds: timeline.total(),
            });
        }
    }

    let final_test = evaluate(&mut model, &master, &test_batches);
    let train_batches =
        crate::trainer::make_test_batches(train, cfg.train.minibatch_size, cfg.train.eval_batches);
    let final_train = evaluate(&mut model, &master, &train_batches);
    let mut final_dense = Vec::new();
    model.write_params(&mut final_dense);
    let digest = crate::checkpoint::model_digest(
        &final_dense,
        &crate::checkpoint::TrainCheckpoint::snapshot_master(&master),
    );
    AdaptiveReport {
        report: TrainReport {
            history,
            final_test,
            final_train,
            simulated_seconds: timeline.total(),
            avg_gpu_power_w: average_gpu_power(&timeline),
            timeline,
            hot_steps,
            cold_steps,
            transitions,
            final_rate: None,
            faults: Vec::new(),
            recoveries: Vec::new(),
            interrupted: false,
            model_digest: digest,
            oracle: Default::default(),
            skip: Default::default(),
        },
        recalibrations: recals,
        window_shares,
    }
}

fn ds_row(ds: &Dataset, i: usize) -> Vec<f32> {
    ds.dense_row(i).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::{generate, GenOptions};

    fn adaptive_cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            train: TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() },
            calibrator: CalibratorConfig {
                gpu_budget_bytes: 40 << 10,
                small_table_bytes: 2 << 10,
                sample_rate: 0.5,
                ..Default::default()
            },
            windows_per_epoch: 8,
            tolerated_drop: 0.08,
        }
    }

    #[test]
    fn static_stream_never_recalibrates() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(51, 16_000));
        let (train, test) = ds.split(0.2);
        let r = train_fae_adaptive(&spec, &train, &test, &adaptive_cfg());
        assert_eq!(r.recalibrations, 0, "shares: {:?}", r.window_shares);
        assert!(r.report.hot_steps > 0);
        assert!(r.report.final_test.accuracy > 0.5);
    }

    #[test]
    fn drifting_stream_recalibrates_and_keeps_hot_coverage() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(53, 16_000).with_drift(1.0));
        let (train, test) = ds.split(0.2);
        let r = train_fae_adaptive(&spec, &train, &test, &adaptive_cfg());
        assert!(r.recalibrations >= 1, "no recalibration under drift: {:?}", r.window_shares);
        // Hot execution survives across the drifted stream.
        assert!(
            r.report.hot_steps > r.report.cold_steps,
            "hot steps {} vs cold {}",
            r.report.hot_steps,
            r.report.cold_steps
        );
        assert!(r.report.final_test.accuracy > 0.5);
    }
}
