//! Persistence of the static-phase artifacts.
//!
//! §III-B stores the preprocessed mini-batch stream "in the FAE format for
//! any subsequent training runs"; a later run also needs the calibration
//! decision and the hot/cold partitions (to rebuild the hot bags and to
//! route lookups). This module bundles all three: the mini-batch stream
//! goes into the FAE binary container, and the calibration + partitions
//! go into a JSON sidecar next to it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use fae_data::format::FormatError;
use fae_data::BatchKind;
use fae_embed::HotColdPartition;
use fae_telemetry::{JournalEvent, Telemetry};

use crate::calibrator::CalibrationResult;
use crate::faults::{retry_with_backoff, FaultInjector, FaultKind, RecoveryAction, RetryPolicy};
use crate::input_processor::Preprocessed;
use crate::pipeline::{prefetch_fae_blocks, StaticArtifacts};

/// JSON sidecar: everything except the (large, binary) batch stream.
#[derive(Serialize, Deserialize)]
struct Sidecar {
    calibration: CalibrationResult,
    partitions: Vec<HotColdPartition>,
    hot_input_fraction: f64,
}

/// Errors while saving/loading artifacts.
#[derive(Debug)]
pub enum ArtifactError {
    /// FAE-container codec failure.
    Format(FormatError),
    /// Sidecar JSON failure.
    Json(serde_json::Error),
    /// Filesystem failure.
    Io(io::Error),
    /// The artifact set was present when the load began, but this piece
    /// of it was gone by the time it was read — something outside this
    /// process is deleting files mid-load. Unlike a missing or corrupt
    /// set, this is not rebuilt over: a rebuild would immediately race
    /// the same deleter, and silently papering over an external actor
    /// removing files hides a real operational problem.
    Vanished(PathBuf),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Format(e) => write!(f, "fae container: {e}"),
            ArtifactError::Json(e) => write!(f, "sidecar json: {e}"),
            ArtifactError::Io(e) => write!(f, "io: {e}"),
            ArtifactError::Vanished(p) => {
                write!(f, "artifact {} vanished mid-load", p.display())
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<FormatError> for ArtifactError {
    fn from(e: FormatError) -> Self {
        ArtifactError::Format(e)
    }
}
impl From<serde_json::Error> for ArtifactError {
    fn from(e: serde_json::Error) -> Self {
        ArtifactError::Json(e)
    }
}
impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

fn sidecar_path(stream: &Path) -> PathBuf {
    let mut p = stream.as_os_str().to_owned();
    p.push(".meta.json");
    PathBuf::from(p)
}

/// Writes `bytes` to `path` atomically: a sibling temp file in the same
/// directory (same filesystem, so the rename cannot cross devices) is
/// written in full, then renamed over the target. A crash mid-write
/// leaves the old file intact; readers never see a torn file.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Saves the static artifacts: `<path>` gets the FAE batch stream,
/// `<path>.meta.json` the calibration + partitions.
///
/// Both files are written atomically (temp + rename), so a crash never
/// leaves a half-written stream or sidecar. The stream lands first: the
/// remaining hazard is a crash between the two renames, which leaves a
/// new stream beside an old sidecar — [`load`] then fails on the
/// partition/stream mismatch rather than silently mixing generations.
pub fn save(artifacts: &StaticArtifacts, workload: &str, path: &Path) -> Result<(), ArtifactError> {
    let stream = artifacts.preprocessed.to_fae_file(workload).encode();
    write_atomic(path, &stream)?;
    let sidecar = Sidecar {
        calibration: artifacts.calibration.clone(),
        partitions: artifacts.preprocessed.partitions.clone(),
        hot_input_fraction: artifacts.preprocessed.hot_input_fraction,
    };
    write_atomic(&sidecar_path(path), &serde_json::to_vec_pretty(&sidecar)?)?;
    Ok(())
}

/// Loads artifacts saved by [`save`], returning them plus the workload
/// name recorded in the container.
///
/// The batch stream decodes on a background thread (see
/// [`Prefetcher`](crate::pipeline::Prefetcher)): while the decoder runs
/// ahead, this thread parses the JSON sidecar and sorts arriving batches
/// into the hot and cold streams.
pub fn load(path: &Path) -> Result<(StaticArtifacts, String), ArtifactError> {
    let (workload, blocks) = prefetch_fae_blocks(fs::read(path)?)?;
    // The stream was just read successfully, so the set existed; a
    // sidecar that is NotFound *now* vanished underneath us.
    let sidecar_bytes = match fs::read(sidecar_path(path)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(ArtifactError::Vanished(sidecar_path(path)));
        }
        Err(e) => return Err(e.into()),
    };
    let sidecar: Sidecar = serde_json::from_slice(&sidecar_bytes)?;
    let (mut hot, mut cold) = (Vec::new(), Vec::new());
    for block in blocks {
        let b = block?;
        if b.kind == BatchKind::Hot {
            hot.push(b)
        } else {
            cold.push(b)
        }
    }
    Ok((
        StaticArtifacts {
            calibration: sidecar.calibration,
            preprocessed: Preprocessed {
                hot_batches: hot,
                cold_batches: cold,
                hot_input_fraction: sidecar.hot_input_fraction,
                partitions: sidecar.partitions,
            },
        },
        workload,
    ))
}

/// Loads the artifacts at `path`, riding out transient I/O faults with
/// bounded-backoff retries; if the stream is unusable (missing, torn,
/// corrupt — anything [`load`] rejects), rebuilds the static artifacts
/// from scratch via `rebuild`, persists them, and returns the rebuilt
/// set. Injected [`FaultKind::ArtifactCorruption`] damages the file *on
/// disk* first, so recovery is exercised through the real decode path.
///
/// Returns the artifacts, the workload name, and the recovery actions
/// taken (empty on the clean path). Errs only when even the rebuilt
/// artifacts cannot be persisted.
pub fn load_or_rebuild(
    path: &Path,
    workload: &str,
    injector: &mut FaultInjector,
    retry: &RetryPolicy,
    rebuild: impl FnOnce() -> StaticArtifacts,
) -> Result<(StaticArtifacts, String, Vec<RecoveryAction>), ArtifactError> {
    load_or_rebuild_with(path, workload, injector, retry, rebuild, &Telemetry::disabled())
}

/// [`load_or_rebuild`] with a telemetry handle: loads, retries and
/// rebuilds are counted (`artifacts.loads` / `artifacts.io_retries` /
/// `artifacts.rebuilds`) and a rebuild emits a `recovery` journal event
/// carrying the load error that forced it.
pub fn load_or_rebuild_with(
    path: &Path,
    workload: &str,
    injector: &mut FaultInjector,
    retry: &RetryPolicy,
    rebuild: impl FnOnce() -> StaticArtifacts,
    telemetry: &Telemetry,
) -> Result<(StaticArtifacts, String, Vec<RecoveryAction>), ArtifactError> {
    let _span = telemetry.span("artifacts/load_or_rebuild");
    telemetry.counter_add("artifacts.loads", 1);
    let mut recoveries = Vec::new();
    if let Some(f) = injector.fire(FaultKind::ArtifactCorruption, 0) {
        if let Ok(mut bytes) = fs::read(path) {
            if !bytes.is_empty() {
                // A torn write: the file is cut mid-stream and the byte at
                // the tear is damaged. (A flip in the body alone might
                // land in batch payload the codec cannot distinguish from
                // data; the tear guarantees the decode path exercises its
                // error handling.)
                let keep = 1 + injector.variation(&f, bytes.len() as u64) as usize / 2;
                bytes.truncate(keep);
                bytes[keep - 1] ^= 0xFF;
                fs::write(path, &bytes)?;
            }
        }
    }
    // Injected transient failures always clear within the retry budget
    // (at most max_attempts − 1 of them), so an Err from the retry loop
    // is a real load failure.
    let io_failures = injector
        .fire(FaultKind::TransientIo, 0)
        .map(|f| 1 + injector.variation(&f, (retry.max_attempts - 1) as u64) as u32)
        .unwrap_or(0);
    match retry_with_backoff(retry, |attempt| {
        if attempt <= io_failures {
            Err(ArtifactError::Io(io::Error::other("injected transient i/o failure")))
        } else {
            load(path)
        }
    }) {
        Ok(r) => {
            if r.attempts > 1 {
                recoveries
                    .push(RecoveryAction::RetriedIo { attempts: r.attempts, waited_s: r.waited_s });
                if telemetry.enabled() {
                    telemetry.counter_add("artifacts.io_retries", (r.attempts - 1) as u64);
                    telemetry.emit(&JournalEvent::Recovery {
                        step: 0,
                        action: "retried-io".into(),
                        detail: format!(
                            "{} attempts, {:.3}s backoff loading {}",
                            r.attempts,
                            r.waited_s,
                            path.display()
                        ),
                    });
                }
            }
            let (artifacts, name) = r.value;
            Ok((artifacts, name, recoveries))
        }
        // A file vanishing mid-read is an external deletion in progress,
        // not a bad artifact set: surface it instead of racing the
        // deleter with a rebuild.
        Err((err @ ArtifactError::Vanished(_), _, _)) => Err(err),
        Err((err, _, _)) => {
            let reason = err.to_string();
            eprintln!(
                "fae: artifacts at {} unusable ({reason}); rebuilding static artifacts",
                path.display()
            );
            if telemetry.enabled() {
                telemetry.counter_add("artifacts.rebuilds", 1);
                telemetry.emit(&JournalEvent::Recovery {
                    step: 0,
                    action: "rebuilt-artifacts".into(),
                    detail: reason,
                });
            }
            let artifacts = rebuild();
            save(&artifacts, workload, path)?;
            recoveries.push(RecoveryAction::RebuiltArtifacts);
            Ok((artifacts, workload.to_string(), recoveries))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::input_processor::PreprocessConfig;
    use crate::pipeline::prepare;
    use crate::CalibratorConfig;
    use fae_data::{generate, GenOptions, WorkloadSpec};

    fn artifacts() -> StaticArtifacts {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(3, 4_000));
        prepare(
            &ds,
            CalibratorConfig {
                gpu_budget_bytes: 40 << 10,
                small_table_bytes: 2 << 10,
                ..Default::default()
            },
            &PreprocessConfig { minibatch_size: 64, seed: 1 },
        )
    }

    #[test]
    fn save_load_round_trip() {
        let a = artifacts();
        let dir = std::env::temp_dir().join("fae-artifacts-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.fae");
        save(&a, "tiny-test", &path).expect("save");
        let (b, workload) = load(&path).expect("load");
        fs::remove_file(&path).ok();
        fs::remove_file(sidecar_path(&path)).ok();
        assert_eq!(workload, "tiny-test");
        assert_eq!(b.calibration.threshold, a.calibration.threshold);
        assert_eq!(b.preprocessed.hot_batches.len(), a.preprocessed.hot_batches.len());
        assert_eq!(b.preprocessed.cold_batches.len(), a.preprocessed.cold_batches.len());
        assert_eq!(b.preprocessed.partitions.len(), a.preprocessed.partitions.len());
        for (pa, pb) in a.preprocessed.partitions.iter().zip(&b.preprocessed.partitions) {
            assert_eq!(pa.hot_ids(), pb.hot_ids());
        }
    }

    #[test]
    fn save_leaves_no_temp_residue() {
        let a = artifacts();
        let dir = std::env::temp_dir().join("fae-artifacts-atomic");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.fae");
        save(&a, "tiny-test", &path).expect("save");
        let residue: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(residue.is_empty(), "temp files left behind: {residue:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_rebuild_recovers_from_injected_corruption() {
        let a = artifacts();
        let dir = std::env::temp_dir().join("fae-artifacts-rebuild");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.fae");
        save(&a, "tiny-test", &path).expect("save");

        let retry = RetryPolicy::default();
        let mut injector = FaultInjector::new(FaultPlan::parse("artifact-corruption@0").unwrap());
        let (b, name, recs) =
            load_or_rebuild(&path, "tiny-test", &mut injector, &retry, || a.clone())
                .expect("recovery");
        assert_eq!(name, "tiny-test");
        assert_eq!(recs, vec![RecoveryAction::RebuiltArtifacts]);
        assert_eq!(b.preprocessed.hot_batches.len(), a.preprocessed.hot_batches.len());

        // The rebuilt artifacts were persisted: a clean injector loads
        // them with no recovery actions.
        let mut clean = FaultInjector::none();
        let (_, name2, recs2) =
            load_or_rebuild(&path, "tiny-test", &mut clean, &retry, || panic!("must not rebuild"))
                .expect("clean load");
        assert_eq!(name2, "tiny-test");
        assert!(recs2.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_rebuild_retries_transient_io_and_reports_it() {
        let a = artifacts();
        let dir = std::env::temp_dir().join("fae-artifacts-transient");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.fae");
        save(&a, "tiny-test", &path).expect("save");

        let retry = RetryPolicy::default();
        let mut injector = FaultInjector::new(FaultPlan::parse("transient-io@0").unwrap());
        let (_, name, recs) = load_or_rebuild(&path, "tiny-test", &mut injector, &retry, || {
            panic!("must not rebuild")
        })
        .expect("load after retries");
        assert_eq!(name, "tiny-test");
        assert_eq!(recs.len(), 1);
        match recs[0] {
            RecoveryAction::RetriedIo { attempts, waited_s } => {
                assert!(attempts > 1);
                assert!(waited_s > 0.0);
            }
            ref other => panic!("expected RetriedIo, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_sidecar_is_an_error_not_a_panic() {
        let a = artifacts();
        let dir = std::env::temp_dir().join("fae-artifacts-test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("orphan.fae");
        a.preprocessed.to_fae_file("x").write_file(&path).unwrap();
        let r = load(&path);
        fs::remove_file(&path).ok();
        match r {
            Err(ArtifactError::Vanished(p)) => assert_eq!(p, sidecar_path(&path)),
            Err(other) => panic!("expected Vanished, got {other:?}"),
            Ok(_) => panic!("expected Vanished, got a successful load"),
        }
    }

    #[test]
    fn vanished_sidecar_is_surfaced_not_rebuilt_over() {
        let a = artifacts();
        let dir = std::env::temp_dir().join("fae-artifacts-vanish");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.fae");
        save(&a, "tiny-test", &path).expect("save");
        // An external actor deletes the sidecar between our reads.
        fs::remove_file(sidecar_path(&path)).unwrap();

        let retry = RetryPolicy::default();
        let mut injector = FaultInjector::none();
        let r = load_or_rebuild(&path, "tiny-test", &mut injector, &retry, || {
            panic!("must not rebuild over a vanishing file")
        });
        match r {
            Err(ArtifactError::Vanished(_)) => {}
            Err(other) => panic!("expected Vanished, got {other:?}"),
            Ok(_) => panic!("expected a typed mid-read-deletion error, got a rebuild"),
        }
        fs::remove_dir_all(&dir).ok();
    }
}
