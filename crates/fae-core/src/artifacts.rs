//! Persistence of the static-phase artifacts.
//!
//! §III-B stores the preprocessed mini-batch stream "in the FAE format for
//! any subsequent training runs"; a later run also needs the calibration
//! decision and the hot/cold partitions (to rebuild the hot bags and to
//! route lookups). This module bundles all three: the mini-batch stream
//! goes into the FAE binary container, and the calibration + partitions
//! go into a JSON sidecar next to it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use fae_data::format::{FaeFile, FormatError};
use fae_data::BatchKind;
use fae_embed::HotColdPartition;

use crate::calibrator::CalibrationResult;
use crate::input_processor::Preprocessed;
use crate::pipeline::StaticArtifacts;

/// JSON sidecar: everything except the (large, binary) batch stream.
#[derive(Serialize, Deserialize)]
struct Sidecar {
    calibration: CalibrationResult,
    partitions: Vec<HotColdPartition>,
    hot_input_fraction: f64,
}

/// Errors while saving/loading artifacts.
#[derive(Debug)]
pub enum ArtifactError {
    /// FAE-container codec failure.
    Format(FormatError),
    /// Sidecar JSON failure.
    Json(serde_json::Error),
    /// Filesystem failure.
    Io(io::Error),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Format(e) => write!(f, "fae container: {e}"),
            ArtifactError::Json(e) => write!(f, "sidecar json: {e}"),
            ArtifactError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<FormatError> for ArtifactError {
    fn from(e: FormatError) -> Self {
        ArtifactError::Format(e)
    }
}
impl From<serde_json::Error> for ArtifactError {
    fn from(e: serde_json::Error) -> Self {
        ArtifactError::Json(e)
    }
}
impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

fn sidecar_path(stream: &Path) -> PathBuf {
    let mut p = stream.as_os_str().to_owned();
    p.push(".meta.json");
    PathBuf::from(p)
}

/// Saves the static artifacts: `<path>` gets the FAE batch stream,
/// `<path>.meta.json` the calibration + partitions.
pub fn save(artifacts: &StaticArtifacts, workload: &str, path: &Path) -> Result<(), ArtifactError> {
    artifacts.preprocessed.to_fae_file(workload).write_file(path)?;
    let sidecar = Sidecar {
        calibration: artifacts.calibration.clone(),
        partitions: artifacts.preprocessed.partitions.clone(),
        hot_input_fraction: artifacts.preprocessed.hot_input_fraction,
    };
    fs::write(sidecar_path(path), serde_json::to_vec_pretty(&sidecar)?)?;
    Ok(())
}

/// Loads artifacts saved by [`save`], returning them plus the workload
/// name recorded in the container.
pub fn load(path: &Path) -> Result<(StaticArtifacts, String), ArtifactError> {
    let file = FaeFile::read_file(path)?;
    let sidecar: Sidecar = serde_json::from_slice(&fs::read(sidecar_path(path))?)?;
    let (hot, cold): (Vec<_>, Vec<_>) =
        file.batches.into_iter().partition(|b| b.kind == BatchKind::Hot);
    Ok((
        StaticArtifacts {
            calibration: sidecar.calibration,
            preprocessed: Preprocessed {
                hot_batches: hot,
                cold_batches: cold,
                hot_input_fraction: sidecar.hot_input_fraction,
                partitions: sidecar.partitions,
            },
        },
        file.workload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_processor::PreprocessConfig;
    use crate::pipeline::prepare;
    use crate::CalibratorConfig;
    use fae_data::{generate, GenOptions, WorkloadSpec};

    fn artifacts() -> StaticArtifacts {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(3, 4_000));
        prepare(
            &ds,
            CalibratorConfig {
                gpu_budget_bytes: 40 << 10,
                small_table_bytes: 2 << 10,
                ..Default::default()
            },
            &PreprocessConfig { minibatch_size: 64, seed: 1 },
        )
    }

    #[test]
    fn save_load_round_trip() {
        let a = artifacts();
        let dir = std::env::temp_dir().join("fae-artifacts-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.fae");
        save(&a, "tiny-test", &path).expect("save");
        let (b, workload) = load(&path).expect("load");
        fs::remove_file(&path).ok();
        fs::remove_file(sidecar_path(&path)).ok();
        assert_eq!(workload, "tiny-test");
        assert_eq!(b.calibration.threshold, a.calibration.threshold);
        assert_eq!(b.preprocessed.hot_batches.len(), a.preprocessed.hot_batches.len());
        assert_eq!(b.preprocessed.cold_batches.len(), a.preprocessed.cold_batches.len());
        assert_eq!(b.preprocessed.partitions.len(), a.preprocessed.partitions.len());
        for (pa, pb) in a.preprocessed.partitions.iter().zip(&b.preprocessed.partitions) {
            assert_eq!(pa.hot_ids(), pb.hot_ids());
        }
    }

    #[test]
    fn missing_sidecar_is_an_error_not_a_panic() {
        let a = artifacts();
        let dir = std::env::temp_dir().join("fae-artifacts-test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("orphan.fae");
        a.preprocessed.to_fae_file("x").write_file(&path).unwrap();
        let r = load(&path);
        fs::remove_file(&path).ok();
        assert!(matches!(r, Err(ArtifactError::Io(_))));
    }
}
