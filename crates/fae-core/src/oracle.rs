//! Oracle lookahead cache over the known mini-batch stream.
//!
//! FAE's premise — popularity is known before training starts — extends
//! to *exact* future knowledge: the preprocessed mini-batch stream and
//! every epoch's shuffle order are fixed up front (the order comes from
//! a seed derived per epoch), so the trainer can look ahead and compute
//! the *true* next-K-batch access set per embedding table. BagPipe
//! (arXiv 2202.12429) builds its cache around exactly this oracle.
//!
//! The trainer uses the oracle to replace the full-bag hot syncs with
//! exact partial transfers:
//!
//! * at a cold→hot transition it prefetches only the rows the next
//!   `min(K, block)` hot batches will read (instead of the whole bag),
//! * while the hot block runs, the window slides: the access set
//!   entering the window is prefetched K−1 steps before it executes, so
//!   the transfer overlaps training compute (only the non-hidden excess
//!   is charged to the timeline),
//! * rows resident from the previous block but absent from the new plan
//!   are evicted (free — eviction drops residency, it moves no bytes),
//! * at the hot→cold transition only *resident* rows are written back.
//!
//! Because the master tables are frozen during a hot block (cold steps
//! and hot steps never interleave within a block), a row fetched
//! mid-block reads exactly the bytes a full refresh would have copied at
//! the block start — the oracle changes *transfer* costs only, never
//! numerics. `--lookahead K` for any K produces the same model digest as
//! `--lookahead 0`; the trainer's tests enforce this.
//!
//! [`plan_decisions`] is the pure planner underneath: decision *i*
//! depends only on access sets `[0, i+K)`, so decisions already emitted
//! never change when the stream is extended — the prefix-stability
//! property the proptests pin down.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use fae_data::MiniBatch;

use crate::pipeline::Prefetcher;

/// The unique rows one mini-batch reads, per table, sorted ascending.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessSet {
    /// Per table: sorted, deduplicated global row ids.
    pub per_table: Vec<Vec<u32>>,
}

impl AccessSet {
    /// Extracts the access set of one mini-batch.
    pub fn of(batch: &MiniBatch) -> Self {
        let per_table = batch
            .sparse
            .iter()
            .map(|csr| {
                let mut rows = csr.indices.clone();
                rows.sort_unstable();
                rows.dedup();
                rows
            })
            .collect();
        Self { per_table }
    }

    /// Total unique rows across tables.
    pub fn rows(&self) -> usize {
        self.per_table.iter().map(Vec::len).sum()
    }
}

/// One emitted oracle decision: the rows to prefetch into the hot cache
/// immediately before executing the step at the same stream position.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepDecision {
    /// Per table: rows fetched before this step runs (sorted ascending).
    pub prefetch: Vec<Vec<u32>>,
}

/// The pure lookahead planner. With window `K ≥ 1` over the access-set
/// stream, decision 0 prefetches the union of sets `[0, K)`; decision
/// `i > 0` prefetches whatever `sets[i+K-1]` adds beyond the rows already
/// resident. Residency only grows (eviction happens at block boundaries,
/// outside this planner), so decision `i` is a function of `sets[0..i+K]`
/// alone — extending the stream never changes decisions already emitted.
pub fn plan_decisions(sets: &[AccessSet], window: usize) -> Vec<StepDecision> {
    assert!(window >= 1, "a zero window means the oracle is disabled");
    let Some(first) = sets.first() else { return Vec::new() };
    let tables = first.per_table.len();
    let mut resident: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); tables];
    let mut out = Vec::with_capacity(sets.len());
    for i in 0..sets.len() {
        let mut prefetch = vec![Vec::new(); tables];
        // The sets that must be resident before step i runs: the whole
        // first window at i == 0, the set entering the window after.
        let incoming: &[AccessSet] = if i == 0 {
            &sets[..window.min(sets.len())]
        } else if i + window - 1 < sets.len() {
            &sets[i + window - 1..i + window]
        } else {
            &[]
        };
        for set in incoming {
            for (t, rows) in set.per_table.iter().enumerate() {
                for &r in rows {
                    if resident[t].insert(r) {
                        prefetch[t].push(r);
                    }
                }
            }
        }
        for rows in &mut prefetch {
            rows.sort_unstable();
        }
        out.push(StepDecision { prefetch });
    }
    out
}

/// The streaming oracle the trainer consumes: per-position access sets
/// of the epoch's hot stream, computed on a background thread through
/// the double-buffered [`Prefetcher`] and buffered up to the lookahead
/// window on the consumer side.
pub struct LookaheadOracle {
    window: usize,
    buf: VecDeque<AccessSet>,
    feed: Prefetcher<AccessSet>,
}

impl LookaheadOracle {
    /// Spawns the access-set producer over `batches` in `order` (the
    /// epoch's shuffled hot-batch order). `window` is the lookahead K in
    /// batches and must be ≥ 1 — a window of 0 means "no oracle" and is
    /// handled by the caller, not here.
    pub fn spawn(
        batches: Arc<Vec<MiniBatch>>,
        order: Vec<usize>,
        window: usize,
    ) -> std::io::Result<Self> {
        assert!(window >= 1, "a zero window means the oracle is disabled");
        let feed = Prefetcher::spawn(move |tx| {
            for &b in &order {
                if tx.send(AccessSet::of(&batches[b])).is_err() {
                    return; // consumer hung up
                }
            }
        })?;
        Ok(Self { window, buf: VecDeque::new(), feed })
    }

    /// The lookahead window size K.
    pub fn window(&self) -> usize {
        self.window
    }

    fn fill(&mut self, n: usize) {
        while self.buf.len() < n {
            match self.feed.next() {
                Some(s) => self.buf.push_back(s),
                None => break,
            }
        }
    }

    /// The block-start prefetch plan: per-table union of the access sets
    /// of the next `min(K, limit)` steps (`limit` = batches left in the
    /// block about to run).
    pub fn block_plan(&mut self, limit: usize, num_tables: usize) -> Vec<Vec<u32>> {
        let n = self.window.min(limit);
        self.fill(n);
        let mut union: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); num_tables];
        for set in self.buf.iter().take(n) {
            for (t, rows) in set.per_table.iter().enumerate() {
                union[t].extend(rows.iter().copied());
            }
        }
        union.into_iter().map(|s| s.into_iter().collect()).collect()
    }

    /// The access set `offset` steps ahead of the step about to execute
    /// (0 = that step itself). `None` once the epoch stream is exhausted.
    pub fn peek(&mut self, offset: usize) -> Option<&AccessSet> {
        self.fill(offset + 1);
        self.buf.get(offset)
    }

    /// Consumes the access set of the step about to execute.
    pub fn advance(&mut self) -> Option<AccessSet> {
        self.fill(1);
        self.buf.pop_front()
    }

    /// Skips `n` positions — the resume path, where the hot cursor starts
    /// mid-epoch.
    pub fn skip(&mut self, n: usize) {
        for _ in 0..n {
            if self.advance().is_none() {
                break;
            }
        }
    }
}

/// Lifetime counters of one oracle run (exported as `oracle.*` telemetry
/// counters and into the `TrainReport`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Rows copied CPU→GPU by block-start plans and window slides.
    pub prefetched_rows: u64,
    /// Resident rows dropped at a refresh because the new plan no longer
    /// needs them.
    pub evicted_rows: u64,
    /// Row reads served by resident rows (unique rows per step).
    pub hits: u64,
    /// Row reads that demand-fetched — with an exact oracle this stays 0
    /// and is kept as a self-check.
    pub misses: u64,
    /// Bytes actually moved across PCIe by oracle-driven syncs.
    pub moved_bytes: u64,
    /// Bytes the full-bag syncs would have moved instead.
    pub full_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::{generate, BatchKind, GenOptions, WorkloadSpec};

    fn sets(rows: &[&[u32]]) -> Vec<AccessSet> {
        rows.iter().map(|r| AccessSet { per_table: vec![r.to_vec()] }).collect()
    }

    #[test]
    fn first_decision_prefetches_the_whole_window() {
        let s = sets(&[&[1, 2], &[2, 3], &[4]]);
        let d = plan_decisions(&s, 2);
        assert_eq!(d[0].prefetch, vec![vec![1, 2, 3]]);
        // Step 1 pulls in set 2; 2 and 3 are already resident.
        assert_eq!(d[1].prefetch, vec![vec![4]]);
        // Nothing left beyond the stream.
        assert_eq!(d[2].prefetch, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn window_larger_than_stream_prefetches_everything_up_front() {
        let s = sets(&[&[1], &[2], &[3]]);
        let d = plan_decisions(&s, 10);
        assert_eq!(d[0].prefetch, vec![vec![1, 2, 3]]);
        assert!(d[1].prefetch[0].is_empty() && d[2].prefetch[0].is_empty());
    }

    #[test]
    fn decisions_are_prefix_stable_on_a_fixed_case() {
        let full = sets(&[&[1, 5], &[2], &[5, 9], &[3], &[9]]);
        let short = &full[..3];
        let window = 2;
        let d_full = plan_decisions(&full, window);
        let d_short = plan_decisions(short, window);
        for i in 0..=(short.len() - window) {
            assert_eq!(d_full[i], d_short[i], "decision {i} changed when the stream grew");
        }
    }

    #[test]
    fn access_set_dedups_and_sorts() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(3, 200));
        let mb = MiniBatch::gather(&ds, &(0..64).collect::<Vec<_>>(), BatchKind::Unclassified);
        let set = AccessSet::of(&mb);
        assert_eq!(set.per_table.len(), mb.sparse.len());
        for rows in &set.per_table {
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
        }
        assert!(set.rows() > 0);
    }

    #[test]
    fn streaming_oracle_matches_the_pure_planner_unions() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(9, 1_000));
        let batches: Vec<MiniBatch> = (0..ds.len())
            .collect::<Vec<_>>()
            .chunks(64)
            .map(|c| MiniBatch::gather(&ds, c, BatchKind::Hot))
            .collect();
        let order: Vec<usize> = (0..batches.len()).rev().collect();
        let eager: Vec<AccessSet> = order.iter().map(|&b| AccessSet::of(&batches[b])).collect();
        let tables = batches[0].sparse.len();

        let mut oracle = LookaheadOracle::spawn(Arc::new(batches), order, 3).expect("spawn oracle");
        // Block plan == union of the first 3 sets.
        let plan = oracle.block_plan(usize::MAX, tables);
        let mut want: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); tables];
        for s in &eager[..3] {
            for (t, rows) in s.per_table.iter().enumerate() {
                want[t].extend(rows.iter().copied());
            }
        }
        let want: Vec<Vec<u32>> = want.into_iter().map(|s| s.into_iter().collect()).collect();
        assert_eq!(plan, want);
        // Advancing yields the per-position sets in order.
        for (i, s) in eager.iter().enumerate() {
            assert_eq!(oracle.advance().as_ref(), Some(s), "position {i}");
        }
        assert!(oracle.advance().is_none());
    }

    #[test]
    fn skip_fast_forwards_the_stream() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(9, 500));
        let batches: Vec<MiniBatch> = (0..ds.len())
            .collect::<Vec<_>>()
            .chunks(64)
            .map(|c| MiniBatch::gather(&ds, c, BatchKind::Hot))
            .collect();
        let order: Vec<usize> = (0..batches.len()).collect();
        let third = AccessSet::of(&batches[2]);
        let mut oracle = LookaheadOracle::spawn(Arc::new(batches), order, 1).expect("spawn");
        oracle.skip(2);
        assert_eq!(oracle.advance(), Some(third));
    }
}
