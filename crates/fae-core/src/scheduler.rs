//! The Shuffle Scheduler (§III-C): adaptive interleaving of hot and cold
//! mini-batch blocks.
//!
//! The rate `r ∈ [R(1), R(100)]` sets the block granularity: per schedule
//! round the trainer issues `r%` of the epoch's cold batches, then `r%` of
//! its hot batches. `R(100)` = all cold then all hot (cheapest, riskiest
//! for accuracy); `R(1)` = alternate after every mini-batch (most random,
//! most embedding-sync traffic). After each round the test loss drives
//! Eq. 7: an increase halves the rate (floored at 1); `u = 4` consecutive
//! improvements double it (capped at 100); otherwise it holds. Training
//! always leads with cold batches.
//!
//! (Eq. 7 as printed swaps min/max — taken literally the rate could never
//! leave its bounds; we implement the evident intent: clamp to
//! `[R(1), R(100)]`.)

use fae_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// An interleaving rate in percent of each class issued per round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rate(u32);

impl Rate {
    /// Minimum rate: alternate after every mini-batch.
    pub const MIN: Rate = Rate(1);
    /// Maximum rate: all cold, then all hot.
    pub const MAX: Rate = Rate(100);

    /// Creates a rate, clamping into `[1, 100]`.
    pub fn new(pct: u32) -> Self {
        Rate(pct.clamp(1, 100))
    }

    /// The percentage value.
    pub fn pct(self) -> u32 {
        self.0
    }

    /// Number of batches in one block out of `total` for this rate
    /// (at least 1 so progress is guaranteed).
    pub fn block_len(self, total: usize) -> usize {
        ((total * self.0 as usize).div_ceil(100)).max(1)
    }

    fn halved(self) -> Rate {
        Rate::new(self.0 / 2)
    }

    fn doubled(self) -> Rate {
        Rate::new(self.0.saturating_mul(2))
    }
}

/// A serialisable snapshot of the scheduler's adaptive state, used by
/// the checkpoint container so a resumed run adapts identically to an
/// uninterrupted one.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedulerState {
    /// Current rate in percent.
    pub rate: u32,
    /// Last observed test loss, if any.
    pub prev_loss: Option<f64>,
    /// Consecutive improvements seen so far.
    pub improving_streak: u32,
    /// Improvements required before doubling.
    pub u: u32,
    /// `(test_loss, rate_pct)` per round.
    pub history: Vec<(f64, u32)>,
}

/// The adaptive scheduler state.
///
/// ```
/// use fae_core::{Rate, ShuffleScheduler};
/// let mut s = ShuffleScheduler::paper_default(); // starts at R(50)
/// s.observe_test_loss(0.70);
/// assert_eq!(s.observe_test_loss(0.75), Rate::new(25)); // loss rose → halve
/// ```
#[derive(Clone, Debug)]
pub struct ShuffleScheduler {
    rate: Rate,
    prev_loss: Option<f64>,
    improving_streak: u32,
    /// Consecutive improvements required before doubling (paper: u = 4).
    u: u32,
    history: Vec<(f64, Rate)>,
    telemetry: Telemetry,
}

impl ShuffleScheduler {
    /// Creates a scheduler starting at `initial` (paper: R(50)).
    pub fn new(initial: Rate) -> Self {
        Self {
            rate: initial,
            prev_loss: None,
            improving_streak: 0,
            u: 4,
            history: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: adaptation decisions are counted
    /// (`scheduler.rate_halved` / `rate_doubled` / `rate_held`) and the
    /// live rate is exported as the `scheduler.rate` gauge.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        telemetry.gauge_set("scheduler.rate", self.rate.pct() as f64);
        self.telemetry = telemetry;
    }

    /// Paper-default scheduler: R(50), u = 4.
    pub fn paper_default() -> Self {
        Self::new(Rate::new(50))
    }

    /// Current rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// `(test_loss, rate-after-observation)` per round.
    pub fn history(&self) -> &[(f64, Rate)] {
        &self.history
    }

    /// Snapshots the full adaptive state for checkpointing.
    pub fn state(&self) -> SchedulerState {
        SchedulerState {
            rate: self.rate.pct(),
            prev_loss: self.prev_loss,
            improving_streak: self.improving_streak,
            u: self.u,
            history: self.history.iter().map(|&(l, r)| (l, r.pct())).collect(),
        }
    }

    /// Rebuilds a scheduler from a [`SchedulerState`] snapshot; the
    /// restored scheduler continues exactly where the snapshot left off.
    pub fn from_state(state: &SchedulerState) -> Self {
        Self {
            rate: Rate::new(state.rate),
            prev_loss: state.prev_loss,
            improving_streak: state.improving_streak,
            u: state.u,
            history: state.history.iter().map(|&(l, r)| (l, Rate::new(r))).collect(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Feeds the test loss measured after a schedule round; returns the
    /// rate to use for the next round (Eq. 7).
    pub fn observe_test_loss(&mut self, loss: f64) -> Rate {
        assert!(loss.is_finite(), "non-finite test loss");
        match self.prev_loss {
            Some(prev) if loss > prev => {
                self.rate = self.rate.halved();
                self.improving_streak = 0;
                self.telemetry.counter_add("scheduler.rate_halved", 1);
            }
            Some(prev) if loss < prev => {
                self.improving_streak += 1;
                if self.improving_streak >= self.u {
                    self.rate = self.rate.doubled();
                    self.improving_streak = 0;
                    self.telemetry.counter_add("scheduler.rate_doubled", 1);
                } else {
                    self.telemetry.counter_add("scheduler.rate_held", 1);
                }
            }
            _ => {
                // First observation or exactly flat: hold the rate.
                self.telemetry.counter_add("scheduler.rate_held", 1);
            }
        }
        self.prev_loss = Some(loss);
        self.history.push((loss, self.rate));
        self.telemetry.gauge_set("scheduler.rate", self.rate.pct() as f64);
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_clamps_and_blocks() {
        assert_eq!(Rate::new(0), Rate::MIN);
        assert_eq!(Rate::new(250), Rate::MAX);
        assert_eq!(Rate::new(50).block_len(10), 5);
        assert_eq!(Rate::new(100).block_len(7), 7);
        assert_eq!(Rate::new(1).block_len(50), 1);
        assert_eq!(Rate::new(1).block_len(1000), 10);
        // Progress guarantee on tiny epochs.
        assert_eq!(Rate::new(1).block_len(3), 1);
        assert_eq!(Rate::new(50).block_len(0), 1);
    }

    #[test]
    fn first_observation_holds_rate() {
        let mut s = ShuffleScheduler::paper_default();
        assert_eq!(s.observe_test_loss(1.0), Rate::new(50));
    }

    #[test]
    fn loss_increase_halves_rate_immediately() {
        let mut s = ShuffleScheduler::paper_default();
        s.observe_test_loss(1.0);
        assert_eq!(s.observe_test_loss(1.5), Rate::new(25));
        assert_eq!(s.observe_test_loss(2.0), Rate::new(12));
    }

    #[test]
    fn rate_floors_at_one() {
        let mut s = ShuffleScheduler::new(Rate::new(2));
        s.observe_test_loss(1.0);
        s.observe_test_loss(2.0); // 2 -> 1
        assert_eq!(s.rate(), Rate::MIN);
        s.observe_test_loss(3.0); // stays 1
        assert_eq!(s.rate(), Rate::MIN);
    }

    #[test]
    fn four_consecutive_improvements_double_rate() {
        let mut s = ShuffleScheduler::new(Rate::new(10));
        s.observe_test_loss(5.0);
        for (i, loss) in [4.0, 3.0, 2.0].iter().enumerate() {
            assert_eq!(s.observe_test_loss(*loss), Rate::new(10), "step {i}");
        }
        // 4th consecutive improvement triggers the doubling.
        assert_eq!(s.observe_test_loss(1.0), Rate::new(20));
        // Streak resets afterwards.
        assert_eq!(s.observe_test_loss(0.9), Rate::new(20));
    }

    #[test]
    fn increase_resets_improvement_streak() {
        let mut s = ShuffleScheduler::new(Rate::new(10));
        s.observe_test_loss(5.0);
        s.observe_test_loss(4.0);
        s.observe_test_loss(3.0);
        s.observe_test_loss(3.5); // halves, resets streak
        assert_eq!(s.rate(), Rate::new(5));
        s.observe_test_loss(3.0);
        s.observe_test_loss(2.5);
        s.observe_test_loss(2.0);
        assert_eq!(s.rate(), Rate::new(5), "streak must restart after the increase");
        s.observe_test_loss(1.5);
        assert_eq!(s.rate(), Rate::new(10));
    }

    #[test]
    fn rate_caps_at_hundred() {
        let mut s = ShuffleScheduler::new(Rate::new(80));
        let mut loss = 100.0;
        s.observe_test_loss(loss);
        for _ in 0..20 {
            loss -= 1.0;
            s.observe_test_loss(loss);
        }
        assert_eq!(s.rate(), Rate::MAX);
    }

    #[test]
    fn flat_loss_holds_rate() {
        let mut s = ShuffleScheduler::new(Rate::new(40));
        s.observe_test_loss(1.0);
        assert_eq!(s.observe_test_loss(1.0), Rate::new(40));
        assert_eq!(s.observe_test_loss(1.0), Rate::new(40));
    }

    #[test]
    fn state_round_trip_preserves_adaptive_behaviour() {
        let mut a = ShuffleScheduler::new(Rate::new(10));
        a.observe_test_loss(5.0);
        a.observe_test_loss(4.0);
        a.observe_test_loss(3.0); // streak = 2
        let mut b = ShuffleScheduler::from_state(&a.state());
        assert_eq!(b.rate(), a.rate());
        assert_eq!(b.history(), a.history());
        // Both see two more improvements: the 4th doubles the rate.
        a.observe_test_loss(2.0);
        b.observe_test_loss(2.0);
        assert_eq!(a.observe_test_loss(1.0), Rate::new(20));
        assert_eq!(b.observe_test_loss(1.0), Rate::new(20));
    }

    #[test]
    fn telemetry_counts_adaptations_and_tracks_rate() {
        let t = Telemetry::builder().try_build().expect("telemetry");
        let mut s = ShuffleScheduler::paper_default();
        s.set_telemetry(t.clone());
        s.observe_test_loss(1.0); // held (first observation)
        s.observe_test_loss(1.5); // halved
        s.observe_test_loss(1.2); // improving, streak 1 -> held
        let m = t.metrics();
        assert_eq!(m.counter("scheduler.rate_held"), 2);
        assert_eq!(m.counter("scheduler.rate_halved"), 1);
        assert_eq!(m.counter("scheduler.rate_doubled"), 0);
        assert_eq!(m.gauge("scheduler.rate"), Some(25.0));
    }

    #[test]
    fn history_records_every_round() {
        let mut s = ShuffleScheduler::paper_default();
        s.observe_test_loss(2.0);
        s.observe_test_loss(3.0);
        assert_eq!(s.history().len(), 2);
        assert_eq!(s.history()[1], (3.0, Rate::new(25)));
    }
}
