//! Training engines: the CPU+GPU hybrid baseline and the FAE schedule.
//!
//! Both engines train with *real* numerics (the loss/accuracy results of
//! Fig 12 and Table III come out of actual SGD on the synthetic data) and
//! simultaneously charge every mini-batch to the `fae-sysmodel` cost model
//! (the latency/power results of Figs 13–15 and Tables IV–VI come out of
//! the accumulated [`Timeline`]).
//!
//! The FAE engine follows §III-C: lead with cold batches, issue blocks of
//! `rate%` cold then `rate%` hot, synchronise the hot bags CPU↔GPU at
//! every transition (charged via [`sync_cost`]), evaluate after each
//! round and let the [`ShuffleScheduler`] adapt the rate.
//!
//! # Resilience
//!
//! [`train_fae_resilient`] extends the FAE engine with fault injection,
//! periodic checkpoints and graceful degradation (see [`crate::faults`]
//! and [`crate::checkpoint`]):
//!
//! * **device loss** — the data-parallel group shrinks to the survivors;
//!   re-sharding (communicator re-init, dense-parameter broadcast,
//!   hot-bag re-replication) is charged to the timeline via
//!   [`reshard_cost`], and training continues at the N−1 cost model.
//!   Losing the last GPU falls back to CPU-only cold execution.
//! * **replication OOM** — the aborted replication is charged, then the
//!   run degrades to CPU-only cold execution: hot batches train against
//!   the master tables at hybrid cost, with no further sync traffic.
//! * **sync failure** — the failed sync attempts are retried with
//!   bounded exponential backoff; each failed attempt still moves the
//!   bytes (charged) and the backoff waits are charged to `Framework`.
//! * **checkpoints** — written at schedule-round boundaries (where the
//!   master tables are authoritative), atomically, with a CRC trailer.
//!   Saving charges *zero* simulated time, so a checkpointed run's cost
//!   is identical to an unmonitored one. Per-epoch shuffle orders come
//!   from RNGs derived as `mix(seed, epoch)` rather than one continuous
//!   stream, so a resumed run replays the exact batch order — resumption
//!   is bit-identical to never having stopped.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fae_data::{BatchKind, Dataset, MiniBatch, WorkloadKind, WorkloadSpec};
use fae_embed::{DeferredSparse, SkipStats, SparseGrad};
use fae_models::{
    bridge, evaluate, Dlrm, EmbeddingSource, EvalReport, MasterEmbeddings, RecModel, Tbsm,
};
use fae_nn::Tensor;
use fae_sysmodel::power::average_gpu_power;
use fae_sysmodel::{
    cold_sparse_optimizer_cost, reshard_cost, step_cost, sync_cost, ExecMode, Phase, SystemConfig,
    Timeline,
};
use fae_telemetry::{JournalEvent, PhaseSeconds, StepMode, Telemetry};

use crate::checkpoint::{latest_in, model_digest, TrainCheckpoint};
use crate::exec::{ParallelEngine, StepEngine};
use crate::faults::{
    retry_with_backoff, FaultInjector, FaultKind, FaultPlan, InjectedFault, RecoveryAction,
    RetryPolicy,
};
use crate::input_processor::Preprocessed;
use crate::oracle::{LookaheadOracle, OracleStats};
use crate::replicator::HotEmbeddings;
use crate::scheduler::{Rate, ShuffleScheduler};

/// Trainer configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// SGD learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Global mini-batch size (scaled with GPUs under weak scaling by the
    /// caller).
    pub minibatch_size: usize,
    /// Simulated GPU count (affects only the cost model).
    pub num_gpus: usize,
    /// Initial shuffle-scheduler rate (paper: 50).
    pub initial_rate: u32,
    /// Test mini-batches per evaluation.
    pub eval_batches: usize,
    /// Baseline: evaluate every this many steps.
    pub eval_interval: usize,
    /// Seed for model init and batch-order shuffles.
    pub seed: u64,
    /// Execution-engine worker threads (one model replica each). `1`
    /// runs the serial fast path, bit-identical to the pre-engine
    /// trainer; any fixed value is bit-identical run to run.
    pub workers: usize,
    /// Store the cold rows of the master tables as int8 (per-row affine
    /// scale+min, DESIGN.md §14), shrinking the cold majority ~4× while
    /// the calibrator-pinned hot rows stay exact f32. Off by default;
    /// unsupported for the distributed (multi-process) paths, which need
    /// whole-table f32 views. (The vendored serde shim has no field
    /// attributes, so absent-field defaulting is not available; no
    /// persisted `TrainConfig` JSON exists, only `config_seed`.)
    pub quantize_cold: bool,
    /// Lookahead-oracle window K in batches (0 disables). With K ≥ 1 the
    /// cold→hot refresh copies only the union of the next `min(K, block)`
    /// hot access sets, the window slides during the block (the entering
    /// set prefetched K−1 steps early, its transfer hidden behind
    /// compute), and the hot→cold write-back moves only resident rows.
    /// Transfer costs change; numerics do not — any K produces the same
    /// model digest as K = 0. Unsupported with `--distributed`.
    pub lookahead: usize,
    /// Stale-skip threshold in weight-delta units (0.0 disables). Cold-row
    /// sparse updates are deferred until `lr·‖accumulated‖∞` crosses the
    /// threshold, the row is about to be read, or a checkpoint flushes
    /// them; updates still pending at the end of the run are dropped —
    /// the elided stale updates of arXiv 2404.04270. Unsupported with
    /// `--distributed`.
    pub stale_skip: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            epochs: 1,
            minibatch_size: 64,
            num_gpus: 1,
            initial_rate: 50,
            eval_batches: 4,
            eval_interval: 50,
            seed: 0xF00D,
            workers: 1,
            quantize_cold: false,
            lookahead: 0,
            stale_skip: 0.0,
        }
    }
}

/// Fault-injection, checkpointing and resume options for
/// [`train_fae_resilient`]. The default is a no-op: no faults, no
/// checkpoints — [`train_fae`] semantics.
#[derive(Clone, Debug, Default)]
pub struct ResilienceOptions {
    /// Faults to inject, with their trigger steps and determinism seed.
    pub plan: FaultPlan,
    /// Where to write checkpoints (`None` disables checkpointing).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint every this many schedule rounds (0 disables).
    pub checkpoint_every_rounds: usize,
    /// Resume from the latest checkpoint in `checkpoint_dir`, if any.
    pub resume: bool,
    /// Abort training once this many steps have run (crash simulation
    /// for resume tests; the report comes back `interrupted`).
    pub halt_after_steps: Option<usize>,
    /// Telemetry sink: metrics, per-step journal, progress echo. The
    /// default ([`Telemetry::disabled`]) records nothing at zero cost.
    pub telemetry: Telemetry,
}

/// One evaluation snapshot along the training run (Fig 12's curves).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Training steps completed when this evaluation ran.
    pub iteration: usize,
    /// Test-set BCE loss.
    pub test_loss: f64,
    /// Test-set accuracy.
    pub test_accuracy: f64,
    /// Scheduler rate after this round (FAE only).
    pub rate: Option<u32>,
    /// Cumulative pure-GPU hot steps when this evaluation ran, so
    /// accuracy can be correlated with the hot/cold schedule.
    pub hot_steps: usize,
    /// Cumulative hybrid (cold) steps when this evaluation ran.
    pub cold_steps: usize,
    /// Cumulative simulated seconds when this evaluation ran.
    pub sim_seconds: f64,
}

/// Everything a training run produces.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Evaluation snapshots over training.
    pub history: Vec<EvalPoint>,
    /// Final held-out metrics.
    pub final_test: EvalReport,
    /// Final train-subset metrics (paper Table III reports both).
    pub final_train: EvalReport,
    /// Simulated phase-tagged time.
    pub timeline: Timeline,
    /// Simulated wall-clock seconds (== `timeline.total()`).
    pub simulated_seconds: f64,
    /// Simulated average per-GPU power (Table VI).
    pub avg_gpu_power_w: f64,
    /// Steps executed in pure-GPU hot mode.
    pub hot_steps: usize,
    /// Steps executed in hybrid (baseline/cold) mode.
    pub cold_steps: usize,
    /// Hot↔cold transitions (each charged an embedding sync).
    pub transitions: usize,
    /// Final scheduler rate (FAE only).
    pub final_rate: Option<u32>,
    /// Faults injected during the run, in firing order.
    pub faults: Vec<InjectedFault>,
    /// Recovery actions taken in response (including resume itself).
    pub recoveries: Vec<RecoveryAction>,
    /// True when the run was halted early (`halt_after_steps`).
    pub interrupted: bool,
    /// CRC-32 digest over the final model state (dense parameters +
    /// master embedding tables; see [`crate::checkpoint::model_digest`]).
    /// Two runs that trained the same model report the same digest, no
    /// matter where the shards were computed — this is the acceptance
    /// check for the distributed engine.
    pub model_digest: u32,
    /// Lookahead-oracle counters (all zero when `lookahead == 0`).
    pub oracle: OracleStats,
    /// Stale-skip counters (all zero when `stale_skip == 0`).
    pub skip: SkipStats,
}

/// A recommendation model of either family, chosen by the workload spec.
pub enum AnyModel {
    /// DLRM (RMC2/RMC3).
    Dlrm(Box<Dlrm>),
    /// TBSM (RMC1).
    Tbsm(Box<Tbsm>),
}

impl AnyModel {
    /// Builds the model family the spec calls for.
    pub fn from_spec(spec: &WorkloadSpec, rng: &mut impl Rng) -> Self {
        match spec.kind {
            WorkloadKind::Dlrm => AnyModel::Dlrm(Box::new(Dlrm::from_spec(spec, rng))),
            WorkloadKind::Tbsm => AnyModel::Tbsm(Box::new(Tbsm::from_spec(spec, rng))),
        }
    }
}

impl RecModel for AnyModel {
    fn forward(&mut self, batch: &MiniBatch, emb: &dyn EmbeddingSource) -> Tensor {
        match self {
            AnyModel::Dlrm(m) => m.forward(batch, emb),
            AnyModel::Tbsm(m) => m.forward(batch, emb),
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Vec<SparseGrad> {
        match self {
            AnyModel::Dlrm(m) => m.backward(grad),
            AnyModel::Tbsm(m) => m.backward(grad),
        }
    }

    fn sgd_step(&mut self, lr: f32) {
        match self {
            AnyModel::Dlrm(m) => m.sgd_step(lr),
            AnyModel::Tbsm(m) => m.sgd_step(lr),
        }
    }

    fn zero_grad(&mut self) {
        match self {
            AnyModel::Dlrm(m) => m.zero_grad(),
            AnyModel::Tbsm(m) => m.zero_grad(),
        }
    }

    fn dense_param_count(&self) -> usize {
        match self {
            AnyModel::Dlrm(m) => m.dense_param_count(),
            AnyModel::Tbsm(m) => m.dense_param_count(),
        }
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        match self {
            AnyModel::Dlrm(m) => m.write_params(out),
            AnyModel::Tbsm(m) => m.write_params(out),
        }
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        match self {
            AnyModel::Dlrm(m) => m.read_params(src),
            AnyModel::Tbsm(m) => m.read_params(src),
        }
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        match self {
            AnyModel::Dlrm(m) => m.write_grads(out),
            AnyModel::Tbsm(m) => m.write_grads(out),
        }
    }

    fn read_grads(&mut self, src: &[f32]) -> usize {
        match self {
            AnyModel::Dlrm(m) => m.read_grads(src),
            AnyModel::Tbsm(m) => m.read_grads(src),
        }
    }
}

/// Splits the head of a test dataset into evaluation mini-batches.
pub fn make_test_batches(test: &Dataset, batch_size: usize, max_batches: usize) -> Vec<MiniBatch> {
    let n = test.len();
    (0..n)
        .collect::<Vec<_>>()
        .chunks(batch_size)
        .take(max_batches)
        .map(|c| MiniBatch::gather(test, c, BatchKind::Unclassified))
        .collect()
}

/// Per-batch-size memoised step costs: `step_cost` is pure in the batch
/// size, and an epoch reuses two sizes (full + remainder).
struct CostCache<'a> {
    profile: &'a fae_sysmodel::ModelProfile,
    sys: &'a SystemConfig,
    mode: ExecMode,
    // Lookup-only (never iterated), so iteration order cannot reach
    // the digest — which is what lets this be a HashMap under the
    // flow-aware det-taint rule.
    cache: HashMap<usize, Timeline>,
}

impl<'a> CostCache<'a> {
    fn new(profile: &'a fae_sysmodel::ModelProfile, sys: &'a SystemConfig, mode: ExecMode) -> Self {
        Self { profile, sys, mode, cache: HashMap::new() }
    }

    fn charge(&mut self, timeline: &mut Timeline, batch: usize) {
        let entry = self
            .cache
            .entry(batch)
            .or_insert_with(|| step_cost(self.profile, self.sys, self.mode, batch));
        timeline.merge(entry);
    }
}

/// The FAE engine's owned cost model. Unlike [`CostCache`] it owns the
/// system description, because graceful degradation re-shapes the
/// machine mid-run: after a device loss the surviving GPU count changes
/// every per-step and sync cost, so the caches must be rebuilt.
struct FaeCostModel {
    profile: fae_sysmodel::ModelProfile,
    sys: SystemConfig,
    sync_bytes: f64,
    // Lookup-only like `CostCache.cache`; see that field's note.
    cold: HashMap<usize, Timeline>,
    hot: HashMap<usize, Timeline>,
    sync: Timeline,
}

impl FaeCostModel {
    fn new(profile: fae_sysmodel::ModelProfile, num_gpus: usize, sync_bytes: f64) -> Self {
        let sys = SystemConfig::paper_server(num_gpus);
        let sync = sync_cost(&sys, sync_bytes);
        Self { profile, sys, sync_bytes, cold: HashMap::new(), hot: HashMap::new(), sync }
    }

    /// Re-shapes the machine to `num_gpus` survivors: every cached cost
    /// is stale, so the caches are dropped and the sync cost recomputed.
    fn set_gpus(&mut self, num_gpus: usize) {
        self.sys = SystemConfig::paper_server(num_gpus);
        self.cold.clear();
        self.hot.clear();
        self.sync = sync_cost(&self.sys, self.sync_bytes);
    }

    fn charge_cold(&mut self, timeline: &mut Timeline, batch: usize) {
        let entry = self.cold.entry(batch).or_insert_with(|| {
            step_cost(&self.profile, &self.sys, ExecMode::BaselineHybrid, batch)
        });
        timeline.merge(entry);
    }

    /// Charges a cold step whose sparse optimizer applied only
    /// `applied` of the `produced` row-updates (the rest deferred by the
    /// stale-skip pool, or flushed extras when `applied > produced`).
    /// The CPU sparse-SGD term — the paper's headline cold bottleneck —
    /// is rescaled by `applied / produced`; every other phase is
    /// unchanged (the forward/backward still ran in full).
    fn charge_cold_skipped(
        &mut self,
        timeline: &mut Timeline,
        batch: usize,
        produced: u64,
        applied: u64,
    ) {
        if produced == 0 || applied == produced {
            self.charge_cold(timeline, batch);
            return;
        }
        let entry = self.cold.entry(batch).or_insert_with(|| {
            step_cost(&self.profile, &self.sys, ExecMode::BaselineHybrid, batch)
        });
        let sparse = cold_sparse_optimizer_cost(&self.profile, &self.sys, batch);
        let delta = sparse * (applied as f64 / produced as f64 - 1.0);
        let mut adjusted = Timeline::new();
        for phase in Phase::ALL {
            let mut secs = entry.get(phase);
            if phase == Phase::Optimizer {
                secs = (secs + delta).max(0.0);
            }
            adjusted.add(phase, secs);
        }
        adjusted.add_cpu_resident((entry.cpu_resident() + delta).max(0.0));
        timeline.merge(&adjusted);
    }

    fn charge_hot(&mut self, timeline: &mut Timeline, batch: usize) {
        let entry = self
            .hot
            .entry(batch)
            .or_insert_with(|| step_cost(&self.profile, &self.sys, ExecMode::FaeHotGpu, batch));
        timeline.merge(entry);
    }

    /// Simulated seconds of one hot step at this batch size.
    fn hot_step_seconds(&mut self, batch: usize) -> f64 {
        self.hot
            .entry(batch)
            .or_insert_with(|| step_cost(&self.profile, &self.sys, ExecMode::FaeHotGpu, batch))
            .total()
    }

    fn sync(&self) -> &Timeline {
        &self.sync
    }

    /// A sync charge for an oracle-sized partial transfer.
    fn sync_for_bytes(&self, bytes: f64) -> Timeline {
        sync_cost(&self.sys, bytes)
    }

    /// Total seconds a sync of `bytes` takes on this machine.
    fn sync_seconds(&self, bytes: f64) -> f64 {
        sync_cost(&self.sys, bytes).total()
    }
}

/// Derives the shuffle seed for one epoch (SplitMix64 finalizer).
///
/// Each epoch's batch order comes from its own RNG rather than a stream
/// threaded through training, so a resumed run can regenerate the exact
/// order of any epoch without replaying the ones before it.
fn shuffle_seed(seed: u64, epoch: usize) -> u64 {
    let mut z = seed.wrapping_add((epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-phase seconds charged since the last snapshot, advancing the
/// snapshot. Journalling every timeline mutation through this keeps the
/// journal's invariant: its phase seconds sum to `Timeline::total`.
fn take_delta(prev: &mut Timeline, now: &Timeline) -> PhaseSeconds {
    let d = PhaseSeconds::delta(prev, now);
    prev.clone_from(now);
    d
}

/// One cold-mode (CPU-hybrid) step under optional stale-skip: flush the
/// pending rows this batch is about to read (so the forward pass never
/// sees starved weights), run the step, defer cold-row updates into the
/// pool, and charge the hybrid cost with the sparse-optimizer term
/// rescaled by the fraction of row-updates actually applied. With no
/// skip pool this is exactly the pre-skip step. Returns the loss.
#[allow(clippy::too_many_arguments)] // internal plumbing of one loop body
fn cold_step_with_skip<En: StepEngine>(
    engine: &mut En,
    master: &mut MasterEmbeddings,
    mb: &MiniBatch,
    step: u64,
    lr: f32,
    partitions: &[fae_embed::HotColdPartition],
    skip: &mut Option<DeferredSparse>,
    costs: &mut FaeCostModel,
    timeline: &mut Timeline,
) -> f32 {
    let Some(pool) = skip.as_mut() else {
        let (loss, grads) = engine.engine_step(master, mb, step, StepMode::Cold, lr);
        master.apply_sparse_grads(&grads, lr);
        costs.charge_cold(timeline, mb.len());
        return loss;
    };
    let mut flushed_now = 0u64;
    // Raw CSR indices, duplicates and all — `take_for_access` tolerates
    // them, and skipping the sort/dedup keeps this off the step's
    // critical path.
    let access: Vec<&[u32]> = mb.sparse.iter().map(|c| c.indices.as_slice()).collect();
    if let Some((flush, n)) = pool.take_for_access(&access) {
        master.apply_sparse_grads(&flush, lr);
        flushed_now = n;
    }
    let (loss, grads) = engine.engine_step(master, mb, step, StepMode::Cold, lr);
    let produced: u64 = grads.iter().map(|g| g.nnz_rows() as u64).sum();
    let (apply, _) = pool.absorb(&grads, partitions);
    let applied: u64 = apply.iter().map(|g| g.nnz_rows() as u64).sum();
    master.apply_sparse_grads(&apply, lr);
    // Flushed rows are real optimizer work done this step, so they count
    // toward the applied fraction (possibly pushing it past 1).
    costs.charge_cold_skipped(timeline, mb.len(), produced, applied + flushed_now);
    loss
}

/// Trains the baseline: every mini-batch in hybrid CPU-GPU mode.
pub fn train_baseline(
    spec: &WorkloadSpec,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = AnyModel::from_spec(spec, &mut rng);
    let mut master = MasterEmbeddings::from_spec(spec, &mut rng);
    let mut engine = ParallelEngine::from_model(model, spec, cfg.seed, cfg.workers);
    let test_batches = make_test_batches(test, cfg.minibatch_size, cfg.eval_batches);
    let profile = bridge::profile_for(spec, 0.0);
    let sys = SystemConfig::paper_server(cfg.num_gpus);
    let mut costs = CostCache::new(&profile, &sys, ExecMode::BaselineHybrid);

    let mut timeline = Timeline::new();
    let mut history = Vec::new();
    let mut steps = 0usize;
    let mut order: Vec<usize> = (0..train.len()).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(cfg.minibatch_size) {
            let mb = MiniBatch::gather(train, chunk, BatchKind::Unclassified);
            let (_loss, grads) = engine.step(&master, &mb, cfg.lr);
            master.apply_sparse_grads(&grads, cfg.lr);
            costs.charge(&mut timeline, mb.len());
            steps += 1;
            if steps.is_multiple_of(cfg.eval_interval) {
                let e = evaluate(engine.primary(), &master, &test_batches);
                history.push(EvalPoint {
                    iteration: steps,
                    test_loss: e.loss,
                    test_accuracy: e.accuracy,
                    rate: None,
                    hot_steps: 0,
                    cold_steps: steps,
                    sim_seconds: timeline.total(),
                });
            }
        }
    }
    let final_test = evaluate(engine.primary(), &master, &test_batches);
    let train_batches = make_test_batches(train, cfg.minibatch_size, cfg.eval_batches);
    let final_train = evaluate(engine.primary(), &master, &train_batches);
    history.push(EvalPoint {
        iteration: steps,
        test_loss: final_test.loss,
        test_accuracy: final_test.accuracy,
        rate: None,
        hot_steps: 0,
        cold_steps: steps,
        sim_seconds: timeline.total(),
    });
    let mut final_dense = Vec::new();
    engine.primary_ref().write_params(&mut final_dense);
    let digest = model_digest(&final_dense, &TrainCheckpoint::snapshot_master(&master));
    TrainReport {
        history,
        final_test,
        final_train,
        simulated_seconds: timeline.total(),
        avg_gpu_power_w: average_gpu_power(&timeline),
        timeline,
        hot_steps: 0,
        cold_steps: steps,
        transitions: 0,
        final_rate: None,
        faults: Vec::new(),
        recoveries: Vec::new(),
        interrupted: false,
        model_digest: digest,
        oracle: OracleStats::default(),
        skip: SkipStats::default(),
    }
}

/// Trains with the FAE framework over a preprocessed hot/cold stream.
///
/// Equivalent to [`train_fae_resilient`] with default (no-op)
/// [`ResilienceOptions`].
pub fn train_fae(
    spec: &WorkloadSpec,
    pre: &Preprocessed,
    test: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    train_fae_resilient(spec, pre, test, cfg, &ResilienceOptions::default())
}

/// Trains with the FAE framework under fault injection, periodic
/// checkpointing and graceful degradation (see the module docs).
///
/// With default options this is exactly [`train_fae`]. With
/// `checkpoint_dir` + `resume`, a run killed at any step and restarted
/// produces a [`TrainReport`] bit-identical to one that never stopped.
pub fn train_fae_resilient(
    spec: &WorkloadSpec,
    pre: &Preprocessed,
    test: &Dataset,
    cfg: &TrainConfig,
    opts: &ResilienceOptions,
) -> TrainReport {
    train_fae_with_engine(spec, pre, test, cfg, opts, |model| {
        ParallelEngine::from_model(model, spec, cfg.seed, cfg.workers)
    })
}

/// Absorbs a [`StepEngine`]'s transport side effects into the training
/// loop's bookkeeping. `step_charges` fold into the surrounding journal
/// delta; `event_charges` advance the snapshot too, because the drained
/// journal events already carry those phase seconds.
fn absorb_net<En: StepEngine>(
    engine: &mut En,
    timeline: &mut Timeline,
    tl_prev: &mut Timeline,
    net_faults: &mut Vec<InjectedFault>,
    recoveries: &mut Vec<RecoveryAction>,
    telem: &Telemetry,
) {
    let net = engine.drain_net();
    if net.is_empty() {
        return;
    }
    timeline.merge(&net.step_charges);
    timeline.merge(&net.event_charges);
    tl_prev.merge(&net.event_charges);
    for ev in &net.journal {
        telem.emit(ev);
    }
    net_faults.extend(net.faults);
    recoveries.extend(net.recoveries);
}

/// The FAE training loop, generic over the step executor: pass the
/// in-process [`ParallelEngine`] (what [`train_fae_resilient`] does) or
/// a networked engine that fans shards out to worker processes. The
/// closure receives the freshly built (or checkpoint-restored) model and
/// must wrap it as replica 0.
pub fn train_fae_with_engine<En, F>(
    spec: &WorkloadSpec,
    pre: &Preprocessed,
    test: &Dataset,
    cfg: &TrainConfig,
    opts: &ResilienceOptions,
    make_engine: F,
) -> TrainReport
where
    En: StepEngine,
    F: FnOnce(AnyModel) -> En,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = AnyModel::from_spec(spec, &mut rng);
    // The tiered constructor draws the RNG in the same order as the
    // untiered one, so the model stream and the hot rows are bit-identical
    // either way; only cold rows differ (quantized at init, never
    // materialized in f32).
    let mut master = if cfg.quantize_cold {
        MasterEmbeddings::from_spec_tiered(spec, &pre.partitions, &mut rng)
    } else {
        MasterEmbeddings::from_spec(spec, &mut rng)
    };

    let mut scheduler = ShuffleScheduler::new(Rate::new(cfg.initial_rate));
    let mut timeline = Timeline::new();
    let mut history: Vec<EvalPoint> = Vec::new();
    let (mut hot_steps, mut cold_steps, mut transitions, mut steps) = (0usize, 0usize, 0usize, 0);
    let mut gpus_active = cfg.num_gpus.max(1);
    let mut cold_only = false;
    let mut injector = FaultInjector::new(opts.plan.clone());
    let mut recoveries: Vec<RecoveryAction> = Vec::new();
    let retry = RetryPolicy::default();
    let mut start_epoch = 0usize;
    let mut resume_cursors: Option<(usize, usize)> = None;
    let mut resumed = false;

    if opts.resume {
        if let Some(dir) = &opts.checkpoint_dir {
            match latest_in(dir) {
                Ok(Some(path)) => match TrainCheckpoint::load(&path) {
                    Ok(ck) => {
                        assert_eq!(
                            ck.config_seed,
                            cfg.seed,
                            "checkpoint {} was written by a run with seed {}, not {}",
                            path.display(),
                            ck.config_seed,
                            cfg.seed
                        );
                        model.read_params(&ck.dense_params);
                        master = ck.restore_master();
                        if cfg.quantize_cold {
                            master.quantize_cold_tier(&pre.partitions);
                        }
                        scheduler = ShuffleScheduler::from_state(&ck.scheduler);
                        timeline = ck.timeline.clone();
                        history = ck.history.clone();
                        steps = ck.steps as usize;
                        hot_steps = ck.hot_steps as usize;
                        cold_steps = ck.cold_steps as usize;
                        transitions = ck.transitions as usize;
                        gpus_active = ck.gpus_active as usize;
                        cold_only = ck.cold_only;
                        injector.restore(ck.faults.clone());
                        recoveries = ck.recoveries;
                        recoveries.push(RecoveryAction::ResumedFromCheckpoint { step: ck.steps });
                        start_epoch = ck.epoch as usize;
                        resume_cursors = Some((ck.hot_cursor as usize, ck.cold_cursor as usize));
                        resumed = true;
                    }
                    Err(e) => eprintln!(
                        "fae: ignoring unreadable checkpoint {}: {e}; starting fresh",
                        path.display()
                    ),
                },
                Ok(None) => {}
                Err(e) => eprintln!("fae: cannot scan checkpoint dir: {e}; starting fresh"),
            }
        }
    }

    let telem = opts.telemetry.clone();
    let enabled = telem.enabled();
    let mut span_train = telem.span("train");
    scheduler.set_telemetry(telem.clone());
    injector.set_telemetry(telem.clone());

    // The execution engine owns the model replicas from here on. A
    // checkpoint restore above only touched replica 0, so re-broadcast
    // its parameters before the first step.
    let mut engine = make_engine(model);
    engine.broadcast_params();
    engine.set_telemetry(telem.clone());
    if resumed {
        engine.on_master_restored(&master);
    }
    let mut net_faults: Vec<InjectedFault> = Vec::new();

    let mut hot = HotEmbeddings::build(&master, pre.partitions.to_vec());
    hot.set_telemetry(telem.clone());
    let hot_bytes = hot.hot_bytes() as f64;
    let test_batches = make_test_batches(test, cfg.minibatch_size, cfg.eval_batches);
    let profile = bridge::profile_for(spec, hot_bytes);
    let mut costs = FaeCostModel::new(profile, gpus_active, hot.sync_bytes() as f64);
    let dense_bytes = engine.primary_ref().dense_param_count() as f64 * 4.0;

    // Oracle lookahead state: the hot stream is shared with a per-epoch
    // background access-set producer; counters live for the whole run.
    let oracle_batches: Option<Arc<Vec<MiniBatch>>> =
        (cfg.lookahead > 0).then(|| Arc::new(pre.hot_batches.clone()));
    let mut oracle_stats = OracleStats::default();
    // Stale-skip state: deferred cold-row gradients (DESIGN.md §15).
    let mut skip = (cfg.stale_skip > 0.0)
        .then(|| DeferredSparse::new(master.num_tables(), master.dim(), cfg.stale_skip, cfg.lr));

    telem.emit(&JournalEvent::RunStart {
        workload: spec.name.clone(),
        seed: cfg.seed,
        num_gpus: gpus_active,
        workers: engine.workers(),
        epochs: cfg.epochs,
        minibatch_size: cfg.minibatch_size,
        initial_rate: cfg.initial_rate,
        lookahead: cfg.lookahead as u64,
        stale_skip: cfg.stale_skip as f64,
    });
    telem.gauge_set("train.gpus_active", gpus_active as f64);
    let sim_at_start = timeline.total();
    // Every timeline mutation below is journalled as the delta against
    // this snapshot, so the journal's phase seconds sum exactly to the
    // final `TrainReport::simulated_seconds`.
    let mut tl_prev = timeline.clone();
    if resumed && enabled {
        telem.emit(&JournalEvent::Recovery {
            step: steps as u64,
            action: "resumed-from-checkpoint".into(),
            detail: format!("replaying from step {steps}"),
        });
        // The checkpoint carried simulated time accumulated before the
        // resume; journal it so the sums-to-total invariant holds for
        // resumed runs too.
        telem.emit(&JournalEvent::Charge {
            step: steps as u64,
            label: "resumed-prior-timeline".into(),
            phases: PhaseSeconds::delta(&Timeline::new(), &timeline),
        });
        telem.counter_add("train.resumes", 1);
    }

    if !resumed {
        // Initial replication of the hot bags onto the GPUs.
        timeline.merge(costs.sync());
        if enabled {
            telem.emit(&JournalEvent::Sync {
                step: steps as u64,
                direction: "initial".into(),
                bytes: hot.sync_bytes() as u64,
                phases: take_delta(&mut tl_prev, &timeline),
            });
            telem.counter_add("replicator.sync_bytes", hot.sync_bytes() as u64);
        }
    }

    let n_hot = pre.hot_batches.len();
    let n_cold = pre.cold_batches.len();
    let halt_at = opts.halt_after_steps.unwrap_or(usize::MAX);
    let mut interrupted = false;
    let mut rounds_done = 0usize;

    'epochs: for epoch in start_epoch..cfg.epochs {
        // Each epoch's order comes from a derived seed (see
        // `shuffle_seed`), so a resumed run regenerates it exactly.
        let mut ep_rng = StdRng::seed_from_u64(shuffle_seed(cfg.seed, epoch));
        let mut hot_order: Vec<usize> = (0..n_hot).collect();
        let mut cold_order: Vec<usize> = (0..n_cold).collect();
        hot_order.shuffle(&mut ep_rng);
        cold_order.shuffle(&mut ep_rng);
        let (mut hp, mut cp) = resume_cursors.take().unwrap_or((0, 0));

        // The epoch's streaming oracle over the hot order just drawn. A
        // resumed run fast-forwards to the hot cursor; a degraded
        // (cold-only) run has no hot bags to manage, so no oracle.
        let mut oracle = match &oracle_batches {
            Some(batches) if !cold_only => {
                match LookaheadOracle::spawn(batches.clone(), hot_order.clone(), cfg.lookahead) {
                    Ok(mut o) => {
                        o.skip(hp);
                        Some(o)
                    }
                    Err(e) => {
                        eprintln!("fae: lookahead oracle unavailable ({e}); full-bag syncs");
                        None
                    }
                }
            }
            _ => None,
        };

        // §III-C: "The scheduler always begins with training on cold
        // inputs", then alternates rate-sized blocks.
        while hp < n_hot || cp < n_cold {
            // Device loss manifests at the round boundary (the allreduce
            // after it would time out): shrink to the survivors, pay the
            // re-shard, continue at the N−1 cost model.
            if let Some(f) = injector.fire(FaultKind::DeviceLoss, steps as u64) {
                if gpus_active > 1 {
                    let from = gpus_active;
                    gpus_active -= 1;
                    costs.set_gpus(gpus_active);
                    timeline.merge(&reshard_cost(&costs.sys, dense_bytes, hot_bytes));
                    recoveries.push(RecoveryAction::ShrankReplicas {
                        step: f.step,
                        from: from as u32,
                        to: gpus_active as u32,
                    });
                    if enabled {
                        telem.emit(&JournalEvent::Charge {
                            step: f.step,
                            label: "reshard".into(),
                            phases: take_delta(&mut tl_prev, &timeline),
                        });
                        telem.emit(&JournalEvent::Recovery {
                            step: f.step,
                            action: "shrank-replicas".into(),
                            detail: format!("{from} -> {gpus_active}"),
                        });
                        telem.gauge_set("train.gpus_active", gpus_active as f64);
                    }
                } else if !cold_only {
                    // No GPU left to host the hot bags: CPU-only cold
                    // execution for the rest of the run.
                    cold_only = true;
                    engine.on_cold_only(f.step);
                    recoveries.push(RecoveryAction::ColdFallback { step: f.step });
                    if enabled {
                        telem.emit(&JournalEvent::Recovery {
                            step: f.step,
                            action: "cold-fallback".into(),
                            detail: "last GPU lost; CPU-only cold execution".into(),
                        });
                    }
                }
            }
            let rate = scheduler.rate();
            // Cold block on the CPU master tables.
            if cp < n_cold {
                let k = rate.block_len(n_cold).min(n_cold - cp);
                for &b in &cold_order[cp..cp + k] {
                    let mb = &pre.cold_batches[b];
                    let loss = cold_step_with_skip(
                        &mut engine,
                        &mut master,
                        mb,
                        steps as u64,
                        cfg.lr,
                        &pre.partitions,
                        &mut skip,
                        &mut costs,
                        &mut timeline,
                    );
                    cold_steps += 1;
                    steps += 1;
                    absorb_net(
                        &mut engine,
                        &mut timeline,
                        &mut tl_prev,
                        &mut net_faults,
                        &mut recoveries,
                        &telem,
                    );
                    if enabled {
                        telem.emit(&JournalEvent::Step {
                            step: steps as u64,
                            mode: StepMode::Cold,
                            rate: rate.pct(),
                            loss: loss as f64,
                            phases: take_delta(&mut tl_prev, &timeline),
                        });
                        telem.counter_add("train.steps_cold", 1);
                        telem.observe("train.step_loss", loss as f64);
                    }
                    if steps >= halt_at {
                        interrupted = true;
                        break 'epochs;
                    }
                }
                cp += k;
            }
            // Hot block on the replicated GPU bags, bracketed by syncs.
            if hp < n_hot {
                let k = rate.block_len(n_hot).min(n_hot - hp);
                if !cold_only {
                    if let Some(f) = injector.fire(FaultKind::ReplicationOom, steps as u64) {
                        // The aborted replication attempt still moved (some
                        // of) the bytes; charge it, then degrade: all
                        // remaining batches run CPU-resident.
                        timeline.merge(costs.sync());
                        cold_only = true;
                        engine.on_cold_only(f.step);
                        recoveries.push(RecoveryAction::ColdFallback { step: f.step });
                        if enabled {
                            telem.emit(&JournalEvent::Sync {
                                step: f.step,
                                direction: "aborted-replication".into(),
                                bytes: hot.sync_bytes() as u64,
                                phases: take_delta(&mut tl_prev, &timeline),
                            });
                            telem.emit(&JournalEvent::Recovery {
                                step: f.step,
                                action: "cold-fallback".into(),
                                detail: "hot-bag replication aborted (OOM)".into(),
                            });
                        }
                    }
                }
                if cold_only {
                    // Degraded path: hot inputs are still *trained* — on the
                    // master tables at hybrid cost, with no sync traffic.
                    // No hot bags means nothing for the oracle to manage.
                    oracle = None;
                    for &b in &hot_order[hp..hp + k] {
                        let mb = &pre.hot_batches[b];
                        let loss = cold_step_with_skip(
                            &mut engine,
                            &mut master,
                            mb,
                            steps as u64,
                            cfg.lr,
                            &pre.partitions,
                            &mut skip,
                            &mut costs,
                            &mut timeline,
                        );
                        cold_steps += 1;
                        steps += 1;
                        absorb_net(
                            &mut engine,
                            &mut timeline,
                            &mut tl_prev,
                            &mut net_faults,
                            &mut recoveries,
                            &telem,
                        );
                        if enabled {
                            telem.emit(&JournalEvent::Step {
                                step: steps as u64,
                                mode: StepMode::Cold,
                                rate: rate.pct(),
                                loss: loss as f64,
                                phases: take_delta(&mut tl_prev, &timeline),
                            });
                            telem.counter_add("train.steps_cold", 1);
                            telem.observe("train.step_loss", loss as f64);
                        }
                        if steps >= halt_at {
                            interrupted = true;
                            break 'epochs;
                        }
                    }
                    hp += k;
                } else {
                    if let Some(f) = injector.fire(FaultKind::SyncFailure, steps as u64) {
                        // Deterministic number of failed attempts in
                        // [1, max_attempts): each moves the bytes before
                        // dying, and each backoff wait stalls the framework.
                        let failures =
                            1 + injector.variation(&f, (retry.max_attempts - 1) as u64) as u32;
                        let mut waited = 0.0;
                        for attempt in 1..=failures {
                            timeline.merge(costs.sync());
                            let d = retry.backoff_delay(attempt);
                            timeline.add(Phase::Framework, d);
                            waited += d;
                        }
                        recoveries.push(RecoveryAction::SyncRetried {
                            step: f.step,
                            attempts: failures + 1,
                            waited_s: waited,
                        });
                        if enabled {
                            // One journal entry covers every failed
                            // attempt: the re-moved bytes plus the
                            // Framework-phase backoff stalls.
                            telem.emit(&JournalEvent::Sync {
                                step: f.step,
                                direction: "retry".into(),
                                bytes: failures as u64 * hot.sync_bytes() as u64,
                                phases: take_delta(&mut tl_prev, &timeline),
                            });
                            telem.emit(&JournalEvent::Recovery {
                                step: f.step,
                                action: "sync-retried".into(),
                                detail: format!("{} attempts, {waited:.3}s backoff", failures + 1),
                            });
                        }
                    }
                    let refresh_bytes = if let Some(o) = oracle.as_mut() {
                        // Oracle refresh: copy only the union of the next
                        // min(K, block) hot access sets; everything else
                        // is evicted (free — the master already holds
                        // those rows, nothing moves).
                        let plan = o.block_plan(k, master.num_tables());
                        let (moved, evicted) = hot.refresh_rows(&master, &plan);
                        oracle_stats.prefetched_rows +=
                            plan.iter().map(|r| r.len() as u64).sum::<u64>();
                        oracle_stats.evicted_rows += evicted;
                        oracle_stats.moved_bytes += moved;
                        oracle_stats.full_bytes += hot.sync_bytes() as u64;
                        timeline.merge(&costs.sync_for_bytes(moved as f64));
                        moved
                    } else {
                        hot.refresh_from(&master);
                        timeline.merge(costs.sync());
                        hot.sync_bytes() as u64
                    };
                    transitions += 1;
                    engine.on_refresh(steps as u64, &master, &hot);
                    absorb_net(
                        &mut engine,
                        &mut timeline,
                        &mut tl_prev,
                        &mut net_faults,
                        &mut recoveries,
                        &telem,
                    );
                    if enabled {
                        telem.emit(&JournalEvent::Sync {
                            step: steps as u64,
                            direction: "refresh".into(),
                            bytes: refresh_bytes,
                            phases: take_delta(&mut tl_prev, &timeline),
                        });
                        telem.counter_add("replicator.sync_bytes", refresh_bytes);
                    }
                    for (j, &b) in hot_order[hp..hp + k].iter().enumerate() {
                        let mb = &pre.hot_batches[b];
                        if let Some(o) = oracle.as_mut() {
                            // Slide the window: the access set entering it
                            // is fetched K−1 steps before it executes, so
                            // its transfer overlaps K−1 steps of compute;
                            // only the non-hidden excess is charged. Sets
                            // past this block are left to the next block's
                            // plan — the master thaws between blocks, so
                            // bytes fetched across the boundary would go
                            // stale.
                            let window = o.window();
                            if j > 0 && j + window - 1 < k {
                                if let Some(entering) = o.peek(window - 1) {
                                    let (rows, bytes) =
                                        hot.fetch_missing(&master, &entering.per_table);
                                    if rows > 0 {
                                        oracle_stats.prefetched_rows += rows;
                                        oracle_stats.moved_bytes += bytes;
                                        let hidden =
                                            (window - 1) as f64 * costs.hot_step_seconds(mb.len());
                                        let excess =
                                            (costs.sync_seconds(bytes as f64) - hidden).max(0.0);
                                        timeline.add(Phase::EmbedSync, excess);
                                    }
                                }
                            }
                            // Demand self-check: with an exact oracle this
                            // step's rows are already resident, so misses
                            // stay 0; a nonzero count is a planner bug the
                            // fetch below keeps from corrupting training.
                            if let Some(cur) = o.advance() {
                                let accessed = cur.rows() as u64;
                                let (miss_rows, miss_bytes) =
                                    hot.fetch_missing(&master, &cur.per_table);
                                if miss_rows > 0 {
                                    oracle_stats.misses += miss_rows;
                                    oracle_stats.moved_bytes += miss_bytes;
                                    timeline.merge(&costs.sync_for_bytes(miss_bytes as f64));
                                }
                                oracle_stats.hits += accessed - miss_rows;
                            }
                        }
                        // Hot steps apply the merged sparse gradient
                        // shard-parallel — disjoint row ranges, exact.
                        let (loss, grads) =
                            engine.engine_step(&hot, mb, steps as u64, StepMode::Hot, cfg.lr);
                        hot.apply_shared(&grads, cfg.lr);
                        costs.charge_hot(&mut timeline, mb.len());
                        hot_steps += 1;
                        steps += 1;
                        absorb_net(
                            &mut engine,
                            &mut timeline,
                            &mut tl_prev,
                            &mut net_faults,
                            &mut recoveries,
                            &telem,
                        );
                        if enabled {
                            telem.emit(&JournalEvent::Step {
                                step: steps as u64,
                                mode: StepMode::Hot,
                                rate: rate.pct(),
                                loss: loss as f64,
                                phases: take_delta(&mut tl_prev, &timeline),
                            });
                            telem.counter_add("train.steps_hot", 1);
                            telem.observe("train.step_loss", loss as f64);
                        }
                        if steps >= halt_at {
                            interrupted = true;
                            break 'epochs;
                        }
                    }
                    hp += k;
                    let wb_bytes = if oracle.is_some() {
                        // Only resident rows can have been trained on the
                        // devices; the master copy of everything else is
                        // already authoritative.
                        let bytes = hot.write_back_resident(&mut master);
                        oracle_stats.moved_bytes += bytes;
                        oracle_stats.full_bytes += hot.sync_bytes() as u64;
                        timeline.merge(&costs.sync_for_bytes(bytes as f64));
                        bytes
                    } else {
                        hot.write_back(&mut master);
                        timeline.merge(costs.sync());
                        hot.sync_bytes() as u64
                    };
                    transitions += 1;
                    engine.on_write_back(steps as u64, &master);
                    absorb_net(
                        &mut engine,
                        &mut timeline,
                        &mut tl_prev,
                        &mut net_faults,
                        &mut recoveries,
                        &telem,
                    );
                    if enabled {
                        telem.emit(&JournalEvent::Sync {
                            step: steps as u64,
                            direction: "write-back".into(),
                            bytes: wb_bytes,
                            phases: take_delta(&mut tl_prev, &timeline),
                        });
                        telem.counter_add("replicator.sync_bytes", wb_bytes);
                    }
                }
            }
            // Evaluate on the (synchronised) master copy and adapt.
            let e = evaluate(engine.primary(), &master, &test_batches);
            let new_rate = scheduler.observe_test_loss(e.loss);
            history.push(EvalPoint {
                iteration: steps,
                test_loss: e.loss,
                test_accuracy: e.accuracy,
                rate: Some(new_rate.pct()),
                hot_steps,
                cold_steps,
                sim_seconds: timeline.total(),
            });
            telem.emit(&JournalEvent::Eval {
                step: steps as u64,
                test_loss: e.loss,
                test_accuracy: e.accuracy,
                rate: Some(new_rate.pct()),
                hot_steps: hot_steps as u64,
                cold_steps: cold_steps as u64,
                sim_seconds: timeline.total(),
            });
            rounds_done += 1;
            // Checkpoint at the round boundary: master tables are
            // authoritative and the scheduler has just adapted. Saving
            // charges no simulated time — a monitored run costs the same
            // as an unmonitored one.
            if let Some(dir) = &opts.checkpoint_dir {
                if opts.checkpoint_every_rounds > 0
                    && rounds_done.is_multiple_of(opts.checkpoint_every_rounds)
                {
                    // Flush deferred updates into the master before
                    // snapshotting: the checkpoint must carry no hidden
                    // state for resume to stay bit-identical (a resumed
                    // run restarts with an empty pool, and the continuing
                    // run also flushed here — same state either way).
                    if let Some(pool) = skip.as_mut() {
                        if let Some((flush, _)) = pool.flush_all() {
                            master.apply_sparse_grads(&flush, cfg.lr);
                        }
                    }
                    let mut dense_params = Vec::new();
                    engine.primary_ref().write_params(&mut dense_params);
                    let ck = TrainCheckpoint {
                        config_seed: cfg.seed,
                        epoch: epoch as u32,
                        hot_cursor: hp as u64,
                        cold_cursor: cp as u64,
                        steps: steps as u64,
                        hot_steps: hot_steps as u64,
                        cold_steps: cold_steps as u64,
                        transitions: transitions as u64,
                        gpus_active: gpus_active as u32,
                        cold_only,
                        scheduler: scheduler.state(),
                        timeline: timeline.clone(),
                        history: history.clone(),
                        faults: injector.log().to_vec(),
                        recoveries: recoveries.clone(),
                        dense_params,
                        tables: TrainCheckpoint::snapshot_master(&master),
                    };
                    // Transient I/O faults make the first save attempts
                    // fail; the bounded-backoff retry absorbs them.
                    let io_failures = injector
                        .fire(FaultKind::TransientIo, steps as u64)
                        .map(|f| 1 + injector.variation(&f, (retry.max_attempts - 1) as u64) as u32)
                        .unwrap_or(0);
                    let saved = retry_with_backoff(&retry, |attempt| {
                        if attempt <= io_failures {
                            Err(io::Error::other("injected transient i/o failure"))
                        } else {
                            ck.save(dir).map_err(|e| io::Error::other(e.to_string()))
                        }
                    });
                    match saved {
                        Ok(r) => {
                            if r.attempts > 1 {
                                timeline.add(Phase::Framework, r.waited_s);
                                recoveries.push(RecoveryAction::RetriedIo {
                                    attempts: r.attempts,
                                    waited_s: r.waited_s,
                                });
                                if enabled {
                                    telem.emit(&JournalEvent::Charge {
                                        step: steps as u64,
                                        label: "checkpoint-io".into(),
                                        phases: take_delta(&mut tl_prev, &timeline),
                                    });
                                    telem.emit(&JournalEvent::Recovery {
                                        step: steps as u64,
                                        action: "retried-io".into(),
                                        detail: format!(
                                            "{} attempts, {:.3}s backoff",
                                            r.attempts, r.waited_s
                                        ),
                                    });
                                }
                            }
                            telem.counter_add("train.checkpoints_saved", 1);
                        }
                        Err((e, attempts, _)) => {
                            // Checkpointing is best-effort: losing one
                            // snapshot must not kill the training run.
                            eprintln!("fae: checkpoint save failed after {attempts} attempts: {e}");
                        }
                    }
                }
            }
        }
    }

    // End of run: whatever the skip pool still holds is dropped — these
    // are the elided stale updates of arXiv 2404.04270. The final
    // evaluation (and the digest) see the master without them.
    if let Some(pool) = skip.as_mut() {
        pool.drop_pending();
    }
    let skip_stats = skip.as_ref().map(DeferredSparse::stats).unwrap_or_default();

    let final_test = evaluate(engine.primary(), &master, &test_batches);
    let train_sample: Vec<MiniBatch> = pre
        .hot_batches
        .iter()
        .take(cfg.eval_batches / 2 + 1)
        .chain(pre.cold_batches.iter().take(cfg.eval_batches / 2 + 1))
        .cloned()
        .collect();
    let final_train = evaluate(engine.primary(), &master, &train_sample);
    absorb_net(&mut engine, &mut timeline, &mut tl_prev, &mut net_faults, &mut recoveries, &telem);
    // Any transport charges drained after the last step have no Step
    // event to absorb them; journal the residual so the phase seconds
    // still sum to the final timeline.
    if enabled {
        let residual = take_delta(&mut tl_prev, &timeline);
        if residual.total() > 0.0 {
            telem.emit(&JournalEvent::Charge {
                step: steps as u64,
                label: "net-drain".into(),
                phases: residual,
            });
        }
    }
    if skip.is_some() {
        telem.counter_add("skip.deferred", skip_stats.deferred);
        telem.counter_add("skip.flushed_threshold", skip_stats.flushed_threshold);
        telem.counter_add("skip.flushed_access", skip_stats.flushed_access);
        telem.counter_add("skip.flushed_checkpoint", skip_stats.flushed_checkpoint);
        telem.counter_add("skip.dropped", skip_stats.dropped);
    }
    if oracle_batches.is_some() {
        telem.counter_add("oracle.prefetched_rows", oracle_stats.prefetched_rows);
        telem.counter_add("oracle.evicted_rows", oracle_stats.evicted_rows);
        telem.counter_add("oracle.hits", oracle_stats.hits);
        telem.counter_add("oracle.misses", oracle_stats.misses);
        telem.counter_add("oracle.moved_bytes", oracle_stats.moved_bytes);
        telem.counter_add(
            "oracle.saved_bytes",
            oracle_stats.full_bytes.saturating_sub(oracle_stats.moved_bytes),
        );
    }
    telem.emit(&JournalEvent::RunEnd {
        steps: steps as u64,
        hot_steps: hot_steps as u64,
        cold_steps: cold_steps as u64,
        transitions: transitions as u64,
        simulated_seconds: timeline.total(),
        final_accuracy: final_test.accuracy,
        final_rate: Some(scheduler.rate().pct()),
        interrupted,
    });
    telem.gauge_set("train.simulated_seconds", timeline.total());
    telem.gauge_set("train.final_accuracy", final_test.accuracy);
    telem.gauge_set(
        "train.steps_per_sec",
        if timeline.total() > 0.0 { steps as f64 / timeline.total() } else { 0.0 },
    );
    telem.gauge_set(
        "train.hot_step_share",
        if steps > 0 { hot_steps as f64 / steps as f64 } else { 0.0 },
    );
    span_train.add_sim(timeline.total() - sim_at_start);
    drop(span_train);
    let mut final_dense = Vec::new();
    engine.primary_ref().write_params(&mut final_dense);
    let digest = model_digest(&final_dense, &TrainCheckpoint::snapshot_master(&master));
    let mut faults = injector.log().to_vec();
    if !net_faults.is_empty() {
        faults.extend(net_faults);
        faults.sort_by_key(|f| f.step);
    }
    TrainReport {
        history,
        final_test,
        final_train,
        simulated_seconds: timeline.total(),
        avg_gpu_power_w: average_gpu_power(&timeline),
        timeline,
        hot_steps,
        cold_steps,
        transitions,
        final_rate: Some(scheduler.rate().pct()),
        faults,
        recoveries,
        interrupted,
        model_digest: digest,
        oracle: oracle_stats,
        skip: skip_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrator::Calibrator;
    use crate::classifier::classify_tables;
    use crate::input_processor::{preprocess_inputs, PreprocessConfig};
    use fae_data::{generate, GenOptions};

    fn small_run() -> (WorkloadSpec, Dataset, Dataset, Preprocessed, TrainConfig) {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(77, 6_000));
        let (train, test) = ds.split(0.2);
        let cal = Calibrator::default().calibrate(&train);
        // Force partial hotness: recalibrate table cutoffs so cold inputs
        // exist even though tiny tables are all under 1 MB.
        let all: Vec<usize> = (0..train.len()).collect();
        let counters = crate::calibrator::log_accesses(&train, &all);
        let mut cal2 = cal;
        for (t, tc) in cal2.tables.iter_mut().enumerate() {
            tc.de_facto_hot = false;
            tc.cutoff = (counters[t].total() / counters[t].rows() as u64).max(2);
        }
        let parts = classify_tables(&spec, &counters, &cal2);
        let pre =
            preprocess_inputs(&train, parts, &PreprocessConfig { minibatch_size: 64, seed: 5 });
        let cfg = TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() };
        (spec, train, test, pre, cfg)
    }

    #[test]
    fn baseline_trains_and_reports() {
        let (spec, train, test, _, cfg) = small_run();
        let r = train_baseline(&spec, &train, &test, &cfg);
        assert_eq!(r.cold_steps, train.len().div_ceil(64));
        assert_eq!(r.hot_steps, 0);
        assert!(r.simulated_seconds > 0.0);
        assert!(r.final_test.accuracy > 0.5, "accuracy {}", r.final_test.accuracy);
        assert!(!r.history.is_empty());
        assert!(r.avg_gpu_power_w > 50.0);
        assert!(r.faults.is_empty() && r.recoveries.is_empty() && !r.interrupted);
    }

    #[test]
    fn fae_trains_matches_baseline_accuracy_and_is_faster() {
        let (spec, train, test, pre, cfg) = small_run();
        assert!(!pre.hot_batches.is_empty(), "need hot batches for this test");
        assert!(!pre.cold_batches.is_empty(), "need cold batches for this test");
        let base = train_baseline(&spec, &train, &test, &cfg);
        let fae = train_fae(&spec, &pre, &test, &cfg);
        assert!(fae.hot_steps > 0 && fae.cold_steps > 0);
        assert!(fae.transitions >= 2);
        // Accuracy parity (Table III): within 3 points on this tiny run.
        assert!(
            (fae.final_test.accuracy - base.final_test.accuracy).abs() < 0.03,
            "accuracy diverged: fae {} vs base {}",
            fae.final_test.accuracy,
            base.final_test.accuracy
        );
        // Speed: FAE's simulated time must beat the baseline's.
        assert!(
            fae.simulated_seconds < base.simulated_seconds,
            "fae {}s !< baseline {}s",
            fae.simulated_seconds,
            base.simulated_seconds
        );
        assert!(fae.final_rate.is_some());
    }

    #[test]
    fn fae_with_no_hot_batches_degenerates_to_baseline_schedule() {
        let (spec, _train, test, mut pre, cfg) = small_run();
        pre.cold_batches.extend(pre.hot_batches.drain(..).map(|mut b| {
            b.kind = BatchKind::Cold;
            b
        }));
        let r = train_fae(&spec, &pre, &test, &cfg);
        assert_eq!(r.hot_steps, 0);
        assert!(r.cold_steps > 0);
    }

    #[test]
    fn more_gpus_at_fixed_tiny_batch_only_adds_coordination_cost() {
        // Holding the (tiny) batch fixed, extra GPUs cannot help — they
        // only add per-step coordination overhead, charged to AllReduce.
        // (The real weak-scaling sweep lives in the fig13 harness, where
        // the batch grows with the GPU count.)
        let (spec, _train, test, pre, mut cfg) = small_run();
        let r1 = train_fae(&spec, &pre, &test, &cfg);
        cfg.num_gpus = 4;
        let r4 = train_fae(&spec, &pre, &test, &cfg);
        assert!(r4.simulated_seconds > r1.simulated_seconds);
        let extra = r4.simulated_seconds - r1.simulated_seconds;
        let allreduce_delta = r4.timeline.get(fae_sysmodel::Phase::AllReduce)
            - r1.timeline.get(fae_sysmodel::Phase::AllReduce);
        assert!(
            allreduce_delta > 0.6 * extra,
            "coordination cost should dominate the 4-GPU overhead: {allreduce_delta} of {extra}"
        );
    }

    #[test]
    fn quantized_cold_tier_matches_f32_accuracy() {
        // Fig 12-style parity: the int8 cold tier must not cost accuracy.
        // Hot rows are exact f32 in both runs; only cold rows carry
        // quantization error, bounded by half an affine step per touch.
        let (spec, _train, test, pre, cfg) = small_run();
        let f32_run = train_fae(&spec, &pre, &test, &cfg);
        let q_cfg = TrainConfig { quantize_cold: true, ..cfg };
        let q_run = train_fae(&spec, &pre, &test, &q_cfg);
        assert!(
            (q_run.final_test.accuracy - f32_run.final_test.accuracy).abs() < 0.02,
            "quantized accuracy diverged: {} vs {}",
            q_run.final_test.accuracy,
            f32_run.final_test.accuracy
        );
        // The simulated schedule does not depend on the numeric tier.
        assert_eq!(q_run.hot_steps, f32_run.hot_steps);
        assert_eq!(q_run.cold_steps, f32_run.cold_steps);
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let (spec, _train, test, pre, cfg) = small_run();
        let a = train_fae(&spec, &pre, &test, &cfg);
        let b = train_fae(&spec, &pre, &test, &cfg);
        assert_eq!(a.final_test.loss.to_bits(), b.final_test.loss.to_bits());
        assert_eq!(a.simulated_seconds.to_bits(), b.simulated_seconds.to_bits());
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn explicit_zero_lookahead_and_skip_reproduce_the_seed_trainer() {
        // The seed-trainer contract: `--lookahead 0 --stale-skip 0` must
        // be the defaults, byte for byte — same digest, same cost.
        let (spec, _train, test, pre, cfg) = small_run();
        let base = train_fae(&spec, &pre, &test, &cfg);
        let zeroed = TrainConfig { lookahead: 0, stale_skip: 0.0, ..cfg };
        let z = train_fae(&spec, &pre, &test, &zeroed);
        assert_eq!(z.model_digest, base.model_digest);
        assert_eq!(z.simulated_seconds.to_bits(), base.simulated_seconds.to_bits());
        assert_eq!(z.skip, SkipStats::default());
        assert_eq!(z.oracle, OracleStats::default());
    }

    #[test]
    fn lookahead_changes_transfer_costs_but_not_numerics() {
        // The oracle's core guarantee: the master is frozen during a hot
        // block, so partial syncs read/write exactly the bytes the full
        // syncs would — any K gives the digest of K = 0; only the moved
        // bytes (and thus EmbedSync seconds) shrink.
        let (spec, _train, test, pre, cfg) = small_run();
        let full = train_fae(&spec, &pre, &test, &cfg);
        for k in [1usize, 4, 64] {
            let la = TrainConfig { lookahead: k, ..cfg.clone() };
            let r = train_fae(&spec, &pre, &test, &la);
            assert_eq!(r.model_digest, full.model_digest, "digest changed at K={k}");
            assert_eq!(r.hot_steps, full.hot_steps);
            assert_eq!(r.final_test.loss.to_bits(), full.final_test.loss.to_bits());
            assert_eq!(r.oracle.misses, 0, "exact oracle must never demand-fetch (K={k})");
            assert!(r.oracle.hits > 0);
            assert!(r.oracle.prefetched_rows > 0);
            assert!(
                r.oracle.moved_bytes < r.oracle.full_bytes,
                "partial syncs should move fewer bytes: {} vs {} (K={k})",
                r.oracle.moved_bytes,
                r.oracle.full_bytes
            );
            // Simulated time only wins once K covers the block: the sync
            // *count* then matches the full path while the bytes shrink.
            // Small K on a tiny bag trades bytes for per-transfer latency
            // (many small PCIe fetches) and can honestly lose.
            if k >= 64 {
                assert!(
                    r.simulated_seconds < full.simulated_seconds,
                    "block-covering lookahead must be cheaper: {} vs {} (K={k})",
                    r.simulated_seconds,
                    full.simulated_seconds
                );
            }
        }
    }

    #[test]
    fn stale_skip_defers_updates_and_keeps_accuracy() {
        // Fig 12-style parity for the stale-skip mode at the default
        // CLI threshold: deferred + dropped cold updates must not cost
        // accuracy beyond noise.
        let (spec, _train, test, pre, cfg) = small_run();
        let eager = train_fae(&spec, &pre, &test, &cfg);
        let skip_cfg = TrainConfig { stale_skip: 1e-4, ..cfg };
        let s = train_fae(&spec, &pre, &test, &skip_cfg);
        assert!(s.skip.deferred > 0, "threshold 1e-4 should defer some cold rows");
        assert!(
            s.skip.flushed_threshold + s.skip.flushed_access + s.skip.dropped > 0,
            "deferred rows must eventually flush or drop"
        );
        assert!(
            (s.final_test.accuracy - eager.final_test.accuracy).abs() < 0.02,
            "stale-skip accuracy diverged: {} vs {}",
            s.final_test.accuracy,
            eager.final_test.accuracy
        );
        // Skipping sparse-optimizer work can only shrink simulated time.
        assert!(s.simulated_seconds <= eager.simulated_seconds);
    }

    #[test]
    fn stale_skip_checkpoint_resume_stays_bit_identical() {
        // flush-on-checkpoint: a run killed mid-stream and resumed must
        // reproduce the uninterrupted checkpointed run bit for bit.
        let dir = std::env::temp_dir().join("fae-trainer-skip-resume");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create ckpt dir");
        let (spec, _train, test, pre, cfg) = small_run();
        let skip_cfg = TrainConfig { stale_skip: 1e-4, ..cfg };
        let opts_full = ResilienceOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every_rounds: 1,
            ..Default::default()
        };
        let full = train_fae_resilient(&spec, &pre, &test, &skip_cfg, &opts_full);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("recreate ckpt dir");
        let halted = train_fae_resilient(
            &spec,
            &pre,
            &test,
            &skip_cfg,
            &ResilienceOptions {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every_rounds: 1,
                halt_after_steps: Some(30),
                ..Default::default()
            },
        );
        assert!(halted.interrupted);
        let resumed = train_fae_resilient(
            &spec,
            &pre,
            &test,
            &skip_cfg,
            &ResilienceOptions {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every_rounds: 1,
                resume: true,
                ..Default::default()
            },
        );
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(resumed.model_digest, full.model_digest);
        assert_eq!(resumed.final_test.loss.to_bits(), full.final_test.loss.to_bits());
    }

    #[test]
    fn lookahead_and_skip_compose() {
        let (spec, _train, test, pre, cfg) = small_run();
        let combo = TrainConfig { lookahead: 4, stale_skip: 1e-4, ..cfg.clone() };
        let plain = train_fae(&spec, &pre, &test, &cfg);
        let r = train_fae(&spec, &pre, &test, &combo);
        assert!(r.skip.deferred > 0 && r.oracle.prefetched_rows > 0);
        assert_eq!(r.oracle.misses, 0);
        assert!(r.simulated_seconds < plain.simulated_seconds);
        assert!((r.final_test.accuracy - plain.final_test.accuracy).abs() < 0.02);
    }

    #[test]
    fn halt_after_steps_interrupts_mid_run() {
        let (spec, _train, test, pre, cfg) = small_run();
        let opts = ResilienceOptions { halt_after_steps: Some(10), ..Default::default() };
        let r = train_fae_resilient(&spec, &pre, &test, &cfg, &opts);
        assert!(r.interrupted);
        assert_eq!(r.hot_steps + r.cold_steps, 10);
    }
}
