//! Training engines: the CPU+GPU hybrid baseline and the FAE schedule.
//!
//! Both engines train with *real* numerics (the loss/accuracy results of
//! Fig 12 and Table III come out of actual SGD on the synthetic data) and
//! simultaneously charge every mini-batch to the `fae-sysmodel` cost model
//! (the latency/power results of Figs 13–15 and Tables IV–VI come out of
//! the accumulated [`Timeline`]).
//!
//! The FAE engine follows §III-C: lead with cold batches, issue blocks of
//! `rate%` cold then `rate%` hot, synchronise the hot bags CPU↔GPU at
//! every transition (charged via [`sync_cost`]), evaluate after each
//! round and let the [`ShuffleScheduler`] adapt the rate.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fae_data::{BatchKind, Dataset, MiniBatch, WorkloadKind, WorkloadSpec};
use fae_embed::SparseGrad;
use fae_models::{
    bridge, evaluate, train_step, Dlrm, EmbeddingSource, EvalReport, MasterEmbeddings, RecModel,
    Tbsm,
};
use fae_nn::Tensor;
use fae_sysmodel::power::average_gpu_power;
use fae_sysmodel::{step_cost, sync_cost, ExecMode, SystemConfig, Timeline};

use crate::input_processor::Preprocessed;
use crate::replicator::HotEmbeddings;
use crate::scheduler::{Rate, ShuffleScheduler};

/// Trainer configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// SGD learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Global mini-batch size (scaled with GPUs under weak scaling by the
    /// caller).
    pub minibatch_size: usize,
    /// Simulated GPU count (affects only the cost model).
    pub num_gpus: usize,
    /// Initial shuffle-scheduler rate (paper: 50).
    pub initial_rate: u32,
    /// Test mini-batches per evaluation.
    pub eval_batches: usize,
    /// Baseline: evaluate every this many steps.
    pub eval_interval: usize,
    /// Seed for model init and batch-order shuffles.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            epochs: 1,
            minibatch_size: 64,
            num_gpus: 1,
            initial_rate: 50,
            eval_batches: 4,
            eval_interval: 50,
            seed: 0xF00D,
        }
    }
}

/// One evaluation snapshot along the training run (Fig 12's curves).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Training steps completed when this evaluation ran.
    pub iteration: usize,
    /// Test-set BCE loss.
    pub test_loss: f64,
    /// Test-set accuracy.
    pub test_accuracy: f64,
    /// Scheduler rate after this round (FAE only).
    pub rate: Option<u32>,
}

/// Everything a training run produces.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Evaluation snapshots over training.
    pub history: Vec<EvalPoint>,
    /// Final held-out metrics.
    pub final_test: EvalReport,
    /// Final train-subset metrics (paper Table III reports both).
    pub final_train: EvalReport,
    /// Simulated phase-tagged time.
    pub timeline: Timeline,
    /// Simulated wall-clock seconds (== `timeline.total()`).
    pub simulated_seconds: f64,
    /// Simulated average per-GPU power (Table VI).
    pub avg_gpu_power_w: f64,
    /// Steps executed in pure-GPU hot mode.
    pub hot_steps: usize,
    /// Steps executed in hybrid (baseline/cold) mode.
    pub cold_steps: usize,
    /// Hot↔cold transitions (each charged an embedding sync).
    pub transitions: usize,
    /// Final scheduler rate (FAE only).
    pub final_rate: Option<u32>,
}

/// A recommendation model of either family, chosen by the workload spec.
pub enum AnyModel {
    /// DLRM (RMC2/RMC3).
    Dlrm(Box<Dlrm>),
    /// TBSM (RMC1).
    Tbsm(Box<Tbsm>),
}

impl AnyModel {
    /// Builds the model family the spec calls for.
    pub fn from_spec(spec: &WorkloadSpec, rng: &mut impl Rng) -> Self {
        match spec.kind {
            WorkloadKind::Dlrm => AnyModel::Dlrm(Box::new(Dlrm::from_spec(spec, rng))),
            WorkloadKind::Tbsm => AnyModel::Tbsm(Box::new(Tbsm::from_spec(spec, rng))),
        }
    }
}

impl RecModel for AnyModel {
    fn forward(&mut self, batch: &MiniBatch, emb: &dyn EmbeddingSource) -> Tensor {
        match self {
            AnyModel::Dlrm(m) => m.forward(batch, emb),
            AnyModel::Tbsm(m) => m.forward(batch, emb),
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Vec<SparseGrad> {
        match self {
            AnyModel::Dlrm(m) => m.backward(grad),
            AnyModel::Tbsm(m) => m.backward(grad),
        }
    }

    fn sgd_step(&mut self, lr: f32) {
        match self {
            AnyModel::Dlrm(m) => m.sgd_step(lr),
            AnyModel::Tbsm(m) => m.sgd_step(lr),
        }
    }

    fn zero_grad(&mut self) {
        match self {
            AnyModel::Dlrm(m) => m.zero_grad(),
            AnyModel::Tbsm(m) => m.zero_grad(),
        }
    }

    fn dense_param_count(&self) -> usize {
        match self {
            AnyModel::Dlrm(m) => m.dense_param_count(),
            AnyModel::Tbsm(m) => m.dense_param_count(),
        }
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        match self {
            AnyModel::Dlrm(m) => m.write_params(out),
            AnyModel::Tbsm(m) => m.write_params(out),
        }
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        match self {
            AnyModel::Dlrm(m) => m.read_params(src),
            AnyModel::Tbsm(m) => m.read_params(src),
        }
    }
}

/// Splits the head of a test dataset into evaluation mini-batches.
pub fn make_test_batches(test: &Dataset, batch_size: usize, max_batches: usize) -> Vec<MiniBatch> {
    let n = test.len();
    (0..n)
        .collect::<Vec<_>>()
        .chunks(batch_size)
        .take(max_batches)
        .map(|c| MiniBatch::gather(test, c, BatchKind::Unclassified))
        .collect()
}

/// Per-batch-size memoised step costs: `step_cost` is pure in the batch
/// size, and an epoch reuses two sizes (full + remainder).
struct CostCache<'a> {
    profile: &'a fae_sysmodel::ModelProfile,
    sys: &'a SystemConfig,
    mode: ExecMode,
    cache: HashMap<usize, Timeline>,
}

impl<'a> CostCache<'a> {
    fn new(profile: &'a fae_sysmodel::ModelProfile, sys: &'a SystemConfig, mode: ExecMode) -> Self {
        Self { profile, sys, mode, cache: HashMap::new() }
    }

    fn charge(&mut self, timeline: &mut Timeline, batch: usize) {
        let entry = self
            .cache
            .entry(batch)
            .or_insert_with(|| step_cost(self.profile, self.sys, self.mode, batch));
        timeline.merge(entry);
    }
}

/// Trains the baseline: every mini-batch in hybrid CPU-GPU mode.
pub fn train_baseline(
    spec: &WorkloadSpec,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = AnyModel::from_spec(spec, &mut rng);
    let mut master = MasterEmbeddings::from_spec(spec, &mut rng);
    let test_batches = make_test_batches(test, cfg.minibatch_size, cfg.eval_batches);
    let profile = bridge::profile_for(spec, 0.0);
    let sys = SystemConfig::paper_server(cfg.num_gpus);
    let mut costs = CostCache::new(&profile, &sys, ExecMode::BaselineHybrid);

    let mut timeline = Timeline::new();
    let mut history = Vec::new();
    let mut steps = 0usize;
    let mut order: Vec<usize> = (0..train.len()).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(cfg.minibatch_size) {
            let mb = MiniBatch::gather(train, chunk, BatchKind::Unclassified);
            train_step(&mut model, &mut master, &mb, cfg.lr);
            costs.charge(&mut timeline, mb.len());
            steps += 1;
            if steps.is_multiple_of(cfg.eval_interval) {
                let e = evaluate(&mut model, &master, &test_batches);
                history.push(EvalPoint {
                    iteration: steps,
                    test_loss: e.loss,
                    test_accuracy: e.accuracy,
                    rate: None,
                });
            }
        }
    }
    let final_test = evaluate(&mut model, &master, &test_batches);
    let train_batches = make_test_batches(train, cfg.minibatch_size, cfg.eval_batches);
    let final_train = evaluate(&mut model, &master, &train_batches);
    history.push(EvalPoint {
        iteration: steps,
        test_loss: final_test.loss,
        test_accuracy: final_test.accuracy,
        rate: None,
    });
    TrainReport {
        history,
        final_test,
        final_train,
        simulated_seconds: timeline.total(),
        avg_gpu_power_w: average_gpu_power(&timeline),
        timeline,
        hot_steps: 0,
        cold_steps: steps,
        transitions: 0,
        final_rate: None,
    }
}

/// Trains with the FAE framework over a preprocessed hot/cold stream.
pub fn train_fae(
    spec: &WorkloadSpec,
    pre: &Preprocessed,
    test: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = AnyModel::from_spec(spec, &mut rng);
    let mut master = MasterEmbeddings::from_spec(spec, &mut rng);
    let mut hot = HotEmbeddings::build(&master, pre.partitions.to_vec());
    let hot_bytes = hot.hot_bytes() as f64;
    let test_batches = make_test_batches(test, cfg.minibatch_size, cfg.eval_batches);
    let profile = bridge::profile_for(spec, hot_bytes);
    let sys = SystemConfig::paper_server(cfg.num_gpus);
    let mut cold_costs = CostCache::new(&profile, &sys, ExecMode::BaselineHybrid);
    let mut hot_costs = CostCache::new(&profile, &sys, ExecMode::FaeHotGpu);
    let sync = sync_cost(&sys, hot_bytes);

    let mut scheduler = ShuffleScheduler::new(Rate::new(cfg.initial_rate));
    let mut timeline = Timeline::new();
    // Initial replication of the hot bags onto the GPUs.
    timeline.merge(&sync);

    let mut history = Vec::new();
    let (mut hot_steps, mut cold_steps, mut transitions, mut steps) = (0usize, 0usize, 0usize, 0);
    let n_hot = pre.hot_batches.len();
    let n_cold = pre.cold_batches.len();

    for _ in 0..cfg.epochs {
        let mut hot_order: Vec<usize> = (0..n_hot).collect();
        let mut cold_order: Vec<usize> = (0..n_cold).collect();
        hot_order.shuffle(&mut rng);
        cold_order.shuffle(&mut rng);
        let (mut hp, mut cp) = (0usize, 0usize);

        // §III-C: "The scheduler always begins with training on cold
        // inputs", then alternates rate-sized blocks.
        while hp < n_hot || cp < n_cold {
            let rate = scheduler.rate();
            // Cold block on the CPU master tables.
            if cp < n_cold {
                let k = rate.block_len(n_cold).min(n_cold - cp);
                for &b in &cold_order[cp..cp + k] {
                    let mb = &pre.cold_batches[b];
                    train_step(&mut model, &mut master, mb, cfg.lr);
                    cold_costs.charge(&mut timeline, mb.len());
                    cold_steps += 1;
                    steps += 1;
                }
                cp += k;
            }
            // Hot block on the replicated GPU bags, bracketed by syncs.
            if hp < n_hot {
                hot.refresh_from(&master);
                timeline.merge(&sync);
                transitions += 1;
                let k = rate.block_len(n_hot).min(n_hot - hp);
                for &b in &hot_order[hp..hp + k] {
                    let mb = &pre.hot_batches[b];
                    train_step(&mut model, &mut hot, mb, cfg.lr);
                    hot_costs.charge(&mut timeline, mb.len());
                    hot_steps += 1;
                    steps += 1;
                }
                hp += k;
                hot.write_back(&mut master);
                timeline.merge(&sync);
                transitions += 1;
            }
            // Evaluate on the (synchronised) master copy and adapt.
            let e = evaluate(&mut model, &master, &test_batches);
            let new_rate = scheduler.observe_test_loss(e.loss);
            history.push(EvalPoint {
                iteration: steps,
                test_loss: e.loss,
                test_accuracy: e.accuracy,
                rate: Some(new_rate.pct()),
            });
        }
    }

    let final_test = evaluate(&mut model, &master, &test_batches);
    let train_sample: Vec<MiniBatch> = pre
        .hot_batches
        .iter()
        .take(cfg.eval_batches / 2 + 1)
        .chain(pre.cold_batches.iter().take(cfg.eval_batches / 2 + 1))
        .cloned()
        .collect();
    let final_train = evaluate(&mut model, &master, &train_sample);
    TrainReport {
        history,
        final_test,
        final_train,
        simulated_seconds: timeline.total(),
        avg_gpu_power_w: average_gpu_power(&timeline),
        timeline,
        hot_steps,
        cold_steps,
        transitions,
        final_rate: Some(scheduler.rate().pct()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrator::Calibrator;
    use crate::classifier::classify_tables;
    use crate::input_processor::{preprocess_inputs, PreprocessConfig};
    use fae_data::{generate, GenOptions};

    fn small_run() -> (WorkloadSpec, Dataset, Dataset, Preprocessed, TrainConfig) {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(77, 6_000));
        let (train, test) = ds.split(0.2);
        let cal = Calibrator::default().calibrate(&train);
        // Force partial hotness: recalibrate table cutoffs so cold inputs
        // exist even though tiny tables are all under 1 MB.
        let all: Vec<usize> = (0..train.len()).collect();
        let counters = crate::calibrator::log_accesses(&train, &all);
        let mut cal2 = cal;
        for (t, tc) in cal2.tables.iter_mut().enumerate() {
            tc.de_facto_hot = false;
            tc.cutoff = (counters[t].total() / counters[t].rows() as u64).max(2);
        }
        let parts = classify_tables(&spec, &counters, &cal2);
        let pre = preprocess_inputs(
            &train,
            parts,
            &PreprocessConfig { minibatch_size: 64, seed: 5 },
        );
        let cfg = TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() };
        (spec, train, test, pre, cfg)
    }

    #[test]
    fn baseline_trains_and_reports() {
        let (spec, train, test, _, cfg) = small_run();
        let r = train_baseline(&spec, &train, &test, &cfg);
        assert_eq!(r.cold_steps, train.len().div_ceil(64));
        assert_eq!(r.hot_steps, 0);
        assert!(r.simulated_seconds > 0.0);
        assert!(r.final_test.accuracy > 0.5, "accuracy {}", r.final_test.accuracy);
        assert!(!r.history.is_empty());
        assert!(r.avg_gpu_power_w > 50.0);
    }

    #[test]
    fn fae_trains_matches_baseline_accuracy_and_is_faster() {
        let (spec, train, test, pre, cfg) = small_run();
        assert!(!pre.hot_batches.is_empty(), "need hot batches for this test");
        assert!(!pre.cold_batches.is_empty(), "need cold batches for this test");
        let base = train_baseline(&spec, &train, &test, &cfg);
        let fae = train_fae(&spec, &pre, &test, &cfg);
        assert!(fae.hot_steps > 0 && fae.cold_steps > 0);
        assert!(fae.transitions >= 2);
        // Accuracy parity (Table III): within 3 points on this tiny run.
        assert!(
            (fae.final_test.accuracy - base.final_test.accuracy).abs() < 0.03,
            "accuracy diverged: fae {} vs base {}",
            fae.final_test.accuracy,
            base.final_test.accuracy
        );
        // Speed: FAE's simulated time must beat the baseline's.
        assert!(
            fae.simulated_seconds < base.simulated_seconds,
            "fae {}s !< baseline {}s",
            fae.simulated_seconds,
            base.simulated_seconds
        );
        assert!(fae.final_rate.is_some());
    }

    #[test]
    fn fae_with_no_hot_batches_degenerates_to_baseline_schedule() {
        let (spec, _train, test, mut pre, cfg) = small_run();
        pre.cold_batches.extend(pre.hot_batches.drain(..).map(|mut b| {
            b.kind = BatchKind::Cold;
            b
        }));
        let r = train_fae(&spec, &pre, &test, &cfg);
        assert_eq!(r.hot_steps, 0);
        assert!(r.cold_steps > 0);
    }

    #[test]
    fn more_gpus_at_fixed_tiny_batch_only_adds_coordination_cost() {
        // Holding the (tiny) batch fixed, extra GPUs cannot help — they
        // only add per-step coordination overhead, charged to AllReduce.
        // (The real weak-scaling sweep lives in the fig13 harness, where
        // the batch grows with the GPU count.)
        let (spec, _train, test, pre, mut cfg) = small_run();
        let r1 = train_fae(&spec, &pre, &test, &cfg);
        cfg.num_gpus = 4;
        let r4 = train_fae(&spec, &pre, &test, &cfg);
        assert!(r4.simulated_seconds > r1.simulated_seconds);
        let extra = r4.simulated_seconds - r1.simulated_seconds;
        let allreduce_delta = r4.timeline.get(fae_sysmodel::Phase::AllReduce)
            - r1.timeline.get(fae_sysmodel::Phase::AllReduce);
        assert!(
            allreduce_delta > 0.6 * extra,
            "coordination cost should dominate the 4-GPU overhead: {allreduce_delta} of {extra}"
        );
    }
}
