//! # fae-core — the FAE framework
//!
//! The paper's contribution (§III), end to end:
//!
//! * [`calibrator`] — the static profiling pipeline: the **sparse input
//!   sampler** (5% of inputs), the **embedding logger** (per-row access
//!   counts), the **Rand-Em Box** (CLT-based hot-size estimation from 35
//!   random 1024-row chunks at 99.9% confidence) and the **statistical
//!   optimizer** that walks a threshold ladder until the hot bag fits the
//!   GPU memory budget `L`,
//! * [`classifier`] — one-pass tagging of hot embedding rows per table,
//! * [`input_processor`] — parallel hot/cold classification of sparse
//!   inputs and packing into *pure* hot / *pure* cold mini-batches,
//!   persisted in the FAE format,
//! * [`replicator`] — the hot-embedding source replicated per GPU, with
//!   CPU↔GPU synchronisation at schedule transitions,
//! * [`scheduler`] — the **Shuffle Scheduler**'s adaptive hot/cold
//!   interleaving rate (Eq. 7),
//! * [`trainer`] — baseline and FAE training loops combining real
//!   numerics (loss/accuracy, Fig 12) with the `fae-sysmodel` cost model
//!   (latency/power, Figs 13–15, Tables IV–VI),
//! * [`pipeline`] — one-call convenience wrappers used by the examples
//!   and the experiment harness.

pub mod adaptive;
pub mod artifacts;
pub mod calibrator;
pub mod classifier;
pub mod convergence;
pub mod distributed;
pub mod drift;
pub mod input_processor;
pub mod pipeline;
pub mod replicator;
pub mod scheduler;
pub mod simsched;
pub mod trainer;

pub use calibrator::{CalibrationResult, Calibrator, CalibratorConfig, RandEmBox, RandEmEstimate};
pub use classifier::classify_tables;
pub use adaptive::{train_fae_adaptive, AdaptiveConfig, AdaptiveReport};
pub use distributed::DataParallel;
pub use drift::{hot_access_share, DriftMonitor, DriftVerdict};
pub use input_processor::{preprocess_inputs, PreprocessConfig, Preprocessed};
pub use replicator::HotEmbeddings;
pub use scheduler::{Rate, ShuffleScheduler};
pub use trainer::{
    train_baseline, train_fae, AnyModel, EvalPoint, TrainConfig, TrainReport,
};
