//! # fae-core — the FAE framework
//!
//! The paper's contribution (§III), end to end:
//!
//! * [`calibrator`] — the static profiling pipeline: the **sparse input
//!   sampler** (5% of inputs), the **embedding logger** (per-row access
//!   counts), the **Rand-Em Box** (CLT-based hot-size estimation from 35
//!   random 1024-row chunks at 99.9% confidence) and the **statistical
//!   optimizer** that walks a threshold ladder until the hot bag fits the
//!   GPU memory budget `L`,
//! * [`classifier`] — one-pass tagging of hot embedding rows per table,
//! * [`input_processor`] — parallel hot/cold classification of sparse
//!   inputs and packing into *pure* hot / *pure* cold mini-batches,
//!   persisted in the FAE format,
//! * [`replicator`] — the hot-embedding source replicated per GPU, with
//!   CPU↔GPU synchronisation at schedule transitions,
//! * [`exec`] — the parallel execution engine: per-device worker threads
//!   over contiguous batch shards with deterministic gradient reduction,
//! * [`oracle`] — the BagPipe-style lookahead cache: exact next-K-batch
//!   access sets over the known mini-batch stream, driving prefetch and
//!   eviction of hot rows at the schedule transitions,
//! * [`scheduler`] — the **Shuffle Scheduler**'s adaptive hot/cold
//!   interleaving rate (Eq. 7),
//! * [`trainer`] — baseline and FAE training loops combining real
//!   numerics (loss/accuracy, Fig 12) with the `fae-sysmodel` cost model
//!   (latency/power, Figs 13–15, Tables IV–VI),
//! * [`pipeline`] — one-call convenience wrappers used by the examples
//!   and the experiment harness, plus the double-buffered mini-batch
//!   prefetcher that decodes FAE-format blocks on a background thread,
//! * [`faults`] — deterministic, seed-driven fault injection (device
//!   loss, replication OOM, sync failure, artifact corruption, transient
//!   I/O) with bounded-backoff retry plumbing,
//! * [`checkpoint`] — binary training checkpoints (atomic write, CRC-32
//!   verified) that make an interrupted run resume bit-identically.

#![forbid(unsafe_code)]
pub mod adaptive;
pub mod artifacts;
pub mod calibrator;
pub mod checkpoint;
pub mod classifier;
pub mod convergence;
pub mod distributed;
pub mod drift;
pub mod exec;
pub mod faults;
pub mod input_processor;
pub mod oracle;
pub mod pipeline;
pub mod replicator;
pub mod scheduler;
pub mod simsched;
pub mod trainer;

pub use adaptive::{train_fae_adaptive, AdaptiveConfig, AdaptiveReport};
pub use calibrator::{CalibrationResult, Calibrator, CalibratorConfig, RandEmBox, RandEmEstimate};
pub use checkpoint::model_digest;
pub use checkpoint::{latest_in, CheckpointError, TableSnapshot, TrainCheckpoint};
pub use classifier::classify_tables;
pub use distributed::DataParallel;
pub use drift::{hot_access_share, DriftMonitor, DriftVerdict};
pub use exec::{compute_shard, reduce_shards, NetEvents, ParallelEngine, ShardOutput, StepEngine};
pub use fae_telemetry::Telemetry;
pub use faults::{
    retry_with_backoff, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultPlanError,
    InjectedFault, RecoveryAction, RetryPolicy,
};
pub use input_processor::{preprocess_inputs, PreprocessConfig, Preprocessed};
pub use oracle::{plan_decisions, AccessSet, LookaheadOracle, OracleStats, StepDecision};
pub use pipeline::{prefetch_fae_blocks, Prefetcher};
pub use replicator::HotEmbeddings;
pub use scheduler::{Rate, SchedulerState, ShuffleScheduler};
pub use trainer::{
    train_baseline, train_fae, train_fae_resilient, train_fae_with_engine, AnyModel, EvalPoint,
    ResilienceOptions, TrainConfig, TrainReport,
};
