//! The Rand-Em Box (§III-A.3): CLT-based estimation of hot-embedding-table
//! size without scanning full tables.
//!
//! For a table with `N` rows and an access cutoff `H_zt`, the box draws
//! `n = 35` random chunks of `m = 1024` consecutive rows from the access
//! counter, counts rows at/above the cutoff in each chunk (Eqs 2–3),
//! takes the sample mean `ȳ_t` (Eq 4) and forms the 99.9% t-interval
//! `ȳ_t ± 3.340·s/√35` (Eq 6, valid because `N ≫ n` drops the finite-
//! population factor). The hot-row estimate scales the chunk mean to the
//! table: `N · ȳ_t / m`.

use rand::Rng;

use fae_embed::AccessCounter;

/// Configuration of the Rand-Em Box sampling.
#[derive(Clone, Copy, Debug)]
pub struct RandEmBox {
    /// Number of sampled chunks (paper: n = 35, ≥30 for CLT validity).
    pub chunks: usize,
    /// Rows per chunk (paper: m = 1024, giving 1/1024 precision).
    pub chunk_len: usize,
    /// Student-t critical value (paper: 3.340 for 99.9% CI at n = 35).
    pub t_value: f64,
}

impl Default for RandEmBox {
    fn default() -> Self {
        Self { chunks: 35, chunk_len: 1024, t_value: 3.340 }
    }
}

/// The box's output for one `(table, cutoff)` pair.
#[derive(Clone, Copy, Debug)]
pub struct RandEmEstimate {
    /// Mean hot rows per sampled chunk (`ȳ_t`).
    pub chunk_mean: f64,
    /// Half-width of the confidence interval on `ȳ_t`.
    pub ci_half_width: f64,
    /// Point estimate of hot rows in the whole table.
    pub hot_rows: f64,
    /// Upper-confidence-bound estimate of hot rows (used for capacity
    /// planning so the bag never overflows the budget).
    pub hot_rows_upper: f64,
    /// Rows actually inspected (≤ table size; the latency win of Fig 10).
    pub rows_scanned: usize,
}

impl RandEmBox {
    /// Estimates how many rows of `counter` meet `cutoff` accesses.
    ///
    /// Tables not much larger than one sampling pass (`n·m` rows) are
    /// scanned exactly — sampling only pays off when it reads less than
    /// the full table.
    pub fn estimate(
        &self,
        counter: &AccessCounter,
        cutoff: u64,
        rng: &mut impl Rng,
    ) -> RandEmEstimate {
        let n_rows = counter.rows();
        let sample_span = self.chunks * self.chunk_len;
        if n_rows <= sample_span {
            let exact = counter.rows_at_or_above(cutoff) as f64;
            return RandEmEstimate {
                chunk_mean: exact,
                ci_half_width: 0.0,
                hot_rows: exact,
                hot_rows_upper: exact,
                rows_scanned: n_rows,
            };
        }
        let counts = counter.counts();
        let mut ys = Vec::with_capacity(self.chunks);
        for _ in 0..self.chunks {
            let start = rng.gen_range(0..n_rows - self.chunk_len);
            let y = counts[start..start + self.chunk_len].iter().filter(|&&k| k >= cutoff).count();
            ys.push(y as f64);
        }
        let n = self.chunks as f64;
        let mean = ys.iter().sum::<f64>() / n;
        let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / (n - 1.0);
        let ci = self.t_value * (var / n).sqrt();
        let scale = n_rows as f64 / self.chunk_len as f64;
        RandEmEstimate {
            chunk_mean: mean,
            ci_half_width: ci,
            hot_rows: mean * scale,
            hot_rows_upper: (mean + ci) * scale,
            rows_scanned: sample_span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A counter where every `period`-th row is hot (uniformly scattered
    /// hotness, the layout the shuffled Zipf id space produces).
    fn periodic_counter(rows: usize, period: usize, hot_count: u64) -> AccessCounter {
        let mut c = AccessCounter::new(rows);
        for r in (0..rows).step_by(period) {
            for _ in 0..hot_count {
                c.record(r as u32);
            }
        }
        c
    }

    #[test]
    fn small_tables_are_scanned_exactly() {
        let c = periodic_counter(1_000, 10, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let est = RandEmBox::default().estimate(&c, 5, &mut rng);
        assert_eq!(est.hot_rows, 100.0);
        assert_eq!(est.ci_half_width, 0.0);
        assert_eq!(est.rows_scanned, 1_000);
    }

    #[test]
    fn estimate_close_to_truth_on_large_table() {
        let rows = 1_000_000;
        let c = periodic_counter(rows, 16, 3); // 62_500 hot rows
        let mut rng = StdRng::seed_from_u64(2);
        let est = RandEmBox::default().estimate(&c, 3, &mut rng);
        let truth = c.rows_at_or_above(3) as f64;
        let rel = (est.hot_rows - truth).abs() / truth;
        // Paper (Fig 9): within 10% of measured.
        assert!(rel < 0.10, "estimate {} vs truth {truth} ({rel:.3} rel)", est.hot_rows);
        assert!(est.hot_rows_upper >= est.hot_rows);
        assert!(est.rows_scanned < rows / 10, "sampling should scan ≪ table");
    }

    #[test]
    fn upper_bound_usually_covers_truth() {
        // 99.9% CI should cover the truth in the vast majority of seeds.
        let rows = 500_000;
        let c = periodic_counter(rows, 8, 2);
        let truth = c.rows_at_or_above(2) as f64;
        let mut covered = 0;
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let est = RandEmBox::default().estimate(&c, 2, &mut rng);
            if est.hot_rows_upper >= truth {
                covered += 1;
            }
        }
        assert!(covered >= 45, "upper bound covered truth only {covered}/50 times");
    }

    #[test]
    fn zero_cutoff_marks_everything_hot() {
        let c = periodic_counter(200_000, 4, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let est = RandEmBox::default().estimate(&c, 0, &mut rng);
        assert!((est.hot_rows - 200_000.0).abs() < 1.0);
    }

    #[test]
    fn impossible_cutoff_marks_nothing_hot() {
        let c = periodic_counter(200_000, 4, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let est = RandEmBox::default().estimate(&c, u64::MAX, &mut rng);
        assert_eq!(est.hot_rows, 0.0);
    }
}
