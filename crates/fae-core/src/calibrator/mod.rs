//! The Calibrator (§III-A): chooses the access threshold that makes the
//! hot-embedding bag fit the GPU memory budget, using sampling at both
//! ends (inputs and embedding rows) to stay cheap.
//!
//! Pipeline: [`sample_inputs`] (the *sparse input sampler*, x = 5%) →
//! [`log_accesses`] (the *embedding logger*) → the *statistical optimizer*
//! ([`Calibrator::calibrate`]) which walks a descending threshold ladder,
//! invoking the [`RandEmBox`] per large table, and keeps the smallest
//! threshold whose estimated hot size fits `L`.

mod randem;

pub use randem::{RandEmBox, RandEmEstimate};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fae_data::Dataset;
use fae_embed::AccessCounter;
use fae_telemetry::Telemetry;

/// Calibrator configuration (all defaults follow §III-A).
#[derive(Clone, Debug)]
pub struct CalibratorConfig {
    /// Fraction of inputs sampled by the sparse input sampler (paper: 5%).
    pub sample_rate: f64,
    /// GPU memory allocated to hot embeddings, bytes (paper: L = 256 MB).
    pub gpu_budget_bytes: usize,
    /// Rand-Em Box sampling parameters.
    pub randem: RandEmBox,
    /// Descending ladder of access thresholds, as fractions of a table's
    /// total sampled accesses (the knob of Fig 6).
    pub threshold_ladder: Vec<f64>,
    /// Tables smaller than this many bytes are de-facto hot (paper: 1 MB).
    pub small_table_bytes: usize,
    /// RNG seed for both samplers.
    pub seed: u64,
}

impl Default for CalibratorConfig {
    fn default() -> Self {
        Self {
            sample_rate: 0.05,
            gpu_budget_bytes: 256 << 20,
            randem: RandEmBox::default(),
            threshold_ladder: vec![
                1e-2, 5e-3, 2e-3, 1e-3, 5e-4, 2e-4, 1e-4, 5e-5, 2e-5, 1e-5, 5e-6, 2e-6, 1e-6,
            ],
            small_table_bytes: 1 << 20,
            seed: 0xCA11B,
        }
    }
}

/// Per-table calibration outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableCalibration {
    /// Absolute access cutoff (`H_zt = t × total_accesses`); 0 means the
    /// whole table is hot (small table).
    pub cutoff: u64,
    /// Estimated hot rows (upper confidence bound).
    pub est_hot_rows: f64,
    /// Whether the table was classified wholesale as hot (< 1 MB).
    pub de_facto_hot: bool,
}

/// The calibrator's final answer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// The chosen threshold `t` (fraction of total accesses).
    pub threshold: f64,
    /// Per-table cutoffs and estimates.
    pub tables: Vec<TableCalibration>,
    /// Estimated total hot-bag bytes (upper confidence bound).
    pub est_hot_bytes: f64,
    /// Whether the estimate fits the budget (false only when even the
    /// largest ladder threshold overflows `L`).
    pub fits_budget: bool,
    /// How many inputs the sparse input sampler drew.
    pub sampled_inputs: usize,
}

/// The sparse input sampler (§III-A.1): draws `rate` of the dataset's
/// input indices uniformly at random, preserving order.
pub fn sample_inputs(ds: &Dataset, rate: f64, rng: &mut impl Rng) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&rate), "sample rate out of range");
    (0..ds.len()).filter(|_| rng.gen_bool(rate)).collect()
}

/// The embedding logger (§III-A.2): per-row access counts over the given
/// input indices, one counter per table.
pub fn log_accesses(ds: &Dataset, samples: &[usize]) -> Vec<AccessCounter> {
    let mut counters: Vec<AccessCounter> =
        ds.spec.tables.iter().map(|t| AccessCounter::new(t.rows)).collect();
    for &s in samples {
        for (t, bag) in ds.bags_of(s) {
            counters[t].record_all(bag);
        }
    }
    counters
}

/// The calibrator.
#[derive(Clone, Debug, Default)]
pub struct Calibrator {
    /// Configuration knobs.
    pub config: CalibratorConfig,
    telemetry: Telemetry,
}

impl Calibrator {
    /// Creates a calibrator with the given config.
    pub fn new(config: CalibratorConfig) -> Self {
        Self { config, telemetry: Telemetry::disabled() }
    }

    /// Attaches a telemetry handle: each calibration stage runs under a
    /// span (`calibrate/sample`, `calibrate/log`, `calibrate/converge`)
    /// and the outcome is exported as gauges.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Runs the full static pipeline on a dataset: sample → log →
    /// converge on a threshold.
    pub fn calibrate(&self, ds: &Dataset) -> CalibrationResult {
        let _span = self.telemetry.span("calibrate");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let samples = {
            let _s = self.telemetry.span("calibrate/sample");
            sample_inputs(ds, self.config.sample_rate, &mut rng)
        };
        let counters = {
            let _s = self.telemetry.span("calibrate/log");
            log_accesses(ds, &samples)
        };
        let mut result = {
            let _s = self.telemetry.span("calibrate/converge");
            self.converge(ds, &counters, &mut rng)
        };
        result.sampled_inputs = samples.len();
        self.telemetry.counter_add("calibrator.sampled_inputs", result.sampled_inputs as u64);
        self.telemetry.gauge_set("calibrator.threshold", result.threshold);
        self.telemetry.gauge_set("calibrator.est_hot_bytes", result.est_hot_bytes);
        result
    }

    /// The statistical optimizer (§III-A.3): walks the threshold ladder
    /// from the largest threshold (smallest hot set) downwards, keeping
    /// the smallest threshold whose Rand-Em-estimated hot size fits `L`.
    pub fn converge(
        &self,
        ds: &Dataset,
        counters: &[AccessCounter],
        rng: &mut StdRng,
    ) -> CalibrationResult {
        let spec = &ds.spec;
        assert_eq!(counters.len(), spec.tables.len(), "one counter per table");
        let row_bytes = spec.embedding_dim * std::mem::size_of::<f32>();

        let mut ladder = self.config.threshold_ladder.clone();
        ladder.sort_by(|a, b| b.total_cmp(a));
        assert!(!ladder.is_empty(), "threshold ladder may not be empty");

        // Small tables ride along for free.
        let small: Vec<bool> = (0..spec.tables.len())
            .map(|t| spec.table_bytes(t) < self.config.small_table_bytes)
            .collect();
        let small_bytes: f64 = small
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(t, _)| spec.table_bytes(t) as f64)
            .sum();

        let evaluate = |t_frac: f64, rng: &mut StdRng| -> (Vec<TableCalibration>, f64) {
            let mut tables = Vec::with_capacity(spec.tables.len());
            let mut bytes = small_bytes;
            for (z, counter) in counters.iter().enumerate() {
                if small[z] {
                    tables.push(TableCalibration {
                        cutoff: 0,
                        est_hot_rows: spec.tables[z].rows as f64,
                        de_facto_hot: true,
                    });
                    continue;
                }
                let cutoff = ((t_frac * counter.total() as f64).ceil() as u64).max(1);
                let est = self.config.randem.estimate(counter, cutoff, rng);
                bytes += est.hot_rows_upper * row_bytes as f64;
                tables.push(TableCalibration {
                    cutoff,
                    est_hot_rows: est.hot_rows_upper,
                    de_facto_hot: false,
                });
            }
            (tables, bytes)
        };

        let budget = self.config.gpu_budget_bytes as f64;
        let mut best: Option<CalibrationResult> = None;
        for &t_frac in &ladder {
            let (tables, bytes) = evaluate(t_frac, rng);
            if bytes <= budget {
                best = Some(CalibrationResult {
                    threshold: t_frac,
                    tables,
                    est_hot_bytes: bytes,
                    fits_budget: true,
                    sampled_inputs: 0,
                });
            } else if best.is_some() {
                // Estimates grow as the threshold falls; once we overflow
                // after having fit, smaller thresholds only overflow more.
                break;
            } else {
                // Even this threshold overflows; remember it as a fallback
                // (the largest threshold gives the smallest hot set).
                best.get_or_insert(CalibrationResult {
                    threshold: t_frac,
                    tables,
                    est_hot_bytes: bytes,
                    fits_budget: false,
                    sampled_inputs: 0,
                });
                break;
            }
        }
        // fae-lint: allow(no-panic, reason = "ladder is asserted non-empty above and every branch of the first loop iteration seeds `best`")
        best.expect("ladder is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::{generate, GenOptions, WorkloadSpec};

    fn dataset() -> Dataset {
        generate(&WorkloadSpec::tiny_test(), &GenOptions::sized(21, 20_000))
    }

    #[test]
    fn sampler_draws_expected_fraction() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_inputs(&ds, 0.05, &mut rng);
        let frac = s.len() as f64 / ds.len() as f64;
        assert!((0.04..0.06).contains(&frac), "sampled {frac}");
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sample must be ordered+unique");
    }

    #[test]
    fn sampled_profile_tracks_full_profile() {
        // Fig 7: a 5% sample reproduces the access signature.
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let all: Vec<usize> = (0..ds.len()).collect();
        let full = log_accesses(&ds, &all);
        let sample = sample_inputs(&ds, 0.05, &mut rng);
        let sampled = log_accesses(&ds, &sample);
        // Compare hot-row share at the ~1% most-accessed level.
        let full_share = full[0].access_share_at_or_above(
            *full[0].sorted_profile().get(full[0].rows() / 100).unwrap_or(&1),
        );
        let cutoff = *sampled[0].sorted_profile().get(sampled[0].rows() / 100).unwrap_or(&1);
        let sampled_share = sampled[0].access_share_at_or_above(cutoff.max(1));
        assert!(
            (full_share - sampled_share).abs() < 0.12,
            "profiles diverge: full {full_share} vs sampled {sampled_share}"
        );
    }

    #[test]
    fn logger_counts_every_lookup() {
        let ds = dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let counters = log_accesses(&ds, &all);
        for (t, c) in counters.iter().enumerate() {
            let expected: usize = (0..ds.len()).map(|i| ds.sparse[t].bag(i).len()).sum();
            assert_eq!(c.total() as usize, expected, "table {t}");
        }
    }

    #[test]
    fn calibrate_fits_budget_and_orders_thresholds() {
        let ds = dataset();
        // Tiny budget forces a high threshold; large budget a low one.
        let tight =
            Calibrator::new(CalibratorConfig { gpu_budget_bytes: 20 << 10, ..Default::default() })
                .calibrate(&ds);
        let loose =
            Calibrator::new(CalibratorConfig { gpu_budget_bytes: 64 << 20, ..Default::default() })
                .calibrate(&ds);
        assert!(loose.threshold <= tight.threshold);
        assert!(loose.fits_budget);
        assert!(loose.est_hot_bytes <= (64 << 20) as f64);
        assert!(loose.sampled_inputs > 0);
    }

    #[test]
    fn small_tables_are_de_facto_hot() {
        let ds = dataset();
        let r = Calibrator::default().calibrate(&ds);
        // tiny_test tables are all < 1 MB (max 2000 rows × 32 B).
        assert!(r.tables.iter().all(|t| t.de_facto_hot));
        assert!(r.fits_budget);
        assert!((r.est_hot_bytes - ds.spec.embedding_bytes() as f64).abs() < 1.0);
    }

    #[test]
    fn impossible_budget_reports_not_fitting() {
        let ds = dataset();
        let r = Calibrator::new(CalibratorConfig { gpu_budget_bytes: 16, ..Default::default() })
            .calibrate(&ds);
        assert!(!r.fits_budget);
        // Fallback must be the largest (most selective) threshold.
        assert_eq!(r.threshold, 1e-2);
    }
}
