//! Convergence monitoring — Prechelt-style early stopping ("Early
//! stopping — but when?", the paper's \[40\]).
//!
//! §III-C justifies the scheduler's `u = 4` with "the downward trend of
//! test loss curve \[40\] consecutively for 4 strips shows a balance between
//! redundancy, badness, and slowness". This module implements the two
//! criteria that argument rests on, usable to terminate training runs:
//!
//! * **GL (generalisation loss)**: percent by which the current validation
//!   loss exceeds the best seen; stop when `GL > α`.
//! * **UP (strips of increase)**: stop after the validation loss has risen
//!   across `s` consecutive strips of `k` evaluations.

/// Prechelt's GL stopping criterion.
#[derive(Clone, Debug)]
pub struct GeneralizationLoss {
    best: f64,
    /// Stop threshold in percent (Prechelt's α; e.g. 5.0).
    pub alpha: f64,
}

impl GeneralizationLoss {
    /// Creates the criterion with threshold `alpha` percent.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        Self { best: f64::INFINITY, alpha }
    }

    /// Current generalisation loss in percent: `100·(loss/best − 1)`.
    pub fn gl(&self, loss: f64) -> f64 {
        if self.best.is_infinite() {
            0.0
        } else {
            100.0 * (loss / self.best - 1.0)
        }
    }

    /// Feeds one validation loss; returns `true` when training should
    /// stop (GL exceeded α).
    pub fn observe(&mut self, loss: f64) -> bool {
        assert!(loss.is_finite(), "non-finite validation loss");
        let stop = self.gl(loss) > self.alpha;
        if loss < self.best {
            self.best = loss;
        }
        stop
    }

    /// Best validation loss seen so far.
    pub fn best(&self) -> f64 {
        self.best
    }
}

/// Prechelt's UP criterion: stop after `strips` consecutive strips (each
/// `strip_len` observations) whose end-of-strip loss increased.
#[derive(Clone, Debug)]
pub struct UpStrips {
    strip_len: usize,
    strips: usize,
    in_strip: usize,
    last_strip_end: Option<f64>,
    rising_strips: usize,
    current: f64,
}

impl UpStrips {
    /// Creates the criterion (Prechelt's classic setting: `strip_len = 5`,
    /// `strips` per taste; the paper's scheduler uses 4 improving strips
    /// for the *opposite* direction).
    pub fn new(strip_len: usize, strips: usize) -> Self {
        assert!(strip_len > 0 && strips > 0, "strip parameters must be positive");
        Self {
            strip_len,
            strips,
            in_strip: 0,
            last_strip_end: None,
            rising_strips: 0,
            current: f64::NAN,
        }
    }

    /// Feeds one validation loss; returns `true` when training should
    /// stop (`strips` consecutive rising strips).
    pub fn observe(&mut self, loss: f64) -> bool {
        assert!(loss.is_finite(), "non-finite validation loss");
        self.current = loss;
        self.in_strip += 1;
        if self.in_strip < self.strip_len {
            return false;
        }
        self.in_strip = 0;
        let rising = matches!(self.last_strip_end, Some(prev) if loss > prev);
        self.last_strip_end = Some(loss);
        if rising {
            self.rising_strips += 1;
        } else {
            self.rising_strips = 0;
        }
        self.rising_strips >= self.strips
    }

    /// Consecutive rising strips observed so far.
    pub fn rising_strips(&self) -> usize {
        self.rising_strips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gl_zero_before_any_best() {
        let g = GeneralizationLoss::new(5.0);
        assert_eq!(g.gl(1.0), 0.0);
    }

    #[test]
    fn gl_stops_on_sufficient_degradation() {
        let mut g = GeneralizationLoss::new(5.0);
        assert!(!g.observe(1.0)); // establishes the best
        assert!(!g.observe(1.04)); // +4% < α
        assert!(g.observe(1.06)); // +6% > α → stop
        assert_eq!(g.best(), 1.0);
    }

    #[test]
    fn gl_tracks_new_best() {
        let mut g = GeneralizationLoss::new(10.0);
        g.observe(2.0);
        g.observe(1.0); // new best
        assert!(!g.observe(1.05)); // +5% of the *new* best, under α=10
        assert!(g.observe(1.2)); // +20% → stop
    }

    #[test]
    fn up_strips_needs_consecutive_rises() {
        // strip_len 2, strips 2: strip-end losses 1.0, 1.1, 1.2 → stop at
        // the second consecutive rise.
        let mut u = UpStrips::new(2, 2);
        assert!(!u.observe(1.0));
        assert!(!u.observe(1.0)); // strip 1 ends at 1.0
        assert!(!u.observe(1.1));
        assert!(!u.observe(1.1)); // strip 2 ends higher: 1 rising strip
        assert_eq!(u.rising_strips(), 1);
        assert!(!u.observe(1.2));
        assert!(u.observe(1.2)); // strip 3 ends higher again → stop
    }

    #[test]
    fn up_strips_reset_on_improvement() {
        let mut u = UpStrips::new(1, 3);
        u.observe(1.0);
        u.observe(1.1); // rise 1
        u.observe(1.2); // rise 2
        u.observe(0.9); // improvement resets
        assert_eq!(u.rising_strips(), 0);
        assert!(!u.observe(1.0));
        assert!(!u.observe(1.1));
        assert!(u.observe(1.2)); // three fresh rises → stop
    }

    #[test]
    fn descending_curve_never_stops() {
        let mut g = GeneralizationLoss::new(1.0);
        let mut u = UpStrips::new(2, 2);
        let mut loss = 10.0;
        for _ in 0..100 {
            loss *= 0.99;
            assert!(!g.observe(loss));
            assert!(!u.observe(loss));
        }
    }
}
