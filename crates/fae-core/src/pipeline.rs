//! One-call pipelines assembling the full FAE flow of Fig 5:
//! generate/load data → calibrate → classify → preprocess → train —
//! plus the double-buffered mini-batch [`Prefetcher`] that decodes the
//! next FAE-format block on a background thread while the consumer
//! works on the current one.

use std::sync::mpsc;
use std::thread;

use fae_data::format::{FaeStreamReader, FormatError};
use fae_data::{Dataset, MiniBatch, WorkloadSpec};
use fae_telemetry::Telemetry;

use crate::calibrator::{
    log_accesses, sample_inputs, CalibrationResult, Calibrator, CalibratorConfig,
};
use crate::classifier::classify_tables;
use crate::input_processor::{preprocess_inputs, PreprocessConfig, Preprocessed};
use crate::trainer::{train_baseline, train_fae, TrainConfig, TrainReport};

/// How many produced items may sit decoded-but-unconsumed: one being
/// consumed, one ready — classic double buffering. A deeper queue only
/// buys memory pressure; a producer more than one block ahead is already
/// never the bottleneck.
pub const PREFETCH_DEPTH: usize = 2;

/// A double-buffered background producer.
///
/// The producer closure runs on its own thread and pushes items into a
/// bounded channel of depth [`PREFETCH_DEPTH`]; the consumer pulls them
/// off via [`Iterator`]. Production therefore overlaps consumption while
/// staying at most two items ahead. Items arrive in exactly the order
/// produced, so wrapping a deterministic producer keeps a deterministic
/// stream. Dropping the prefetcher disconnects the channel, which stops
/// the producer at its next send; the thread is then joined, so no
/// producer outlives its consumer. A producer that *panicked* ends the
/// stream just like a clean finish — indistinguishable at the channel —
/// so the join result is checked and the panic resurfaces on drop
/// rather than being swallowed as a short stream.
pub struct Prefetcher<T: Send + 'static> {
    rx: Option<mpsc::Receiver<T>>,
    join: Option<thread::JoinHandle<()>>,
}

impl<T: Send + 'static> Prefetcher<T> {
    /// Spawns `produce` on a background thread. The closure sends items
    /// through the bounded channel (blocking while the consumer is
    /// [`PREFETCH_DEPTH`] items behind) and returns when done — or when a
    /// send fails, which means the consumer hung up. Errs if the OS
    /// refuses to spawn the thread.
    pub fn spawn<F>(produce: F) -> std::io::Result<Self>
    where
        F: FnOnce(&mpsc::SyncSender<T>) + Send + 'static,
    {
        let (tx, rx) = mpsc::sync_channel(PREFETCH_DEPTH);
        let join =
            thread::Builder::new().name("fae-prefetch".into()).spawn(move || produce(&tx))?;
        Ok(Self { rx: Some(rx), join: Some(join) })
    }
}

impl<T: Send + 'static> Iterator for Prefetcher<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl<T: Send + 'static> Drop for Prefetcher<T> {
    fn drop(&mut self) {
        // Disconnect first so a producer blocked on a full channel wakes
        // with a send error, *then* join — the other order deadlocks.
        drop(self.rx.take());
        if let Some(j) = self.join.take() {
            if let Err(payload) = j.join() {
                // The producer died mid-stream. To the consumer that
                // looked like a clean end-of-stream, so this is the only
                // place the failure can surface.
                if std::thread::panicking() {
                    // Propagating here would double-panic into an abort;
                    // the original unwind already reports a failure.
                    eprintln!("fae: prefetch producer panicked (suppressed during unwind)");
                } else {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Opens a FAE container held in `bytes` and streams its mini-batches
/// off a background decoder thread, at most [`PREFETCH_DEPTH`] blocks
/// ahead of the consumer. The header is validated synchronously (a
/// corrupt or foreign file errors here, not mid-stream); body errors —
/// a torn batch, a bad checksum — surface as the `Err` item, after
/// which the stream ends. Returns the container's workload name and the
/// batch stream.
pub fn prefetch_fae_blocks(
    bytes: Vec<u8>,
) -> Result<(String, Prefetcher<Result<MiniBatch, FormatError>>), FormatError> {
    let workload = FaeStreamReader::open(&bytes)?.workload().to_string();
    let spawn = Prefetcher::spawn(move |tx| {
        let mut reader = match FaeStreamReader::open(&bytes) {
            Ok(r) => r,
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        };
        loop {
            match reader.next_batch() {
                Ok(Some(b)) => {
                    if tx.send(Ok(b)).is_err() {
                        return; // consumer hung up
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    });
    let pf = spawn.map_err(FormatError::Io)?;
    Ok((workload, pf))
}

/// Output of the static (one-time per dataset) half of the framework.
#[derive(Clone)]
pub struct StaticArtifacts {
    /// The calibrator's threshold decision.
    pub calibration: CalibrationResult,
    /// The preprocessed hot/cold mini-batch stream.
    pub preprocessed: Preprocessed,
}

/// Runs calibration, classification and input processing in one go.
pub fn prepare(
    train: &Dataset,
    calibrator_cfg: CalibratorConfig,
    pre_cfg: &PreprocessConfig,
) -> StaticArtifacts {
    prepare_with(train, calibrator_cfg, pre_cfg, &Telemetry::disabled())
}

/// [`prepare`] with a telemetry handle: every static-pipeline stage runs
/// under a span (`prepare/sample` → `prepare/log` → `prepare/converge` →
/// `prepare/classify` → `prepare/preprocess`) and the hot/cold split is
/// exported as counters and gauges.
pub fn prepare_with(
    train: &Dataset,
    calibrator_cfg: CalibratorConfig,
    pre_cfg: &PreprocessConfig,
    telemetry: &Telemetry,
) -> StaticArtifacts {
    let _span = telemetry.span("prepare");
    let calibrator = Calibrator::new(calibrator_cfg);
    let mut rng = rand::SeedableRng::seed_from_u64(calibrator.config.seed);
    let samples = {
        let _s = telemetry.span("prepare/sample");
        sample_inputs(train, calibrator.config.sample_rate, &mut rng)
    };
    let counters = {
        let _s = telemetry.span("prepare/log");
        log_accesses(train, &samples)
    };
    let mut calibration = {
        let _s = telemetry.span("prepare/converge");
        calibrator.converge(train, &counters, &mut rng)
    };
    calibration.sampled_inputs = samples.len();
    let partitions = {
        let _s = telemetry.span("prepare/classify");
        classify_tables(&train.spec, &counters, &calibration)
    };
    let preprocessed = {
        let _s = telemetry.span("prepare/preprocess");
        preprocess_inputs(train, partitions, pre_cfg)
    };
    telemetry.counter_add("calibrator.sampled_inputs", calibration.sampled_inputs as u64);
    telemetry.gauge_set("calibrator.threshold", calibration.threshold);
    telemetry.gauge_set("calibrator.est_hot_bytes", calibration.est_hot_bytes);
    telemetry.counter_add("preprocess.hot_batches", preprocessed.hot_batches.len() as u64);
    telemetry.counter_add("preprocess.cold_batches", preprocessed.cold_batches.len() as u64);
    telemetry.gauge_set("preprocess.hot_input_fraction", preprocessed.hot_input_fraction);
    StaticArtifacts { calibration, preprocessed }
}

/// End-to-end comparison: trains the same workload under the baseline and
/// under FAE, returning `(baseline, fae)` reports.
pub fn compare(
    spec: &WorkloadSpec,
    train: &Dataset,
    test: &Dataset,
    artifacts: &StaticArtifacts,
    cfg: &TrainConfig,
) -> (TrainReport, TrainReport) {
    let base = train_baseline(spec, train, test, cfg);
    let fae = train_fae(spec, &artifacts.preprocessed, test, cfg);
    (base, fae)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::format::FaeFile;
    use fae_data::{generate, BatchKind, GenOptions};

    #[test]
    fn prefetcher_preserves_order_and_completes() {
        let mut pf = Prefetcher::spawn(|tx| {
            for i in 0..100u32 {
                if tx.send(i).is_err() {
                    return;
                }
            }
        })
        .expect("spawn");
        let got: Vec<u32> = pf.by_ref().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(pf.next().is_none(), "exhausted stream stays exhausted");
    }

    #[test]
    fn dropping_prefetcher_early_stops_the_producer() {
        // An unbounded producer: only the consumer hanging up stops it.
        let mut pf = Prefetcher::spawn(|tx| {
            let mut i = 0u64;
            while tx.send(i).is_ok() {
                i += 1;
            }
        })
        .expect("spawn");
        assert_eq!(pf.next(), Some(0));
        drop(pf); // must disconnect + join without deadlocking
    }

    #[test]
    fn producer_panic_resurfaces_at_drop_not_as_a_short_stream() {
        let mut pf = Prefetcher::spawn(|tx: &mpsc::SyncSender<u32>| {
            let _ = tx.send(1);
            panic!("producer exploded mid-stream");
        })
        .expect("spawn");
        assert_eq!(pf.next(), Some(1));
        assert_eq!(pf.next(), None, "the hangup itself just ends the stream");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(pf)));
        assert!(r.is_err(), "the producer's panic must resurface when the prefetcher drops");
    }

    #[test]
    fn prefetch_fae_blocks_matches_eager_decode() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(11, 2_000));
        let ids: Vec<usize> = (0..ds.len()).collect();
        let batches: Vec<MiniBatch> =
            ids.chunks(64).map(|c| MiniBatch::gather(&ds, c, BatchKind::Hot)).collect();
        let bytes = FaeFile::new("tiny-test", batches.clone()).encode();

        let eager = FaeFile::decode(&bytes).expect("eager decode");
        let (workload, pf) = prefetch_fae_blocks(bytes.to_vec()).expect("open");
        assert_eq!(workload, "tiny-test");
        let streamed: Vec<MiniBatch> = pf.map(|r| r.expect("clean stream decodes")).collect();
        assert_eq!(streamed.len(), eager.batches.len());
        for (a, b) in streamed.iter().zip(&eager.batches) {
            assert_eq!(a.len(), b.len());
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.dense.as_slice(), b.dense.as_slice());
        }
    }

    #[test]
    fn prefetch_fae_blocks_rejects_garbage_header_synchronously() {
        assert!(prefetch_fae_blocks(vec![0u8; 16]).is_err());
    }

    #[test]
    fn prefetch_fae_blocks_surfaces_torn_body_as_err_item() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(11, 1_000));
        let ids: Vec<usize> = (0..ds.len()).collect();
        let batches: Vec<MiniBatch> =
            ids.chunks(64).map(|c| MiniBatch::gather(&ds, c, BatchKind::Cold)).collect();
        let mut bytes = FaeFile::new("t", batches).encode().to_vec();
        let keep = bytes.len() - bytes.len() / 4;
        bytes.truncate(keep); // tear mid-body, past the header
        let (_, pf) = prefetch_fae_blocks(bytes).expect("header is intact");
        let items: Vec<_> = pf.collect();
        assert!(!items.is_empty());
        assert!(items.last().unwrap().is_err(), "tear must surface as an Err item");
        assert!(items[..items.len() - 1].iter().all(Result::is_ok));
    }

    #[test]
    fn prepare_produces_consistent_artifacts() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(19, 8_000));
        let art = prepare(
            &ds,
            CalibratorConfig::default(),
            &PreprocessConfig { minibatch_size: 64, seed: 1 },
        );
        assert!(art.calibration.sampled_inputs > 0);
        assert_eq!(art.preprocessed.total_samples(), ds.len());
        assert_eq!(art.preprocessed.partitions.len(), spec.tables.len());
    }

    #[test]
    fn compare_runs_both_modes() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(23, 4_000));
        let (train, test) = ds.split(0.25);
        let art = prepare(
            &train,
            CalibratorConfig::default(),
            &PreprocessConfig { minibatch_size: 64, seed: 2 },
        );
        let cfg = TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() };
        let (base, fae) = compare(&spec, &train, &test, &art, &cfg);
        assert!(base.simulated_seconds > 0.0);
        assert!(fae.simulated_seconds > 0.0);
        // Tiny tables are all de-facto hot, so FAE runs everything hot and
        // wins outright.
        assert!(fae.simulated_seconds < base.simulated_seconds);
    }
}
