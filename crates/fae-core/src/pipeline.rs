//! One-call pipelines assembling the full FAE flow of Fig 5:
//! generate/load data → calibrate → classify → preprocess → train.

use fae_data::{Dataset, WorkloadSpec};
use fae_telemetry::Telemetry;

use crate::calibrator::{
    log_accesses, sample_inputs, CalibrationResult, Calibrator, CalibratorConfig,
};
use crate::classifier::classify_tables;
use crate::input_processor::{preprocess_inputs, PreprocessConfig, Preprocessed};
use crate::trainer::{train_baseline, train_fae, TrainConfig, TrainReport};

/// Output of the static (one-time per dataset) half of the framework.
#[derive(Clone)]
pub struct StaticArtifacts {
    /// The calibrator's threshold decision.
    pub calibration: CalibrationResult,
    /// The preprocessed hot/cold mini-batch stream.
    pub preprocessed: Preprocessed,
}

/// Runs calibration, classification and input processing in one go.
pub fn prepare(
    train: &Dataset,
    calibrator_cfg: CalibratorConfig,
    pre_cfg: &PreprocessConfig,
) -> StaticArtifacts {
    prepare_with(train, calibrator_cfg, pre_cfg, &Telemetry::disabled())
}

/// [`prepare`] with a telemetry handle: every static-pipeline stage runs
/// under a span (`prepare/sample` → `prepare/log` → `prepare/converge` →
/// `prepare/classify` → `prepare/preprocess`) and the hot/cold split is
/// exported as counters and gauges.
pub fn prepare_with(
    train: &Dataset,
    calibrator_cfg: CalibratorConfig,
    pre_cfg: &PreprocessConfig,
    telemetry: &Telemetry,
) -> StaticArtifacts {
    let _span = telemetry.span("prepare");
    let calibrator = Calibrator::new(calibrator_cfg);
    let mut rng = rand::SeedableRng::seed_from_u64(calibrator.config.seed);
    let samples = {
        let _s = telemetry.span("prepare/sample");
        sample_inputs(train, calibrator.config.sample_rate, &mut rng)
    };
    let counters = {
        let _s = telemetry.span("prepare/log");
        log_accesses(train, &samples)
    };
    let mut calibration = {
        let _s = telemetry.span("prepare/converge");
        calibrator.converge(train, &counters, &mut rng)
    };
    calibration.sampled_inputs = samples.len();
    let partitions = {
        let _s = telemetry.span("prepare/classify");
        classify_tables(&train.spec, &counters, &calibration)
    };
    let preprocessed = {
        let _s = telemetry.span("prepare/preprocess");
        preprocess_inputs(train, partitions, pre_cfg)
    };
    telemetry.counter_add("calibrator.sampled_inputs", calibration.sampled_inputs as u64);
    telemetry.gauge_set("calibrator.threshold", calibration.threshold);
    telemetry.gauge_set("calibrator.est_hot_bytes", calibration.est_hot_bytes);
    telemetry.counter_add("preprocess.hot_batches", preprocessed.hot_batches.len() as u64);
    telemetry.counter_add("preprocess.cold_batches", preprocessed.cold_batches.len() as u64);
    telemetry.gauge_set("preprocess.hot_input_fraction", preprocessed.hot_input_fraction);
    StaticArtifacts { calibration, preprocessed }
}

/// End-to-end comparison: trains the same workload under the baseline and
/// under FAE, returning `(baseline, fae)` reports.
pub fn compare(
    spec: &WorkloadSpec,
    train: &Dataset,
    test: &Dataset,
    artifacts: &StaticArtifacts,
    cfg: &TrainConfig,
) -> (TrainReport, TrainReport) {
    let base = train_baseline(spec, train, test, cfg);
    let fae = train_fae(spec, &artifacts.preprocessed, test, cfg);
    (base, fae)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::{generate, GenOptions};

    #[test]
    fn prepare_produces_consistent_artifacts() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(19, 8_000));
        let art = prepare(
            &ds,
            CalibratorConfig::default(),
            &PreprocessConfig { minibatch_size: 64, seed: 1 },
        );
        assert!(art.calibration.sampled_inputs > 0);
        assert_eq!(art.preprocessed.total_samples(), ds.len());
        assert_eq!(art.preprocessed.partitions.len(), spec.tables.len());
    }

    #[test]
    fn compare_runs_both_modes() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(23, 4_000));
        let (train, test) = ds.split(0.25);
        let art = prepare(
            &train,
            CalibratorConfig::default(),
            &PreprocessConfig { minibatch_size: 64, seed: 2 },
        );
        let cfg = TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() };
        let (base, fae) = compare(&spec, &train, &test, &art, &cfg);
        assert!(base.simulated_seconds > 0.0);
        assert!(fae.simulated_seconds > 0.0);
        // Tiny tables are all de-facto hot, so FAE runs everything hot and
        // wins outright.
        assert!(fae.simulated_seconds < base.simulated_seconds);
    }
}
