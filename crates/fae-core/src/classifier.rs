//! The Embedding Classifier (§III-B): one pass per table tagging the rows
//! that meet the calibrated access cutoff.

use fae_data::WorkloadSpec;
use fae_embed::{AccessCounter, HotColdPartition};

use crate::calibrator::CalibrationResult;

/// Builds the hot/cold partition of every table from the logged access
/// counters and the calibrator's per-table cutoffs. Small tables
/// (`de_facto_hot`) become entirely hot.
pub fn classify_tables(
    spec: &WorkloadSpec,
    counters: &[AccessCounter],
    calibration: &CalibrationResult,
) -> Vec<HotColdPartition> {
    assert_eq!(counters.len(), spec.tables.len(), "one counter per table");
    assert_eq!(calibration.tables.len(), spec.tables.len(), "one calibration per table");
    counters
        .iter()
        .zip(&calibration.tables)
        .zip(&spec.tables)
        .map(|((counter, cal), tspec)| {
            if cal.de_facto_hot {
                HotColdPartition::all_hot(tspec.rows)
            } else {
                HotColdPartition::from_counts(counter, cal.cutoff)
            }
        })
        .collect()
}

/// Actual bytes the hot bags will occupy per GPU (the number the Rand-Em
/// Box estimated; exact once classification has run).
pub fn hot_bytes(spec: &WorkloadSpec, partitions: &[HotColdPartition]) -> usize {
    partitions.iter().map(|p| p.hot_bytes(spec.embedding_dim)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrator::Calibrator;
    use crate::calibrator::{log_accesses, sample_inputs};
    use fae_data::{generate, GenOptions, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classification_respects_cutoffs_and_small_table_rule() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(5, 20_000));
        let mut rng = StdRng::seed_from_u64(9);
        let samples = sample_inputs(&ds, 0.05, &mut rng);
        let counters = log_accesses(&ds, &samples);
        let cal = Calibrator::default().calibrate(&ds);
        let parts = classify_tables(&spec, &counters, &cal);
        assert_eq!(parts.len(), spec.tables.len());
        for ((p, c), t) in parts.iter().zip(&cal.tables).zip(&spec.tables) {
            if c.de_facto_hot {
                assert_eq!(p.hot_count(), t.rows);
            } else {
                // Every hot row really meets the cutoff.
                for &id in p.hot_ids() {
                    assert!(counters[0].count(id) >= c.cutoff);
                }
            }
        }
        assert_eq!(
            hot_bytes(&spec, &parts),
            parts.iter().map(|p| p.hot_count() * spec.embedding_dim * 4).sum::<usize>()
        );
    }

    #[test]
    fn forced_cutoff_produces_partial_partitions() {
        // Bypass the calibrator: force a real cutoff on table 0.
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(6, 30_000));
        let all: Vec<usize> = (0..ds.len()).collect();
        let counters = log_accesses(&ds, &all);
        let mut cal = Calibrator::default().calibrate(&ds);
        cal.tables[0].de_facto_hot = false;
        cal.tables[0].cutoff = 30; // only genuinely hot rows pass
        let parts = classify_tables(&spec, &counters, &cal);
        assert!(parts[0].hot_count() > 0, "no hot rows at cutoff 30");
        assert!(
            parts[0].hot_count() < spec.tables[0].rows / 2,
            "cutoff 30 should exclude the cold tail"
        );
        // The hot rows must capture the majority of accesses (Fig 2).
        let share = counters[0].access_share_at_or_above(30);
        assert!(share > 0.5, "hot rows capture only {share}");
    }
}
