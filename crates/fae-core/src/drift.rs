//! Hotness-drift detection and recalibration — §II-B challenge 4.
//!
//! "The hotness of an embedding entry depends on the dataset and
//! recommender model. Therefore, hotness needs to be re-calibrated for
//! every model, dataset, and system configuration tuple." Popularity also
//! moves *within* a dataset's lifetime (new items trend, old ones fade).
//! The [`DriftMonitor`] watches the live hot-access share — the fraction
//! of recent lookups served by rows the current partitions call hot — and
//! raises a recalibration flag when it falls materially below the share
//! observed at calibration time. Recalibrating re-runs the standard
//! static pipeline on the recent window.

use fae_data::Dataset;
use fae_embed::HotColdPartition;

/// Sliding observation of how well the current hot sets still cover the
/// access stream.
#[derive(Clone, Debug)]
pub struct DriftMonitor {
    /// Hot-access share measured at calibration time.
    baseline_share: f64,
    /// Tolerated absolute drop before flagging (e.g. 0.10 = recalibrate
    /// once coverage fell ten points).
    tolerated_drop: f64,
}

/// The monitor's verdict over one observation window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftVerdict {
    /// Hot-access share over the observed window.
    pub current_share: f64,
    /// Baseline share at calibration time.
    pub baseline_share: f64,
    /// True when the drop exceeds the tolerance — time to recalibrate.
    pub drifted: bool,
}

impl DriftMonitor {
    /// Creates a monitor. `baseline_share` is the hot-access share right
    /// after calibration (measure it with [`hot_access_share`]).
    pub fn new(baseline_share: f64, tolerated_drop: f64) -> Self {
        assert!((0.0..=1.0).contains(&baseline_share), "share out of range");
        assert!(tolerated_drop > 0.0, "tolerance must be positive");
        Self { baseline_share, tolerated_drop }
    }

    /// Checks a window of inputs (`range` of dataset indices) against the
    /// current partitions.
    pub fn check(
        &self,
        ds: &Dataset,
        range: std::ops::Range<usize>,
        partitions: &[HotColdPartition],
    ) -> DriftVerdict {
        let current_share = hot_access_share(ds, range, partitions);
        DriftVerdict {
            current_share,
            baseline_share: self.baseline_share,
            drifted: current_share < self.baseline_share - self.tolerated_drop,
        }
    }
}

/// Fraction of all lookups in `range` that hit rows the partitions call
/// hot.
pub fn hot_access_share(
    ds: &Dataset,
    range: std::ops::Range<usize>,
    partitions: &[HotColdPartition],
) -> f64 {
    assert_eq!(partitions.len(), ds.sparse.len(), "one partition per table");
    let mut hot = 0u64;
    let mut total = 0u64;
    for i in range {
        for (t, bag) in ds.bags_of(i) {
            for &idx in bag {
                total += 1;
                if partitions[t].is_hot(idx) {
                    hot += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hot as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrator::{log_accesses, sample_inputs};
    use crate::classifier::classify_tables;
    use crate::{Calibrator, CalibratorConfig};
    use fae_data::{generate, GenOptions, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn calibrate_on(ds: &Dataset, range: std::ops::Range<usize>) -> Vec<HotColdPartition> {
        let calibrator = Calibrator::new(CalibratorConfig {
            gpu_budget_bytes: 40 << 10,
            small_table_bytes: 2 << 10,
            // Tiny calibration windows need a denser sample than the
            // default 5% to cover the head region.
            sample_rate: 0.5,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(calibrator.config.seed);
        let window: Vec<usize> = range.collect();
        // Sample within the window (the calibrator's 5% rule on the slice).
        let sampled: Vec<usize> = {
            let mask = sample_inputs(ds, calibrator.config.sample_rate, &mut rng);
            let set: std::collections::BTreeSet<usize> = window.iter().copied().collect();
            mask.into_iter().filter(|i| set.contains(i)).collect()
        };
        let counters = log_accesses(ds, &sampled);
        let cal = calibrator.converge(ds, &counters, &mut rng);
        classify_tables(&ds.spec, &counters, &cal)
    }

    #[test]
    fn static_popularity_never_flags() {
        let spec = WorkloadSpec::tiny_test();
        let n = 20_000;
        let ds = generate(&spec, &GenOptions::sized(31, n));
        let parts = calibrate_on(&ds, 0..n / 4);
        let baseline = hot_access_share(&ds, 0..n / 4, &parts);
        let monitor = DriftMonitor::new(baseline, 0.10);
        for window in [n / 4..n / 2, n / 2..3 * n / 4, 3 * n / 4..n] {
            let v = monitor.check(&ds, window.clone(), &parts);
            assert!(!v.drifted, "false positive at {window:?}: {v:?}");
        }
    }

    #[test]
    fn drifting_popularity_flags_and_recalibration_restores_coverage() {
        let spec = WorkloadSpec::tiny_test();
        let n = 24_000;
        let ds = generate(&spec, &GenOptions::sized(33, n).with_drift(1.0));
        // Calibrate on the first popularity regime.
        let parts = calibrate_on(&ds, 0..n / 8);
        let baseline = hot_access_share(&ds, 0..n / 8, &parts);
        assert!(baseline > 0.5, "calibration-window coverage too low: {baseline}");
        let monitor = DriftMonitor::new(baseline, 0.10);
        // The last regime has rotated away from the calibrated hot set.
        let tail = 7 * n / 8..n;
        let v = monitor.check(&ds, tail.clone(), &parts);
        assert!(v.drifted, "drift not detected: {v:?}");
        assert!(v.current_share < baseline - 0.10);
        // Recalibrating on the most recent window restores coverage.
        let fresh = calibrate_on(&ds, tail.clone());
        let restored = hot_access_share(&ds, tail, &fresh);
        assert!(
            restored > v.current_share + 0.10,
            "recalibration did not help: {} -> {restored}",
            v.current_share
        );
    }

    #[test]
    fn empty_window_is_safe() {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(35, 100));
        let parts: Vec<HotColdPartition> =
            spec.tables.iter().map(|t| HotColdPartition::all_hot(t.rows)).collect();
        assert_eq!(hot_access_share(&ds, 50..50, &parts), 0.0);
    }
}
