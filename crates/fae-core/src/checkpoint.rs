//! Training checkpoints: everything needed to resume an interrupted FAE
//! run bit-identically to an uninterrupted one.
//!
//! A [`TrainCheckpoint`] snapshots, at a schedule-round boundary (the
//! point where the master embeddings are authoritative and the scheduler
//! has just adapted): the training position (epoch + hot/cold cursors),
//! the step counters, the dense model parameters, every master embedding
//! table, the [`ShuffleScheduler`](crate::ShuffleScheduler) state, the
//! accumulated [`Timeline`], the evaluation history and the fault/
//! recovery record. Together with the trainer's per-epoch *derived*
//! shuffle RNGs (`seed ⊕ f(epoch)` — no RNG state needs serialising),
//! this makes resumption exact: every subsequent mini-batch, eval and
//! cost charge replays identically.
//!
//! On disk the checkpoint is an FAE-style little-endian binary container
//! (`"FAEK"` magic, version, payload, CRC-32 trailer), written atomically
//! via write-temp-then-rename so a crash mid-write never leaves a torn
//! file that a resume could trip over. Decoding treats the bytes as
//! untrusted: every read is bounds-checked, sizes are checked for
//! overflow, and the CRC is verified before any field is trusted —
//! corruption yields [`CheckpointError`], never a panic.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, BytesMut};

use fae_embed::EmbeddingTable;
use fae_models::MasterEmbeddings;
use fae_nn::Tensor;
use fae_sysmodel::{Phase, Timeline};

use crate::faults::{FaultKind, InjectedFault, RecoveryAction};
use crate::scheduler::SchedulerState;
use crate::trainer::EvalPoint;

const MAGIC: &[u8; 4] = b"FAEK";
// Version 2 widened the eval-history record with the hot/cold step
// counters and cumulative simulated seconds `EvalPoint` now carries.
const VERSION: u32 = 2;
const FILE_PREFIX: &str = "ckpt-";
const FILE_SUFFIX: &str = ".faeck";

/// Errors producing or consuming a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The magic bytes were wrong — not a checkpoint file.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u32),
    /// The CRC-32 trailer did not match the payload.
    BadChecksum,
    /// The buffer ended before the declared content.
    Truncated(&'static str),
    /// A structural invariant failed.
    Corrupt(&'static str),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an FAE checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Truncated(what) => {
                write!(f, "checkpoint truncated while reading {what}")
            }
            CheckpointError::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// One master embedding table, flattened.
#[derive(Clone, Debug, PartialEq)]
pub struct TableSnapshot {
    /// Row count.
    pub rows: u32,
    /// Embedding dimension.
    pub dim: u32,
    /// `rows * dim` weights, row-major.
    pub weights: Vec<f32>,
}

/// Complete resumable training state at a schedule-round boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainCheckpoint {
    /// The run's `TrainConfig::seed` (resume refuses a mismatched seed).
    pub config_seed: u64,
    /// Epoch the cursors refer to.
    pub epoch: u32,
    /// Hot batches already issued this epoch.
    pub hot_cursor: u64,
    /// Cold batches already issued this epoch.
    pub cold_cursor: u64,
    /// Total training steps completed.
    pub steps: u64,
    /// Steps executed in pure-GPU hot mode.
    pub hot_steps: u64,
    /// Steps executed in hybrid (cold) mode.
    pub cold_steps: u64,
    /// Hot↔cold transitions charged so far.
    pub transitions: u64,
    /// GPUs still in the data-parallel group (after any device losses).
    pub gpus_active: u32,
    /// Whether the run has degraded to CPU-only cold execution.
    pub cold_only: bool,
    /// Shuffle-scheduler adaptive state.
    pub scheduler: SchedulerState,
    /// Phase-tagged simulated time accumulated so far.
    pub timeline: Timeline,
    /// Evaluation snapshots so far.
    pub history: Vec<EvalPoint>,
    /// Faults that fired before the checkpoint.
    pub faults: Vec<InjectedFault>,
    /// Recovery actions taken before the checkpoint.
    pub recoveries: Vec<RecoveryAction>,
    /// Flattened dense model parameters.
    pub dense_params: Vec<f32>,
    /// Master embedding tables.
    pub tables: Vec<TableSnapshot>,
}

impl TrainCheckpoint {
    /// Flattens the master embedding tables into snapshots. A quantized
    /// (tiered) master is snapshot *dequantized*: hot rows are exact, and
    /// cold rows carry the values of their int8 grid, so restoring and
    /// re-quantizing with the same partitions reproduces the tiered state
    /// to within one code step per element.
    pub fn snapshot_master(master: &MasterEmbeddings) -> Vec<TableSnapshot> {
        master
            .snapshot_tables()
            .into_iter()
            .map(|t| TableSnapshot {
                rows: t.rows() as u32,
                dim: t.dim() as u32,
                weights: t.weights().as_slice().to_vec(),
            })
            .collect()
    }

    /// Rebuilds the master embeddings from this checkpoint's snapshots.
    pub fn restore_master(&self) -> MasterEmbeddings {
        let tables = self
            .tables
            .iter()
            .map(|s| {
                EmbeddingTable::from_weights(Tensor::from_vec(
                    s.rows as usize,
                    s.dim as usize,
                    s.weights.clone(),
                ))
            })
            .collect();
        MasterEmbeddings::from_tables(tables)
    }

    /// CRC-32 over the encoded container: a compact fingerprint of the
    /// *entire* training state (dense parameters, master tables,
    /// scheduler, timeline, history). Two runs whose digests match at
    /// the same step are bit-identical — the workers-determinism suite
    /// compares these across worker counts and resume boundaries.
    pub fn digest(&self) -> u32 {
        crc32(&self.encode())
    }

    /// Serialises to the binary container (payload + CRC-32 trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.config_seed);
        buf.put_u32_le(self.epoch);
        buf.put_u64_le(self.hot_cursor);
        buf.put_u64_le(self.cold_cursor);
        buf.put_u64_le(self.steps);
        buf.put_u64_le(self.hot_steps);
        buf.put_u64_le(self.cold_steps);
        buf.put_u64_le(self.transitions);
        buf.put_u32_le(self.gpus_active);
        buf.put_u8(self.cold_only as u8);
        // Scheduler.
        buf.put_u32_le(self.scheduler.rate);
        match self.scheduler.prev_loss {
            Some(l) => {
                buf.put_u8(1);
                buf.put_f64_le(l);
            }
            None => {
                buf.put_u8(0);
                buf.put_f64_le(0.0);
            }
        }
        buf.put_u32_le(self.scheduler.improving_streak);
        buf.put_u32_le(self.scheduler.u);
        buf.put_u32_le(self.scheduler.history.len() as u32);
        for &(loss, rate) in &self.scheduler.history {
            buf.put_f64_le(loss);
            buf.put_u32_le(rate);
        }
        // Timeline: the eight phases in display order, then CPU-resident.
        for phase in Phase::ALL {
            buf.put_f64_le(self.timeline.get(phase));
        }
        buf.put_f64_le(self.timeline.cpu_resident());
        // Eval history.
        buf.put_u32_le(self.history.len() as u32);
        for p in &self.history {
            buf.put_u64_le(p.iteration as u64);
            buf.put_f64_le(p.test_loss);
            buf.put_f64_le(p.test_accuracy);
            match p.rate {
                Some(r) => {
                    buf.put_u8(1);
                    buf.put_u32_le(r);
                }
                None => {
                    buf.put_u8(0);
                    buf.put_u32_le(0);
                }
            }
            buf.put_u64_le(p.hot_steps as u64);
            buf.put_u64_le(p.cold_steps as u64);
            buf.put_f64_le(p.sim_seconds);
        }
        // Fault log.
        buf.put_u32_le(self.faults.len() as u32);
        for f in &self.faults {
            buf.put_u8(f.kind.tag());
            buf.put_u64_le(f.at);
            buf.put_u64_le(f.step);
        }
        // Recovery log.
        buf.put_u32_le(self.recoveries.len() as u32);
        for r in &self.recoveries {
            match *r {
                RecoveryAction::ShrankReplicas { step, from, to } => {
                    buf.put_u8(0);
                    buf.put_u64_le(step);
                    buf.put_u32_le(from);
                    buf.put_u32_le(to);
                }
                RecoveryAction::ColdFallback { step } => {
                    buf.put_u8(1);
                    buf.put_u64_le(step);
                }
                RecoveryAction::SyncRetried { step, attempts, waited_s } => {
                    buf.put_u8(2);
                    buf.put_u64_le(step);
                    buf.put_u32_le(attempts);
                    buf.put_f64_le(waited_s);
                }
                RecoveryAction::RetriedIo { attempts, waited_s } => {
                    buf.put_u8(3);
                    buf.put_u32_le(attempts);
                    buf.put_f64_le(waited_s);
                }
                RecoveryAction::RebuiltArtifacts => buf.put_u8(4),
                RecoveryAction::ResumedFromCheckpoint { step } => {
                    buf.put_u8(5);
                    buf.put_u64_le(step);
                }
                RecoveryAction::ReshardedToSurvivors { step, node, live } => {
                    buf.put_u8(6);
                    buf.put_u64_le(step);
                    buf.put_u32_le(node);
                    buf.put_u32_le(live);
                }
                RecoveryAction::NodeRejoined { step, node, state_bytes } => {
                    buf.put_u8(7);
                    buf.put_u64_le(step);
                    buf.put_u32_le(node);
                    buf.put_u64_le(state_bytes);
                }
            }
        }
        // Dense parameters.
        buf.put_u32_le(self.dense_params.len() as u32);
        for &p in &self.dense_params {
            buf.put_f32_le(p);
        }
        // Embedding tables.
        buf.put_u32_le(self.tables.len() as u32);
        for t in &self.tables {
            buf.put_u32_le(t.rows);
            buf.put_u32_le(t.dim);
            for &w in &t.weights {
                buf.put_f32_le(w);
            }
        }
        let mut out = buf.freeze().to_vec();
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a container (magic, version, CRC, structure).
    pub fn decode(data: &[u8]) -> Result<Self, CheckpointError> {
        if data.len() < 4 {
            return Err(CheckpointError::Truncated("crc trailer"));
        }
        let (payload, trailer) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        if crc32(payload) != stored {
            return Err(CheckpointError::BadChecksum);
        }
        let mut buf = payload;
        let buf = &mut buf;
        need(buf, 8, "header")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        need(buf, 8 + 4 + 8 * 6 + 4 + 1, "run state")?;
        let config_seed = buf.get_u64_le();
        let epoch = buf.get_u32_le();
        let hot_cursor = buf.get_u64_le();
        let cold_cursor = buf.get_u64_le();
        let steps = buf.get_u64_le();
        let hot_steps = buf.get_u64_le();
        let cold_steps = buf.get_u64_le();
        let transitions = buf.get_u64_le();
        let gpus_active = buf.get_u32_le();
        let cold_only = match buf.get_u8() {
            0 => false,
            1 => true,
            _ => return Err(CheckpointError::Corrupt("cold_only flag")),
        };
        // Scheduler.
        need(buf, 4 + 1 + 8 + 4 + 4 + 4, "scheduler state")?;
        let rate = buf.get_u32_le();
        let has_prev = buf.get_u8();
        let prev_raw = buf.get_f64_le();
        let prev_loss = match has_prev {
            0 => None,
            1 => Some(prev_raw),
            _ => return Err(CheckpointError::Corrupt("prev_loss flag")),
        };
        let improving_streak = buf.get_u32_le();
        let u = buf.get_u32_le();
        let hist_len = buf.get_u32_le() as usize;
        need(buf, checked(hist_len, 12, "scheduler history")?, "scheduler history")?;
        let mut sched_history = Vec::with_capacity(hist_len);
        for _ in 0..hist_len {
            let loss = buf.get_f64_le();
            let r = buf.get_u32_le();
            sched_history.push((loss, r));
        }
        // Timeline.
        need(buf, 8 * 9, "timeline")?;
        let mut timeline = Timeline::new();
        for phase in Phase::ALL {
            let secs = buf.get_f64_le();
            if !secs.is_finite() || secs < 0.0 {
                return Err(CheckpointError::Corrupt("negative or non-finite phase time"));
            }
            timeline.add(phase, secs);
        }
        let cpu_res = buf.get_f64_le();
        if !cpu_res.is_finite() || cpu_res < 0.0 {
            return Err(CheckpointError::Corrupt("negative or non-finite cpu-resident time"));
        }
        timeline.add_cpu_resident(cpu_res);
        // Eval history.
        need(buf, 4, "eval history length")?;
        let n_hist = buf.get_u32_le() as usize;
        need(buf, checked(n_hist, 53, "eval history")?, "eval history")?;
        let mut history = Vec::with_capacity(n_hist);
        for _ in 0..n_hist {
            let iteration = buf.get_u64_le() as usize;
            let test_loss = buf.get_f64_le();
            let test_accuracy = buf.get_f64_le();
            let has_rate = buf.get_u8();
            let rate_raw = buf.get_u32_le();
            let rate = match has_rate {
                0 => None,
                1 => Some(rate_raw),
                _ => return Err(CheckpointError::Corrupt("eval rate flag")),
            };
            let hot_steps = buf.get_u64_le() as usize;
            let cold_steps = buf.get_u64_le() as usize;
            let sim_seconds = buf.get_f64_le();
            if !sim_seconds.is_finite() || sim_seconds < 0.0 {
                return Err(CheckpointError::Corrupt("negative or non-finite eval sim time"));
            }
            history.push(EvalPoint {
                iteration,
                test_loss,
                test_accuracy,
                rate,
                hot_steps,
                cold_steps,
                sim_seconds,
            });
        }
        // Fault log.
        need(buf, 4, "fault log length")?;
        let n_faults = buf.get_u32_le() as usize;
        need(buf, checked(n_faults, 17, "fault log")?, "fault log")?;
        let mut faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let kind = FaultKind::from_tag(buf.get_u8())
                .ok_or(CheckpointError::Corrupt("unknown fault kind"))?;
            let at = buf.get_u64_le();
            let step = buf.get_u64_le();
            faults.push(InjectedFault { kind, at, step });
        }
        // Recovery log.
        need(buf, 4, "recovery log length")?;
        let n_rec = buf.get_u32_le() as usize;
        let mut recoveries = Vec::with_capacity(n_rec.min(1024));
        for _ in 0..n_rec {
            need(buf, 1, "recovery tag")?;
            let action = match buf.get_u8() {
                0 => {
                    need(buf, 16, "shrank-replicas record")?;
                    RecoveryAction::ShrankReplicas {
                        step: buf.get_u64_le(),
                        from: buf.get_u32_le(),
                        to: buf.get_u32_le(),
                    }
                }
                1 => {
                    need(buf, 8, "cold-fallback record")?;
                    RecoveryAction::ColdFallback { step: buf.get_u64_le() }
                }
                2 => {
                    need(buf, 20, "sync-retried record")?;
                    RecoveryAction::SyncRetried {
                        step: buf.get_u64_le(),
                        attempts: buf.get_u32_le(),
                        waited_s: buf.get_f64_le(),
                    }
                }
                3 => {
                    need(buf, 12, "retried-io record")?;
                    RecoveryAction::RetriedIo {
                        attempts: buf.get_u32_le(),
                        waited_s: buf.get_f64_le(),
                    }
                }
                4 => RecoveryAction::RebuiltArtifacts,
                5 => {
                    need(buf, 8, "resumed record")?;
                    RecoveryAction::ResumedFromCheckpoint { step: buf.get_u64_le() }
                }
                6 => {
                    need(buf, 16, "resharded record")?;
                    RecoveryAction::ReshardedToSurvivors {
                        step: buf.get_u64_le(),
                        node: buf.get_u32_le(),
                        live: buf.get_u32_le(),
                    }
                }
                7 => {
                    need(buf, 20, "node-rejoined record")?;
                    RecoveryAction::NodeRejoined {
                        step: buf.get_u64_le(),
                        node: buf.get_u32_le(),
                        state_bytes: buf.get_u64_le(),
                    }
                }
                _ => return Err(CheckpointError::Corrupt("unknown recovery tag")),
            };
            recoveries.push(action);
        }
        // Dense parameters.
        need(buf, 4, "dense param count")?;
        let n_params = buf.get_u32_le() as usize;
        need(buf, checked(n_params, 4, "dense params")?, "dense params")?;
        let mut dense_params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            dense_params.push(buf.get_f32_le());
        }
        // Embedding tables.
        need(buf, 4, "table count")?;
        let n_tables = buf.get_u32_le() as usize;
        let mut tables = Vec::with_capacity(n_tables.min(4096));
        for _ in 0..n_tables {
            need(buf, 8, "table header")?;
            let rows = buf.get_u32_le();
            let dim = buf.get_u32_le();
            let count = checked(rows as usize, dim as usize, "table size")?;
            need(buf, checked(count, 4, "table weights")?, "table weights")?;
            let mut weights = Vec::with_capacity(count);
            for _ in 0..count {
                weights.push(buf.get_f32_le());
            }
            tables.push(TableSnapshot { rows, dim, weights });
        }
        if buf.remaining() > 0 {
            return Err(CheckpointError::Corrupt("trailing bytes before crc"));
        }
        Ok(Self {
            config_seed,
            epoch,
            hot_cursor,
            cold_cursor,
            steps,
            hot_steps,
            cold_steps,
            transitions,
            gpus_active,
            cold_only,
            scheduler: SchedulerState {
                rate,
                prev_loss,
                improving_streak,
                u,
                history: sched_history,
            },
            timeline,
            history,
            faults,
            recoveries,
            dense_params,
            tables,
        })
    }

    /// Writes the checkpoint into `dir` as `ckpt-<steps>.faeck`,
    /// atomically (temp file in the same directory, then rename).
    /// Returns the final path.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        fs::create_dir_all(dir)?;
        let name = format!("{FILE_PREFIX}{:012}{FILE_SUFFIX}", self.steps);
        let path = dir.join(&name);
        let tmp = dir.join(format!("{name}.tmp"));
        fs::write(&tmp, self.encode())?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Reads and validates a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::decode(&fs::read(path)?)
    }
}

/// Finds the most recent checkpoint (highest step count) in `dir`.
/// Returns `Ok(None)` when the directory is missing or holds none.
pub fn latest_in(dir: &Path) -> Result<Option<PathBuf>, CheckpointError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix(FILE_PREFIX).and_then(|s| s.strip_suffix(FILE_SUFFIX))
        else {
            continue;
        };
        let Ok(steps) = stem.parse::<u64>() else { continue };
        if best.as_ref().is_none_or(|(b, _)| steps > *b) {
            best = Some((steps, entry.path()));
        }
    }
    Ok(best.map(|(_, p)| p))
}

fn need(buf: &[u8], n: usize, what: &'static str) -> Result<(), CheckpointError> {
    if buf.remaining() < n {
        Err(CheckpointError::Truncated(what))
    } else {
        Ok(())
    }
}

fn checked(elems: usize, width: usize, what: &'static str) -> Result<usize, CheckpointError> {
    elems.checked_mul(width).ok_or(CheckpointError::Corrupt(what))
}

/// CRC-32 fingerprint of the *model* alone: flattened dense parameters
/// plus the master embedding tables. Unlike [`TrainCheckpoint::digest`]
/// it ignores scheduler/timeline/fault state, so a distributed run and a
/// single-process run that trained the same weights compare equal even
/// though their fault logs differ.
pub fn model_digest(dense_params: &[f32], tables: &[TableSnapshot]) -> u32 {
    let mut buf = BytesMut::with_capacity(dense_params.len() * 4 + 64);
    buf.put_u32_le(dense_params.len() as u32);
    for &p in dense_params {
        buf.put_f32_le(p);
    }
    buf.put_u32_le(tables.len() as u32);
    for t in tables {
        buf.put_u32_le(t.rows);
        buf.put_u32_le(t.dim);
        for &w in &t.weights {
            buf.put_f32_le(w);
        }
    }
    crc32(&buf.freeze().to_vec())
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). Public so the
/// wire protocol (`fae-net`) frames carry the same checksum the on-disk
/// containers do.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            config_seed: 0xF00D,
            epoch: 1,
            hot_cursor: 12,
            cold_cursor: 34,
            steps: 123,
            hot_steps: 60,
            cold_steps: 63,
            transitions: 8,
            gpus_active: 3,
            cold_only: false,
            scheduler: SchedulerState {
                rate: 25,
                prev_loss: Some(0.43),
                improving_streak: 2,
                u: 4,
                history: vec![(0.5, 50), (0.43, 25)],
            },
            timeline: {
                let mut t = Timeline::new();
                t.add(Phase::EmbedSync, 1.25);
                t.add(Phase::Optimizer, 0.75);
                t.add_cpu_resident(0.5);
                t
            },
            history: vec![EvalPoint {
                iteration: 50,
                test_loss: 0.5,
                test_accuracy: 0.7,
                rate: Some(50),
                hot_steps: 20,
                cold_steps: 30,
                sim_seconds: 1.75,
            }],
            faults: vec![InjectedFault { kind: FaultKind::DeviceLoss, at: 40, step: 41 }],
            recoveries: vec![
                RecoveryAction::ShrankReplicas { step: 41, from: 4, to: 3 },
                RecoveryAction::SyncRetried { step: 60, attempts: 3, waited_s: 0.15 },
                RecoveryAction::RebuiltArtifacts,
                RecoveryAction::ReshardedToSurvivors { step: 70, node: 1, live: 2 },
                RecoveryAction::NodeRejoined { step: 90, node: 1, state_bytes: 4096 },
            ],
            dense_params: vec![0.1, -0.2, 0.3],
            tables: vec![
                TableSnapshot { rows: 2, dim: 3, weights: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] },
                TableSnapshot { rows: 1, dim: 3, weights: vec![-1.0, -2.0, -3.0] },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip_is_exact() {
        let ck = sample();
        let bytes = ck.encode();
        let back = TrainCheckpoint::decode(&bytes).expect("decode");
        assert_eq!(back, ck);
    }

    #[test]
    fn crc_guards_every_byte() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(TrainCheckpoint::decode(&bad).is_err(), "flipping byte {i} went undetected");
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                TrainCheckpoint::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn save_is_atomic_and_latest_finds_newest() {
        let dir = std::env::temp_dir().join("fae-ckpt-test");
        let _ = fs::remove_dir_all(&dir);
        assert!(latest_in(&dir).expect("missing dir is not an error").is_none());
        let mut a = sample();
        a.steps = 100;
        let mut b = sample();
        b.steps = 250;
        a.save(&dir).expect("save a");
        let pb = b.save(&dir).expect("save b");
        // No temp residue.
        let residue: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(residue.is_empty(), "temp files left behind: {residue:?}");
        assert_eq!(latest_in(&dir).expect("scan").as_deref(), Some(pb.as_path()));
        let loaded = TrainCheckpoint::load(&pb).expect("load");
        assert_eq!(loaded.steps, 250);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn master_snapshot_restores_identically() {
        use fae_data::WorkloadSpec;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let spec = WorkloadSpec::tiny_test();
        let mut rng = StdRng::seed_from_u64(9);
        let master = MasterEmbeddings::from_spec(&spec, &mut rng);
        let mut ck = sample();
        ck.tables = TrainCheckpoint::snapshot_master(&master);
        let back = ck.restore_master();
        assert_eq!(back.tables().unwrap().len(), master.tables().unwrap().len());
        for (a, b) in master.tables().unwrap().iter().zip(back.tables().unwrap()) {
            assert_eq!(a.weights().as_slice(), b.weights().as_slice());
        }
    }

    #[test]
    fn adversarial_declared_sizes_do_not_allocate_or_panic() {
        // A header that claims u32::MAX scheduler-history entries on a
        // tiny buffer must fail cleanly (Truncated), not try to allocate.
        let mut bytes = sample().encode();
        // scheduler history length sits after: magic(4)+ver(4)+seed(8)+
        // epoch(4)+cursors(16)+counters(32)+gpus(4)+cold(1)+rate(4)+
        // prev(1+8)+streak(4)+u(4) = offset 94.
        bytes[94..98].copy_from_slice(&u32::MAX.to_le_bytes());
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(TrainCheckpoint::decode(&bytes), Err(CheckpointError::Truncated(_))));
    }
}
