//! Data-parallel training with explicit replicas — the numerical proof
//! behind the paper's §II-B challenge 3.
//!
//! FAE replicates the model (and the hot embedding bags) on every GPU,
//! trains each replica on a shard of the mini-batch, and synchronises with
//! one all-reduce. For plain SGD this is *exactly* equivalent to training
//! a single copy on the full mini-batch: with identical starting
//! parameters `p`, replica `k` computes `p - lr·g_k` on its shard, and the
//! post-step average is `p - lr·avg(g_k) = p - lr·g_full` (when the loss
//! is a sample mean and shards are weighted by size). This module
//! implements that protocol with real math and tests the equivalence —
//! which is what lets [`crate::trainer`] compute against one logical copy
//! while `fae-sysmodel` charges for N.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fae_data::{BatchKind, MiniBatch, WorkloadSpec};
use fae_embed::EmbeddingTable;
use fae_models::{train_step, EmbeddingSource, MasterEmbeddings, RecModel};

use crate::trainer::AnyModel;

/// Whole-table view of one replica's embeddings. [`DataParallel`] only
/// ever builds untiered masters ([`MasterEmbeddings::from_spec`]), so
/// the view always exists; a tiered master here means replica
/// construction was corrupted and the math below would be meaningless.
fn flat(emb: &MasterEmbeddings) -> &[EmbeddingTable] {
    // fae-lint: allow(no-panic, reason = "DataParallel only constructs untiered masters; a tiered replica is construction corruption")
    emb.tables().expect("DataParallel replicas are untiered")
}

/// Mutable counterpart of [`flat`].
fn flat_mut(emb: &mut MasterEmbeddings) -> &mut [EmbeddingTable] {
    // fae-lint: allow(no-panic, reason = "DataParallel only constructs untiered masters; a tiered replica is construction corruption")
    emb.tables_mut().expect("DataParallel replicas are untiered")
}

/// N model+embedding replicas trained data-parallel with parameter
/// averaging (SGD-equivalent to gradient all-reduce).
pub struct DataParallel {
    models: Vec<AnyModel>,
    embeddings: Vec<MasterEmbeddings>,
}

impl DataParallel {
    /// Builds `devices` identically initialised replicas.
    pub fn replicate(spec: &WorkloadSpec, devices: usize, seed: u64) -> Self {
        assert!(devices >= 1, "need at least one device");
        let mut models = Vec::with_capacity(devices);
        let mut embeddings = Vec::with_capacity(devices);
        for _ in 0..devices {
            // Re-seeding per replica guarantees identical initial weights.
            let mut rng = StdRng::seed_from_u64(seed);
            models.push(AnyModel::from_spec(spec, &mut rng));
            embeddings.push(MasterEmbeddings::from_spec(spec, &mut rng));
        }
        Self { models, embeddings }
    }

    /// Number of replicas.
    pub fn devices(&self) -> usize {
        self.models.len()
    }

    /// One replica's model (for evaluation).
    pub fn model(&mut self, device: usize) -> &mut AnyModel {
        &mut self.models[device]
    }

    /// One replica's embeddings.
    pub fn embeddings(&self, device: usize) -> &MasterEmbeddings {
        &self.embeddings[device]
    }

    /// Drops one replica from the group — the recovery step after a
    /// device loss. The survivors carry identical parameters (invariant
    /// after every [`DataParallel::train_step`]), so no state moves;
    /// subsequent steps simply shard over N−1 devices. The *cost* of the
    /// re-shard (communicator re-init, re-replication) is charged by
    /// `fae_sysmodel::reshard_cost`, not here.
    pub fn remove_device(&mut self, device: usize) {
        assert!(self.devices() > 1, "cannot remove the last device");
        assert!(device < self.devices(), "device {device} out of range");
        self.models.remove(device);
        self.embeddings.remove(device);
    }

    /// Splits `batch` into `devices` contiguous shards (sizes differ by at
    /// most one sample).
    fn shards(&self, batch: &MiniBatch) -> Vec<MiniBatch> {
        let n = batch.len();
        let k = self.devices();
        let base = n / k;
        let extra = n % k;
        let mut out = Vec::with_capacity(k);
        let mut start = 0usize;
        // Re-gather each shard through a scratch dataset-like path: build
        // directly from the batch fields.
        for d in 0..k {
            let len = base + usize::from(d < extra);
            let ids: Vec<usize> = (start..start + len).collect();
            start += len;
            let mut dense = Vec::with_capacity(len * batch.dense_width);
            let mut labels = Vec::with_capacity(len);
            for &i in &ids {
                dense.extend_from_slice(
                    &batch.dense[i * batch.dense_width..(i + 1) * batch.dense_width],
                );
                labels.push(batch.labels[i]);
            }
            let sparse = batch.sparse.iter().map(|csr| csr.gather(&ids)).collect();
            out.push(MiniBatch {
                kind: batch.kind,
                dense,
                dense_width: batch.dense_width,
                sparse,
                labels,
            });
        }
        out
    }

    /// One data-parallel training step: each replica trains on its shard,
    /// then parameters (dense + embeddings) are all-reduced by weighted
    /// average. Returns the sample-weighted mean loss.
    pub fn train_step(&mut self, batch: &MiniBatch, lr: f32) -> f32 {
        assert!(!batch.is_empty(), "cannot train on an empty batch");
        let shards = self.shards(batch);
        let mut loss_sum = 0.0f64;
        let mut weights = Vec::with_capacity(shards.len());
        for ((model, emb), shard) in
            self.models.iter_mut().zip(self.embeddings.iter_mut()).zip(&shards)
        {
            weights.push(shard.len() as f64 / batch.len() as f64);
            if shard.is_empty() {
                continue;
            }
            let loss = train_step(model, emb, shard, lr);
            loss_sum += loss as f64 * shard.len() as f64;
        }
        self.allreduce_params(&weights);
        (loss_sum / batch.len() as f64) as f32
    }

    /// Weighted parameter average across replicas — the all-reduce.
    fn allreduce_params(&mut self, weights: &[f64]) {
        // Dense parameters.
        let mut avg: Vec<f64> = Vec::new();
        for (model, &w) in self.models.iter().zip(weights) {
            let mut p = Vec::new();
            model.write_params(&mut p);
            if avg.is_empty() {
                avg = vec![0.0; p.len()];
            }
            for (a, &v) in avg.iter_mut().zip(&p) {
                *a += w * v as f64;
            }
        }
        let avg_f32: Vec<f32> = avg.iter().map(|&v| v as f32).collect();
        for model in &mut self.models {
            model.read_params(&avg_f32);
        }
        // Embedding tables.
        let tables = self.embeddings[0].num_tables();
        for t in 0..tables {
            let len = flat(&self.embeddings[0])[t].weights().len();
            let mut acc = vec![0.0f64; len];
            for (emb, &w) in self.embeddings.iter().zip(weights) {
                for (a, &v) in acc.iter_mut().zip(flat(emb)[t].weights().as_slice()) {
                    *a += w * v as f64;
                }
            }
            for emb in &mut self.embeddings {
                let dst = flat_mut(emb)[t].weights_mut().as_mut_slice();
                for (d, &a) in dst.iter_mut().zip(&acc) {
                    *d = a as f32;
                }
            }
        }
    }

    /// Maximum absolute parameter deviation across replicas (0 after every
    /// step by construction).
    pub fn max_divergence(&self) -> f32 {
        let mut p0 = Vec::new();
        self.models[0].write_params(&mut p0);
        let mut max = 0.0f32;
        for m in &self.models[1..] {
            let mut p = Vec::new();
            m.write_params(&mut p);
            for (a, b) in p0.iter().zip(&p) {
                max = max.max((a - b).abs());
            }
        }
        for t in 0..self.embeddings[0].num_tables() {
            let w0 = flat(&self.embeddings[0])[t].weights();
            for e in &self.embeddings[1..] {
                max = max.max(flat(e)[t].weights().sub(w0).max_abs());
            }
        }
        max
    }
}

/// Convenience: gathers a mini-batch over the whole range `[0, n)` of a
/// dataset (used by the equivalence tests).
pub fn full_batch(ds: &fae_data::Dataset, n: usize) -> MiniBatch {
    MiniBatch::gather(ds, &(0..n).collect::<Vec<_>>(), BatchKind::Unclassified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::{generate, GenOptions};
    use fae_models::evaluate;

    fn setup(devices: usize) -> (WorkloadSpec, fae_data::Dataset, DataParallel) {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(41, 512));
        let dp = DataParallel::replicate(&spec, devices, 7);
        (spec, ds, dp)
    }

    #[test]
    fn replicas_start_and_stay_identical() {
        let (_, ds, mut dp) = setup(4);
        assert_eq!(dp.max_divergence(), 0.0);
        for step in 0..5 {
            let mb = full_batch(&ds, 64);
            dp.train_step(&mb, 0.05);
            assert_eq!(dp.max_divergence(), 0.0, "replicas diverged at step {step}");
        }
    }

    #[test]
    fn data_parallel_matches_single_device_sgd() {
        // K-way data parallel with parameter averaging must equal 1-way
        // training on the same batches (up to f32 accumulation noise).
        let (spec, ds, mut dp4) = setup(4);
        let mut dp1 = DataParallel::replicate(&spec, 1, 7);
        for i in 0..8 {
            let ids: Vec<usize> = (i * 64..(i + 1) * 64).collect();
            let mb = MiniBatch::gather(&ds, &ids, BatchKind::Unclassified);
            dp4.train_step(&mb, 0.05);
            dp1.train_step(&mb, 0.05);
        }
        let mut p4 = Vec::new();
        dp4.model(0).write_params(&mut p4);
        let mut p1 = Vec::new();
        dp1.model(0).write_params(&mut p1);
        let max_diff = p4.iter().zip(&p1).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max_diff < 5e-4, "dense params diverged by {max_diff}");
        // Embeddings agree too.
        for t in 0..dp4.embeddings(0).num_tables() {
            let d = dp4.embeddings(0).tables().unwrap()[t]
                .weights()
                .sub(dp1.embeddings(0).tables().unwrap()[t].weights())
                .max_abs();
            assert!(d < 5e-4, "table {t} diverged by {d}");
        }
    }

    #[test]
    fn uneven_batches_are_weighted_correctly() {
        // Batch of 7 across 4 devices: shards 2/2/2/1. The weighted
        // average must still reproduce single-device training.
        let (spec, ds, mut dp4) = setup(4);
        let mut dp1 = DataParallel::replicate(&spec, 1, 7);
        let mb = full_batch(&ds, 7);
        dp4.train_step(&mb, 0.1);
        dp1.train_step(&mb, 0.1);
        let mut a = Vec::new();
        dp4.model(0).write_params(&mut a);
        let mut b = Vec::new();
        dp1.model(0).write_params(&mut b);
        let diff = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
        assert!(diff < 1e-4, "uneven sharding broke equivalence: {diff}");
    }

    #[test]
    fn removing_a_device_mid_run_preserves_sgd_equivalence() {
        // Train 4-way, lose a device, keep training 3-way: the survivors
        // must stay mutually identical and still match 1-way SGD on the
        // same batch sequence.
        let (spec, ds, mut dp) = setup(4);
        let mut dp1 = DataParallel::replicate(&spec, 1, 7);
        for i in 0..3 {
            let ids: Vec<usize> = (i * 64..(i + 1) * 64).collect();
            let mb = MiniBatch::gather(&ds, &ids, BatchKind::Unclassified);
            dp.train_step(&mb, 0.05);
            dp1.train_step(&mb, 0.05);
        }
        dp.remove_device(2);
        assert_eq!(dp.devices(), 3);
        assert_eq!(dp.max_divergence(), 0.0, "survivors must agree after removal");
        for i in 3..6 {
            let ids: Vec<usize> = (i * 64..(i + 1) * 64).collect();
            let mb = MiniBatch::gather(&ds, &ids, BatchKind::Unclassified);
            dp.train_step(&mb, 0.05);
            dp1.train_step(&mb, 0.05);
            assert_eq!(dp.max_divergence(), 0.0, "replicas diverged after removal");
        }
        let mut a = Vec::new();
        dp.model(0).write_params(&mut a);
        let mut b = Vec::new();
        dp1.model(0).write_params(&mut b);
        let diff = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
        assert!(diff < 5e-4, "post-removal training diverged from 1-way SGD by {diff}");
    }

    #[test]
    #[should_panic(expected = "cannot remove the last device")]
    fn removing_the_last_device_panics() {
        let (_, _, mut dp) = setup(1);
        dp.remove_device(0);
    }

    #[test]
    fn trained_replicas_predict_identically() {
        let (_, ds, mut dp) = setup(3);
        for i in 0..4 {
            let ids: Vec<usize> = (i * 64..(i + 1) * 64).collect();
            dp.train_step(&MiniBatch::gather(&ds, &ids, BatchKind::Unclassified), 0.05);
        }
        let test = vec![full_batch(&ds, 128)];
        let emb0 = dp.embeddings(0).tables().unwrap().to_vec();
        let r0 = {
            let emb = MasterEmbeddings::from_tables(emb0);
            evaluate(dp.model(0), &emb, &test)
        };
        let emb2 = dp.embeddings(2).tables().unwrap().to_vec();
        let r2 = {
            let emb = MasterEmbeddings::from_tables(emb2);
            evaluate(dp.model(2), &emb, &test)
        };
        assert_eq!(r0.loss, r2.loss);
        assert_eq!(r0.accuracy, r2.accuracy);
    }
}
