//! The parallel execution engine: per-device worker threads with
//! deterministic gradient reduction.
//!
//! The trainer used to execute every simulated device's step serially on
//! one thread, so only the *simulated* clock sped up with more GPUs. This
//! engine holds `W` bit-identical model replicas and runs each
//! mini-batch's contiguous sample shards on `W` scoped worker threads
//! (one per simulated device), then reduces the dense gradients in
//! worker-index order and applies the identical reduced gradient to every
//! replica — the synchronous data-parallel SGD of the paper's §II-B, but
//! actually concurrent.
//!
//! # Determinism contract
//!
//! For a *fixed* worker count the engine is bit-identical run to run (and
//! across checkpoint/resume):
//!
//! * batch sharding is a pure function of `(batch_len, W)`
//!   ([`fae_data::MiniBatch::shards`]);
//! * worker `w` scales its loss gradient by `n_w / N` before
//!   backpropagation, so summing worker gradients reproduces the
//!   full-batch mean-loss gradient;
//! * dense gradients are summed in **worker-index order** on the calling
//!   thread — never in completion order — so float summation order is
//!   fixed regardless of thread scheduling;
//! * sparse gradients are merged per table in the same worker-index
//!   order, and applied by the caller (serially, or shard-parallel over
//!   the disjoint row-range shards of
//!   [`fae_embed::ShardedEmbeddingTable`] — both orders touch disjoint
//!   rows, so both are exact);
//! * every replica loads the *same* reduced gradient via
//!   [`RecModel::read_grads`] and steps, so replicas never drift — there
//!   is no parameter broadcast after step 0.
//!
//! Different worker counts may differ in the last float bit (summation
//! order changes), exactly like real data-parallel training. `W = 1`
//! bypasses the scale multiply and the reduction entirely and is
//! arithmetic-for-arithmetic identical to the serial
//! [`fae_models::train_step`] path, which is what keeps the pre-engine
//! golden results valid.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fae_data::{MiniBatch, WorkloadSpec};
use fae_embed::SparseGrad;
use fae_models::{forward_backward, EmbeddingSource, MasterEmbeddings, RecModel};
use fae_sysmodel::Timeline;
use fae_telemetry::{JournalEvent, StepMode, Telemetry};

use crate::faults::{InjectedFault, RecoveryAction};
use crate::replicator::HotEmbeddings;
use crate::trainer::AnyModel;

/// `W` bit-identical model replicas plus the scoped-thread step executor.
pub struct ParallelEngine {
    replicas: Vec<AnyModel>,
    telemetry: Telemetry,
}

/// What one worker — a local thread or a remote node — produces for the
/// deterministic reduction.
pub struct ShardOutput {
    /// Shard-mean BCE loss, already grad-scaled by the worker.
    pub loss: f32,
    /// Samples in the shard (`n_w`).
    pub samples: usize,
    /// Dense gradients extracted via [`RecModel::write_grads`].
    pub dense: Vec<f32>,
    /// Per-table sparse embedding gradients.
    pub sparse: Vec<SparseGrad>,
}

/// Runs one shard's forward/backward on `replica`, scaling the loss
/// gradient by `shard.len() / total` so that summing worker gradients
/// reproduces the full-batch mean-loss gradient. This is the exact
/// per-worker arithmetic of [`ParallelEngine::step`], exposed so a
/// networked engine can run the *same* computation for shards whose
/// owning node is unreachable.
pub fn compute_shard<E>(
    replica: &mut AnyModel,
    emb: &E,
    shard: &MiniBatch,
    total: usize,
) -> ShardOutput
where
    E: EmbeddingSource + Sync,
{
    let scale = shard.len() as f32 / total as f32;
    let (loss, sparse) = forward_backward(replica, emb, shard, scale);
    let mut dense = Vec::new();
    replica.write_grads(&mut dense);
    ShardOutput { loss, samples: shard.len(), dense, sparse }
}

/// Reduces worker outputs strictly in worker-index order — never in
/// completion or arrival order — returning `(loss, dense, sparse)`.
/// Skipped shards (`None`) contribute nothing; float summation order is
/// therefore a pure function of which indices produced output.
pub fn reduce_shards(
    outputs: &[Option<ShardOutput>],
    total: usize,
    num_tables: usize,
    dim: usize,
) -> (f32, Vec<f32>, Vec<SparseGrad>) {
    let mut loss = 0.0f32;
    let mut combined: Vec<f32> = Vec::new();
    let mut merged: Vec<SparseGrad> = (0..num_tables).map(|_| SparseGrad::new(dim)).collect();
    for out in outputs.iter().flatten() {
        loss += out.loss * (out.samples as f32 / total as f32);
        if combined.is_empty() {
            combined = out.dense.clone();
        } else {
            for (c, &g) in combined.iter_mut().zip(&out.dense) {
                *c += g;
            }
        }
        for (m, s) in merged.iter_mut().zip(&out.sparse) {
            m.merge(s);
        }
    }
    (loss, combined, merged)
}

impl ParallelEngine {
    /// Wraps an already-built model as replica 0 and clones `workers - 1`
    /// further replicas by re-seeding the model RNG — [`AnyModel`]
    /// construction consumes a deterministic prefix of the seed stream,
    /// so every replica is bit-identical to the first (the same trick as
    /// `DataParallel::replicate`).
    pub fn from_model(model: AnyModel, spec: &WorkloadSpec, seed: u64, workers: usize) -> Self {
        let workers = workers.max(1);
        let mut replicas = Vec::with_capacity(workers);
        replicas.push(model);
        for _ in 1..workers {
            let mut rng = StdRng::seed_from_u64(seed);
            replicas.push(AnyModel::from_spec(spec, &mut rng));
        }
        Self { replicas, telemetry: Telemetry::disabled() }
    }

    /// Attaches a telemetry handle; each worker's compute then records
    /// real wall-clock seconds under `train/worker<w>` spans.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Worker (replica) count.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// Replica 0 — used for evaluation and checkpointing (all replicas
    /// are identical at every step boundary).
    pub fn primary(&mut self) -> &mut AnyModel {
        &mut self.replicas[0]
    }

    /// Immutable replica 0.
    pub fn primary_ref(&self) -> &AnyModel {
        &self.replicas[0]
    }

    /// Copies replica 0's dense parameters into every other replica —
    /// called once after a checkpoint restore overwrites replica 0.
    pub fn broadcast_params(&mut self) {
        if self.replicas.len() == 1 {
            return;
        }
        let mut params = Vec::new();
        self.replicas[0].write_params(&mut params);
        for r in self.replicas.iter_mut().skip(1) {
            r.read_params(&params);
        }
    }

    /// Executes one training step: shards `batch` across the worker
    /// threads, reduces, and applies the dense update to every replica.
    /// Returns the mini-batch mean BCE loss and the merged per-table
    /// sparse gradients (keyed as the embedding source keys them); the
    /// caller applies those to its embedding source — which is what lets
    /// the same engine drive both the CPU master tables (cold steps) and
    /// the sharded hot bags (hot steps).
    pub fn step<E>(&mut self, emb: &E, batch: &MiniBatch, lr: f32) -> (f32, Vec<SparseGrad>)
    where
        E: EmbeddingSource + Sync,
    {
        assert!(!batch.is_empty(), "cannot train on an empty mini-batch");
        let w = self.replicas.len();
        if w == 1 {
            // Serial fast path: no shard split, no grad-scale multiply,
            // no reduction — bit-identical to `train_step`'s arithmetic.
            let (loss, sparse) = forward_backward(&mut self.replicas[0], emb, batch, 1.0);
            self.replicas[0].sgd_step(lr);
            return (loss, sparse);
        }

        let n = batch.len();
        let shards = batch.shards(w);
        let mut outputs: Vec<Option<ShardOutput>> = Vec::new();
        outputs.resize_with(w, || None);

        std::thread::scope(|scope| {
            for (widx, ((replica, shard), slot)) in
                self.replicas.iter_mut().zip(&shards).zip(outputs.iter_mut()).enumerate()
            {
                if shard.is_empty() {
                    continue;
                }
                let telemetry = self.telemetry.clone();
                scope.spawn(move || {
                    let _span = telemetry.span(&format!("train/worker{widx}"));
                    *slot = Some(compute_shard(replica, emb, shard, n));
                });
            }
        });

        // Reduce on the calling thread, strictly in worker-index order.
        let (loss, combined, merged) = reduce_shards(&outputs, n, emb.num_tables(), emb.dim());

        // Every replica applies the identical reduced gradient — replicas
        // that sat out (empty shard) overwrite their stale grads too.
        for r in &mut self.replicas {
            r.read_grads(&combined);
            r.sgd_step(lr);
        }
        (loss, merged)
    }

    /// Maximum absolute dense-parameter divergence across replicas
    /// (tests; must stay exactly 0.0).
    pub fn max_divergence(&self) -> f32 {
        let mut p0 = Vec::new();
        self.replicas[0].write_params(&mut p0);
        let mut worst = 0.0f32;
        for r in &self.replicas[1..] {
            let mut p = Vec::new();
            r.write_params(&mut p);
            for (a, b) in p0.iter().zip(&p) {
                worst = worst.max((a - b).abs());
            }
        }
        worst
    }

    /// Mutable access to replica `k` — a networked engine computing an
    /// unreachable node's shard locally runs the exact per-worker
    /// arithmetic ([`compute_shard`]) against this replica.
    pub fn replica_mut(&mut self, k: usize) -> &mut AnyModel {
        &mut self.replicas[k]
    }

    /// Applies an already-reduced dense gradient to every replica and
    /// steps — the second half of [`ParallelEngine::step`], exposed so a
    /// networked engine can reduce remote [`ShardOutput`]s itself and
    /// still update the local replicas identically.
    pub fn apply_combined(&mut self, combined: &[f32], lr: f32) {
        for r in &mut self.replicas {
            r.read_grads(combined);
            r.sgd_step(lr);
        }
    }
}

/// Side effects a [`StepEngine`] accumulated since the last
/// [`StepEngine::drain_net`] — simulated-time charges, journal events,
/// injected faults and recovery actions produced by the transport layer
/// rather than the training loop itself. The purely local
/// [`ParallelEngine`] never produces any.
pub struct NetEvents {
    /// Charges to fold into the *surrounding* step's journal delta (the
    /// trainer merges these into the timeline only, so the next `Step` /
    /// `Sync` journal event absorbs them into its phase seconds).
    pub step_charges: Timeline,
    /// Charges already covered by a phase-carrying event in `journal`
    /// (the trainer merges these into both the timeline and its journal
    /// snapshot, so they are not double-counted).
    pub event_charges: Timeline,
    /// Journal events to emit (membership changes, reshard phases, …).
    /// Their phase seconds must sum to `event_charges`.
    pub journal: Vec<JournalEvent>,
    /// Faults the transport injected, for the run report.
    pub faults: Vec<InjectedFault>,
    /// Recovery actions the transport took, for the run report.
    pub recoveries: Vec<RecoveryAction>,
}

impl Default for NetEvents {
    fn default() -> Self {
        Self {
            step_charges: Timeline::new(),
            event_charges: Timeline::new(),
            journal: Vec::new(),
            faults: Vec::new(),
            recoveries: Vec::new(),
        }
    }
}

impl NetEvents {
    /// True when there is nothing to absorb.
    pub fn is_empty(&self) -> bool {
        self.journal.is_empty()
            && self.faults.is_empty()
            && self.recoveries.is_empty()
            && self.step_charges.total() == 0.0
            && self.event_charges.total() == 0.0
    }
}

/// A training-step executor the FAE trainer can drive: the in-process
/// [`ParallelEngine`], or a networked engine fanning shards out to
/// worker processes (`fae-net`). The trainer is generic over this trait
/// ([`crate::trainer::train_fae_with_engine`]), so the schedule, cost
/// model, fault handling and checkpointing are written once.
///
/// The contract mirrors [`ParallelEngine`]'s determinism guarantees: for
/// a fixed worker count, `engine_step` must return bit-identical results
/// to `ParallelEngine::step` with the same replicas — regardless of
/// where the shards were computed.
pub trait StepEngine {
    /// Executes one training step over `batch` against `emb` and returns
    /// the mean loss plus merged per-table sparse gradients (the caller
    /// applies those to its embedding source). `step` and `mode` let a
    /// networked engine tag wire messages; the local engine ignores them.
    fn engine_step<E>(
        &mut self,
        emb: &E,
        batch: &MiniBatch,
        step: u64,
        mode: StepMode,
        lr: f32,
    ) -> (f32, Vec<SparseGrad>)
    where
        E: EmbeddingSource + Sync;

    /// Logical worker (shard) count.
    fn workers(&self) -> usize;

    /// Replica 0, for evaluation and checkpointing.
    fn primary(&mut self) -> &mut AnyModel;

    /// Immutable replica 0.
    fn primary_ref(&self) -> &AnyModel;

    /// Re-broadcasts replica 0's dense parameters to every replica
    /// (after a checkpoint restore).
    fn broadcast_params(&mut self);

    /// Attaches a telemetry handle.
    fn set_telemetry(&mut self, telemetry: Telemetry);

    /// The trainer just refreshed the hot bags from the master tables; a
    /// networked engine ships the refreshed rows to its workers here.
    fn on_refresh(&mut self, _step: u64, _master: &MasterEmbeddings, _hot: &HotEmbeddings) {}

    /// The trainer just wrote the hot bags back into the master tables.
    fn on_write_back(&mut self, _step: u64, _master: &MasterEmbeddings) {}

    /// The run degraded to CPU-only cold execution; no further hot
    /// shards will be fanned out.
    fn on_cold_only(&mut self, _step: u64) {}

    /// A checkpoint restore replaced the master tables (and replica 0's
    /// parameters, already re-broadcast) before the first step.
    fn on_master_restored(&mut self, _master: &MasterEmbeddings) {}

    /// Drains transport side effects accumulated since the last call;
    /// the trainer absorbs them into the timeline, journal and report.
    fn drain_net(&mut self) -> NetEvents {
        NetEvents::default()
    }
}

impl StepEngine for ParallelEngine {
    fn engine_step<E>(
        &mut self,
        emb: &E,
        batch: &MiniBatch,
        _step: u64,
        _mode: StepMode,
        lr: f32,
    ) -> (f32, Vec<SparseGrad>)
    where
        E: EmbeddingSource + Sync,
    {
        self.step(emb, batch, lr)
    }

    fn workers(&self) -> usize {
        ParallelEngine::workers(self)
    }

    fn primary(&mut self) -> &mut AnyModel {
        ParallelEngine::primary(self)
    }

    fn primary_ref(&self) -> &AnyModel {
        ParallelEngine::primary_ref(self)
    }

    fn broadcast_params(&mut self) {
        ParallelEngine::broadcast_params(self)
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        ParallelEngine::set_telemetry(self, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::{generate, BatchKind, Dataset, GenOptions};
    use fae_models::MasterEmbeddings;

    fn setup(seed: u64) -> (WorkloadSpec, Dataset) {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(21, 1_000));
        let _ = seed;
        (spec, ds)
    }

    fn engine(
        spec: &WorkloadSpec,
        seed: u64,
        workers: usize,
    ) -> (ParallelEngine, MasterEmbeddings) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = AnyModel::from_spec(spec, &mut rng);
        let master = MasterEmbeddings::from_spec(spec, &mut rng);
        (ParallelEngine::from_model(model, spec, seed, workers), master)
    }

    fn run_steps(workers: usize, steps: usize) -> Vec<f32> {
        let (spec, ds) = setup(3);
        let (mut eng, mut master) = engine(&spec, 3, workers);
        let mut losses = Vec::new();
        for s in 0..steps {
            let ids: Vec<usize> = (s * 64..(s + 1) * 64).collect();
            let mb = MiniBatch::gather(&ds, &ids, BatchKind::Unclassified);
            let (loss, grads) = eng.step(&master, &mb, 0.05);
            master.apply_sparse_grads(&grads, 0.05);
            losses.push(loss);
        }
        assert_eq!(eng.max_divergence(), 0.0, "replicas drifted at W={workers}");
        losses
    }

    #[test]
    fn single_worker_matches_serial_train_step_bitwise() {
        let (spec, ds) = setup(3);
        let (mut eng, mut master_eng) = engine(&spec, 3, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = AnyModel::from_spec(&spec, &mut rng);
        let mut master = MasterEmbeddings::from_spec(&spec, &mut rng);
        for s in 0..4 {
            let ids: Vec<usize> = (s * 64..(s + 1) * 64).collect();
            let mb = MiniBatch::gather(&ds, &ids, BatchKind::Unclassified);
            let serial_loss = fae_models::train_step(&mut model, &mut master, &mb, 0.05);
            let (loss, grads) = eng.step(&master_eng, &mb, 0.05);
            master_eng.apply_sparse_grads(&grads, 0.05);
            assert_eq!(loss.to_bits(), serial_loss.to_bits(), "step {s}");
        }
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        model.write_params(&mut pa);
        eng.primary_ref().write_params(&mut pb);
        assert_eq!(pa, pb, "engine W=1 must be bit-identical to train_step");
    }

    #[test]
    fn fixed_worker_count_is_bit_identical_across_runs() {
        for w in [2usize, 4] {
            let a = run_steps(w, 3);
            let b = run_steps(w, 3);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "W={w} not deterministic");
        }
    }

    #[test]
    fn multi_worker_stays_close_to_serial_sgd() {
        // Different float summation order, same mathematics: the W=4 loss
        // trajectory must track W=1 tightly.
        let a = run_steps(1, 5);
        let b = run_steps(4, 5);
        for (s, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!((x - y).abs() < 1e-3, "step {s}: {x} vs {y}");
        }
        assert!(b[4] < b[0], "training with W=4 must still reduce loss");
    }

    #[test]
    fn more_workers_than_samples_leaves_idle_workers_consistent() {
        let (spec, ds) = setup(3);
        let (mut eng, mut master) = engine(&spec, 3, 4);
        let mb = MiniBatch::gather(&ds, &[0, 1], BatchKind::Unclassified);
        let (loss, grads) = eng.step(&master, &mb, 0.05);
        master.apply_sparse_grads(&grads, 0.05);
        assert!(loss.is_finite());
        assert_eq!(eng.max_divergence(), 0.0);
    }

    #[test]
    fn broadcast_params_resyncs_replicas() {
        let (spec, _) = setup(3);
        let (mut eng, _) = engine(&spec, 3, 3);
        // Simulate a checkpoint restore touching only replica 0.
        let n = eng.primary_ref().dense_param_count();
        eng.primary().read_params(&vec![0.125f32; n]);
        assert!(eng.max_divergence() > 0.0);
        eng.broadcast_params();
        assert_eq!(eng.max_divergence(), 0.0);
    }
}
