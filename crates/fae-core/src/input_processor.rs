//! The Input Processor (§III-B): classifies every sparse input as hot or
//! cold and packs them into *pure* mini-batches.
//!
//! "A sparse-input is classified as hot only if all its embedding table
//! accesses are to hot entries. ... As this is completely parallelizable
//! ... we divide this task across multiple cores" — classification fans
//! out with rayon. Batch purity is what rescues the probability collapse
//! of Fig 4: a random mini-batch of B inputs is all-hot with probability
//! `p^B`, so FAE *constructs* pure batches instead of hoping for them.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use fae_data::format::FaeFile;
use fae_data::{BatchKind, Dataset, MiniBatch};
use fae_embed::HotColdPartition;

/// Input-processor options.
#[derive(Clone, Copy, Debug)]
pub struct PreprocessConfig {
    /// Global mini-batch size.
    pub minibatch_size: usize,
    /// Shuffle seed for batch assembly (determinism).
    pub seed: u64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self { minibatch_size: 128, seed: 0x5EED }
    }
}

/// The preprocessed training stream.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// Pure-hot mini-batches.
    pub hot_batches: Vec<MiniBatch>,
    /// Pure-cold mini-batches.
    pub cold_batches: Vec<MiniBatch>,
    /// Fraction of inputs classified hot.
    pub hot_input_fraction: f64,
    /// The partitions the classification ran against.
    pub partitions: Vec<HotColdPartition>,
}

impl Preprocessed {
    /// Total mini-batches.
    pub fn total_batches(&self) -> usize {
        self.hot_batches.len() + self.cold_batches.len()
    }

    /// Total samples across all batches.
    pub fn total_samples(&self) -> usize {
        self.hot_batches.iter().chain(&self.cold_batches).map(|b| b.len()).sum()
    }

    /// Serialises the stream into the FAE on-disk container.
    pub fn to_fae_file(&self, workload: &str) -> FaeFile {
        let batches: Vec<MiniBatch> =
            self.cold_batches.iter().chain(&self.hot_batches).cloned().collect();
        FaeFile::new(workload, batches)
    }
}

/// Classifies every input: `true` iff *all* its lookups in *all* tables
/// hit hot rows. Parallel over inputs.
pub fn classify_inputs(ds: &Dataset, partitions: &[HotColdPartition]) -> Vec<bool> {
    assert_eq!(partitions.len(), ds.sparse.len(), "one partition per table");
    (0..ds.len())
        .into_par_iter()
        .map(|i| {
            ds.sparse
                .iter()
                .zip(partitions)
                .all(|(csr, p)| csr.bag(i).iter().all(|&idx| p.is_hot(idx)))
        })
        .collect()
}

/// Runs the full input-processing stage: classify, split, shuffle, pack.
pub fn preprocess_inputs(
    ds: &Dataset,
    partitions: Vec<HotColdPartition>,
    cfg: &PreprocessConfig,
) -> Preprocessed {
    assert!(cfg.minibatch_size > 0, "mini-batch size must be positive");
    let is_hot = classify_inputs(ds, &partitions);
    let mut hot_ids: Vec<usize> = Vec::new();
    let mut cold_ids: Vec<usize> = Vec::new();
    for (i, &h) in is_hot.iter().enumerate() {
        if h {
            hot_ids.push(i);
        } else {
            cold_ids.push(i);
        }
    }
    let hot_input_fraction = hot_ids.len() as f64 / ds.len().max(1) as f64;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    hot_ids.shuffle(&mut rng);
    cold_ids.shuffle(&mut rng);

    let pack = |ids: &[usize], kind: BatchKind| -> Vec<MiniBatch> {
        ids.chunks(cfg.minibatch_size).map(|c| MiniBatch::gather(ds, c, kind)).collect()
    };
    Preprocessed {
        hot_batches: pack(&hot_ids, BatchKind::Hot),
        cold_batches: pack(&cold_ids, BatchKind::Cold),
        hot_input_fraction,
        partitions,
    }
}

/// Analytic probability that a random (non-constructed) mini-batch of
/// `batch` inputs is entirely hot when a fraction `p` of inputs are hot —
/// the curve of Fig 4.
pub fn all_hot_minibatch_probability(p: f64, batch: usize) -> f64 {
    p.powi(batch as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::{generate, GenOptions, WorkloadSpec};

    fn setup() -> (Dataset, Vec<HotColdPartition>) {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(31, 10_000));
        // Force real partitions from full counts with a visible cutoff.
        let all: Vec<usize> = (0..ds.len()).collect();
        let counters = crate::calibrator::log_accesses(&ds, &all);
        let parts: Vec<HotColdPartition> =
            counters.iter().map(|c| HotColdPartition::from_counts(c, 5)).collect();
        (ds, parts)
    }

    #[test]
    fn classification_matches_serial_reference() {
        let (ds, parts) = setup();
        let par = classify_inputs(&ds, &parts);
        for (i, &got) in par.iter().enumerate() {
            let serial = ds
                .sparse
                .iter()
                .zip(&parts)
                .all(|(csr, p)| csr.bag(i).iter().all(|&idx| p.is_hot(idx)));
            assert_eq!(got, serial, "input {i}");
        }
    }

    #[test]
    fn batches_are_pure_and_cover_everything() {
        let (ds, parts) = setup();
        let pre = preprocess_inputs(&ds, parts, &PreprocessConfig { minibatch_size: 64, seed: 1 });
        assert_eq!(pre.total_samples(), ds.len());
        assert!(pre.hot_input_fraction > 0.1 && pre.hot_input_fraction < 1.0);
        // Purity invariant: every lookup in a hot batch is hot.
        for b in &pre.hot_batches {
            assert_eq!(b.kind, BatchKind::Hot);
            for (t, csr) in b.sparse.iter().enumerate() {
                for &idx in &csr.indices {
                    assert!(pre.partitions[t].is_hot(idx), "cold row {idx} in hot batch");
                }
            }
        }
        // Every cold batch has at least one cold lookup per sample... not
        // necessarily per sample, but each cold *input* has ≥1 cold lookup.
        for b in &pre.cold_batches {
            assert_eq!(b.kind, BatchKind::Cold);
            for s in 0..b.len() {
                let any_cold = b
                    .sparse
                    .iter()
                    .enumerate()
                    .any(|(t, csr)| csr.bag(s).iter().any(|&i| !pre.partitions[t].is_hot(i)));
                assert!(any_cold, "cold batch contains an all-hot input");
            }
        }
    }

    #[test]
    fn batch_sizes_respect_config() {
        let (ds, parts) = setup();
        let pre = preprocess_inputs(&ds, parts, &PreprocessConfig { minibatch_size: 128, seed: 2 });
        for b in pre.hot_batches.iter().chain(&pre.cold_batches) {
            assert!(b.len() <= 128 && !b.is_empty());
        }
        // At most one partial batch per class.
        let partial_hot = pre.hot_batches.iter().filter(|b| b.len() < 128).count();
        let partial_cold = pre.cold_batches.iter().filter(|b| b.len() < 128).count();
        assert!(partial_hot <= 1 && partial_cold <= 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let (ds, parts) = setup();
        let a = preprocess_inputs(
            &ds,
            parts.clone(),
            &PreprocessConfig { minibatch_size: 64, seed: 3 },
        );
        let b = preprocess_inputs(&ds, parts, &PreprocessConfig { minibatch_size: 64, seed: 3 });
        assert_eq!(a.hot_batches.len(), b.hot_batches.len());
        for (x, y) in a.hot_batches.iter().zip(&b.hot_batches) {
            assert_eq!(x.labels, y.labels);
        }
    }

    #[test]
    fn fae_file_round_trip_preserves_batch_counts() {
        let (ds, parts) = setup();
        let pre = preprocess_inputs(&ds, parts, &PreprocessConfig { minibatch_size: 64, seed: 4 });
        let f = pre.to_fae_file("tiny");
        let decoded = fae_data::format::FaeFile::decode(&f.encode()).expect("round trip");
        assert_eq!(decoded.hot_count(), pre.hot_batches.len());
        assert_eq!(decoded.cold_count(), pre.cold_batches.len());
    }

    #[test]
    fn fig4_probability_collapses_with_batch_size() {
        let p99 = all_hot_minibatch_probability(0.99, 256);
        assert!(p99 < 0.1, "P(all hot @ 256) = {p99}");
        assert!(all_hot_minibatch_probability(0.99, 1) > 0.98);
        assert!(
            all_hot_minibatch_probability(0.999, 256) > all_hot_minibatch_probability(0.99, 256)
        );
    }

    #[test]
    fn all_hot_partitions_make_everything_hot() {
        let (ds, _) = setup();
        let parts: Vec<HotColdPartition> =
            ds.spec.tables.iter().map(|t| HotColdPartition::all_hot(t.rows)).collect();
        let pre = preprocess_inputs(&ds, parts, &PreprocessConfig::default());
        assert_eq!(pre.hot_input_fraction, 1.0);
        assert!(pre.cold_batches.is_empty());
    }
}
