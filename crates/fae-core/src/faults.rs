//! Deterministic fault injection for the FAE training pipeline.
//!
//! Production DLRM training runs for days; GPUs drop out of the
//! data-parallel group, hot-bag replication can exceed the memory budget
//! `L`, CPU↔GPU syncs fail transiently and artifact files get torn or
//! corrupted. This module provides the machinery to *simulate* those
//! failures reproducibly so the recovery paths in [`crate::trainer`],
//! [`crate::distributed`] and [`crate::artifacts`] are exercised by
//! tests instead of discovered in production:
//!
//! * [`FaultPlan`] — a declarative schedule of faults, parseable from a
//!   compact spec string (`"device-loss@120,sync-failure@300"`),
//! * [`FaultInjector`] — consumes the plan during a run; every decision
//!   (including how many retries a transient fault needs) is a pure
//!   function of the plan's seed, so an interrupted-and-resumed run
//!   observes exactly the same faults as an uninterrupted one,
//! * [`RetryPolicy`] / [`retry_with_backoff`] — bounded exponential
//!   backoff for transient failures, with the waited time reported so
//!   callers can charge it to the [`fae_sysmodel::Timeline`],
//! * [`RecoveryAction`] — the record of what the pipeline did about each
//!   fault, surfaced in `TrainReport`.

use std::fmt;
use std::str::FromStr;

use fae_telemetry::{JournalEvent, Telemetry};

/// The failure modes the injector can simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A GPU drops out of the data-parallel group at training step `at`.
    DeviceLoss,
    /// Replicating the hot bags onto the GPUs fails (budget/OOM) at step
    /// `at`; the run falls back to CPU-only cold execution.
    ReplicationOom,
    /// A hot↔cold embedding sync fails at the first transition at or
    /// after step `at` and must be retried.
    SyncFailure,
    /// The artifact file on disk is corrupted before it is loaded
    /// (`at` is ignored; the fault applies to the next load).
    ArtifactCorruption,
    /// A transient I/O error: the next I/O operation at or after step
    /// `at` fails a bounded number of times before succeeding.
    TransientIo,
    /// Network: the next coordinator→worker frame at or after step `at`
    /// is silently dropped; the reply deadline expires and the frame is
    /// retried.
    NetDrop,
    /// Network: a frame is delayed in flight at step `at`; the wire
    /// layer charges the stall to the timeline.
    NetDelay,
    /// Network: the link to one worker (chosen by
    /// [`FaultInjector::variation`]) is severed at step `at`; the worker
    /// must reconnect and rejoin.
    NetPartition,
    /// Network: a frame is delivered twice at step `at`; the epoch/seq
    /// dedup layer must make the replay a no-op.
    NetDuplicate,
    /// A whole worker process (chosen by [`FaultInjector::variation`])
    /// crashes at step `at`; the coordinator resharding + rejoin path
    /// must recover it.
    WorkerCrash,
}

impl FaultKind {
    /// Stable wire tag (checkpoint container).
    pub fn tag(self) -> u8 {
        match self {
            FaultKind::DeviceLoss => 0,
            FaultKind::ReplicationOom => 1,
            FaultKind::SyncFailure => 2,
            FaultKind::ArtifactCorruption => 3,
            FaultKind::TransientIo => 4,
            FaultKind::NetDrop => 5,
            FaultKind::NetDelay => 6,
            FaultKind::NetPartition => 7,
            FaultKind::NetDuplicate => 8,
            FaultKind::WorkerCrash => 9,
        }
    }

    /// Inverse of [`FaultKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => FaultKind::DeviceLoss,
            1 => FaultKind::ReplicationOom,
            2 => FaultKind::SyncFailure,
            3 => FaultKind::ArtifactCorruption,
            4 => FaultKind::TransientIo,
            5 => FaultKind::NetDrop,
            6 => FaultKind::NetDelay,
            7 => FaultKind::NetPartition,
            8 => FaultKind::NetDuplicate,
            9 => FaultKind::WorkerCrash,
            _ => return None,
        })
    }

    /// Spec-string name (`device-loss`, `sync-failure`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::DeviceLoss => "device-loss",
            FaultKind::ReplicationOom => "replication-oom",
            FaultKind::SyncFailure => "sync-failure",
            FaultKind::ArtifactCorruption => "artifact-corruption",
            FaultKind::TransientIo => "transient-io",
            FaultKind::NetDrop => "net-drop",
            FaultKind::NetDelay => "net-delay",
            FaultKind::NetPartition => "net-partition",
            FaultKind::NetDuplicate => "net-duplicate",
            FaultKind::WorkerCrash => "worker-crash",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FaultKind {
    type Err = FaultPlanError;

    fn from_str(s: &str) -> Result<Self, FaultPlanError> {
        Ok(match s {
            "device-loss" => FaultKind::DeviceLoss,
            "replication-oom" => FaultKind::ReplicationOom,
            "sync-failure" => FaultKind::SyncFailure,
            "artifact-corruption" => FaultKind::ArtifactCorruption,
            "transient-io" => FaultKind::TransientIo,
            "net-drop" => FaultKind::NetDrop,
            "net-delay" => FaultKind::NetDelay,
            "net-partition" => FaultKind::NetPartition,
            "net-duplicate" => FaultKind::NetDuplicate,
            "worker-crash" => FaultKind::WorkerCrash,
            other => return Err(FaultPlanError::UnknownKind(other.to_string())),
        })
    }
}

/// One planned fault: `kind` triggers at the first opportunity at or
/// after step `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// What fails.
    pub kind: FaultKind,
    /// Training step (or occurrence index for I/O faults) at which it
    /// becomes eligible to fire.
    pub at: u64,
}

/// Errors parsing a fault-plan spec string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// Unrecognised fault name.
    UnknownKind(String),
    /// An entry was not of the form `kind@step`.
    BadEntry(String),
    /// The step after `@` did not parse as an integer.
    BadStep(String),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::UnknownKind(k) => write!(
                f,
                "unknown fault kind '{k}' (expected device-loss | replication-oom | \
                 sync-failure | artifact-corruption | transient-io | net-drop | \
                 net-delay | net-partition | net-duplicate | worker-crash)"
            ),
            FaultPlanError::BadEntry(e) => write!(f, "bad fault entry '{e}' (expected kind@step)"),
            FaultPlanError::BadStep(s) => write!(f, "bad fault step '{s}' (expected an integer)"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A declarative schedule of faults to inject into one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The planned faults, sorted by trigger step.
    pub events: Vec<FaultEvent>,
    /// Seed deriving every per-fault variation (retry counts, corrupted
    /// byte positions) — same seed, same faults, same recoveries.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan: nothing fails.
    pub fn none() -> Self {
        Self::default()
    }

    /// Parses a compact spec like
    /// `"device-loss@120,replication-oom@300,sync-failure@50"`.
    /// Entries are comma-separated `kind@step`; whitespace around entries
    /// is ignored; an empty string yields the empty plan.
    pub fn parse(spec: &str) -> Result<Self, FaultPlanError> {
        Self::parse_seeded(spec, 0)
    }

    /// [`FaultPlan::parse`] with an explicit variation seed.
    pub fn parse_seeded(spec: &str, seed: u64) -> Result<Self, FaultPlanError> {
        let mut events = Vec::new();
        for raw in spec.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind, step) =
                entry.split_once('@').ok_or_else(|| FaultPlanError::BadEntry(entry.to_string()))?;
            let kind: FaultKind = kind.trim().parse()?;
            let at: u64 =
                step.trim().parse().map_err(|_| FaultPlanError::BadStep(step.to_string()))?;
            events.push(FaultEvent { kind, at });
        }
        events.sort_by_key(|e| e.at);
        Ok(Self { events, seed })
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}@{}", e.kind, e.at)?;
        }
        Ok(())
    }
}

/// A fault that actually fired during a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// What failed.
    pub kind: FaultKind,
    /// The step it was planned for.
    pub at: u64,
    /// The step at which the pipeline observed it.
    pub step: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (planned @{}, observed @{})", self.kind, self.at, self.step)
    }
}

/// What the pipeline did about a fault (or about resuming a run).
#[derive(Clone, Debug, PartialEq)]
pub enum RecoveryAction {
    /// Device loss: the data-parallel group shrank and re-sharded.
    ShrankReplicas {
        /// Step at which the group shrank.
        step: u64,
        /// Replica count before the loss.
        from: u32,
        /// Replica count after re-sharding.
        to: u32,
    },
    /// Replication/budget failure: the run fell back to CPU-only cold
    /// execution for the rest of training (FAE → baseline).
    ColdFallback {
        /// Step at which hot execution was abandoned.
        step: u64,
    },
    /// A hot↔cold sync failed and was retried with backoff.
    SyncRetried {
        /// Step of the failing transition.
        step: u64,
        /// Total attempts including the final success.
        attempts: u32,
        /// Seconds spent in backoff waits.
        waited_s: f64,
    },
    /// A transient I/O error was retried with backoff.
    RetriedIo {
        /// Total attempts including the final success.
        attempts: u32,
        /// Seconds spent in backoff waits.
        waited_s: f64,
    },
    /// The artifact file was unusable; static artifacts were rebuilt
    /// from scratch and re-saved.
    RebuiltArtifacts,
    /// Training resumed from a checkpoint taken at `step`.
    ResumedFromCheckpoint {
        /// Steps already completed at the checkpoint.
        step: u64,
    },
    /// A worker node was declared dead; its shard was re-assigned to the
    /// survivors (computed coordinator-side until the node rejoins).
    ReshardedToSurvivors {
        /// Step at which the node was declared dead.
        step: u64,
        /// The lost node's id.
        node: u32,
        /// Live workers after the reshard.
        live: u32,
    },
    /// A worker reconnected and was re-admitted: the coordinator shipped
    /// it the current model state and hot bags.
    NodeRejoined {
        /// Step at which the node rejoined.
        step: u64,
        /// The rejoining node's id.
        node: u32,
        /// Bytes of state shipped in the welcome (dense params + hot rows).
        state_bytes: u64,
    },
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::ShrankReplicas { step, from, to } => {
                write!(f, "step {step}: shrank data-parallel group {from} -> {to} and re-sharded")
            }
            RecoveryAction::ColdFallback { step } => {
                write!(f, "step {step}: hot replication failed, fell back to cold-only execution")
            }
            RecoveryAction::SyncRetried { step, attempts, waited_s } => {
                write!(f, "step {step}: embedding sync retried ({attempts} attempts, {waited_s:.3}s backoff)")
            }
            RecoveryAction::RetriedIo { attempts, waited_s } => {
                write!(f, "transient I/O retried ({attempts} attempts, {waited_s:.3}s backoff)")
            }
            RecoveryAction::RebuiltArtifacts => {
                write!(f, "artifact load failed, rebuilt static artifacts from scratch")
            }
            RecoveryAction::ResumedFromCheckpoint { step } => {
                write!(f, "resumed from checkpoint at step {step}")
            }
            RecoveryAction::ReshardedToSurvivors { step, node, live } => {
                write!(f, "step {step}: node {node} lost, resharded onto {live} live workers")
            }
            RecoveryAction::NodeRejoined { step, node, state_bytes } => {
                write!(f, "step {step}: node {node} rejoined ({state_bytes} state bytes shipped)")
            }
        }
    }
}

/// Consumes a [`FaultPlan`] during a run.
///
/// Stateless apart from which events have fired: every variation (how
/// many retries a transient fault needs, which byte corruption hits) is
/// derived by hashing `(seed, kind, at)`, never from a mutable RNG — so
/// a resumed run that fast-forwards past already-fired events makes the
/// same decisions as the uninterrupted run.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired: Vec<bool>,
    log: Vec<InjectedFault>,
    telemetry: Telemetry,
}

impl FaultInjector {
    /// Builds an injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = vec![false; plan.events.len()];
        Self { plan, fired, log: Vec::new(), telemetry: Telemetry::disabled() }
    }

    /// An injector that never fires.
    pub fn none() -> Self {
        Self::new(FaultPlan::none())
    }

    /// Attaches a telemetry handle: every fired fault is journalled as a
    /// `fault` event and counted under `faults.injected.<kind>`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Fires (at most) the earliest unfired event of `kind` whose trigger
    /// step is `<= step`, recording and returning it.
    pub fn fire(&mut self, kind: FaultKind, step: u64) -> Option<InjectedFault> {
        let idx = self
            .plan
            .events
            .iter()
            .enumerate()
            .find(|(i, e)| !self.fired[*i] && e.kind == kind && e.at <= step)
            .map(|(i, _)| i)?;
        self.fired[idx] = true;
        let fault = InjectedFault { kind, at: self.plan.events[idx].at, step };
        self.log.push(fault);
        if self.telemetry.enabled() {
            self.telemetry.counter_add(&format!("faults.injected.{}", kind.as_str()), 1);
            self.telemetry.emit(&JournalEvent::Fault { step, kind: kind.as_str().to_string() });
        }
        Some(fault)
    }

    /// Deterministic per-fault variation in `[0, modulo)`, a pure
    /// function of the plan seed and the fault's identity (SplitMix64
    /// finalizer over the packed triple).
    pub fn variation(&self, fault: &InjectedFault, modulo: u64) -> u64 {
        assert!(modulo > 0, "variation modulo must be positive");
        let mut z = self
            .plan
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(fault.at.wrapping_add(1)))
            .wrapping_add(fault.kind.tag() as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % modulo
    }

    /// Resume path: restores the fired-fault log from a checkpoint and
    /// marks exactly those events as consumed (matched by kind and
    /// trigger step, one event per log entry), so the remaining plan
    /// unfolds as it would have in the uninterrupted run.
    pub fn restore(&mut self, log: Vec<InjectedFault>) {
        for f in &log {
            if let Some(idx) = self
                .plan
                .events
                .iter()
                .enumerate()
                .find(|(i, e)| !self.fired[*i] && e.kind == f.kind && e.at == f.at)
                .map(|(i, _)| i)
            {
                self.fired[idx] = true;
            }
        }
        self.log = log;
    }

    /// Every fault fired so far, in firing order.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Number of planned events that have not fired yet.
    pub fn pending(&self) -> usize {
        self.fired.iter().filter(|f| !**f).count()
    }
}

/// Bounded exponential backoff parameters.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum attempts including the first (>= 1).
    pub max_attempts: u32,
    /// Wait before the first retry, seconds.
    pub base_delay_s: f64,
    /// Multiplier applied per retry.
    pub multiplier: f64,
    /// Upper bound on any single wait, seconds.
    pub max_delay_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_delay_s: 0.05, multiplier: 2.0, max_delay_s: 1.0 }
    }
}

impl RetryPolicy {
    /// Wait after failed attempt number `attempt` (1-based), seconds.
    pub fn backoff_delay(&self, attempt: u32) -> f64 {
        (self.base_delay_s * self.multiplier.powi(attempt.saturating_sub(1) as i32))
            .min(self.max_delay_s)
    }

    /// Total wait across `failures` failed attempts, seconds.
    pub fn total_backoff(&self, failures: u32) -> f64 {
        (1..=failures).map(|a| self.backoff_delay(a)).sum()
    }
}

/// Outcome of [`retry_with_backoff`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Retried<T> {
    /// The successful result.
    pub value: T,
    /// Total attempts made including the success.
    pub attempts: u32,
    /// Simulated seconds spent in backoff waits (not slept for real —
    /// the caller charges them to the timeline).
    pub waited_s: f64,
}

/// Runs `op(attempt)` (1-based) until it succeeds or `policy.max_attempts`
/// is exhausted, accumulating *simulated* backoff time between attempts.
/// No real sleeping happens; the waited seconds are returned so the
/// caller can charge them to the cost model.
pub fn retry_with_backoff<T, E>(
    policy: &RetryPolicy,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<Retried<T>, (E, u32, f64)> {
    assert!(policy.max_attempts >= 1, "retry policy needs at least one attempt");
    let mut waited_s = 0.0;
    let mut attempt = 1;
    loop {
        match op(attempt) {
            Ok(value) => return Ok(Retried { value, attempts: attempt, waited_s }),
            Err(e) => {
                if attempt >= policy.max_attempts {
                    return Err((e, attempt, waited_s));
                }
                waited_s += policy.backoff_delay(attempt);
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parses_and_round_trips() {
        let spec = "device-loss@120,replication-oom@300,sync-failure@50";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.events.len(), 3);
        // Sorted by step.
        assert_eq!(plan.events[0], FaultEvent { kind: FaultKind::SyncFailure, at: 50 });
        assert_eq!(plan.events[2], FaultEvent { kind: FaultKind::ReplicationOom, at: 300 });
        let redisplayed = plan.to_string();
        assert_eq!(FaultPlan::parse(&redisplayed).unwrap(), plan);
    }

    #[test]
    fn plan_accepts_whitespace_and_empty() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ").unwrap().is_empty());
        let p = FaultPlan::parse(" device-loss @ 7 , transient-io@0 ").unwrap();
        assert_eq!(p.events.len(), 2);
    }

    #[test]
    fn plan_rejects_garbage() {
        assert!(matches!(FaultPlan::parse("gpu-melted@3"), Err(FaultPlanError::UnknownKind(_))));
        assert!(matches!(FaultPlan::parse("device-loss"), Err(FaultPlanError::BadEntry(_))));
        assert!(matches!(FaultPlan::parse("device-loss@soon"), Err(FaultPlanError::BadStep(_))));
    }

    #[test]
    fn injector_fires_once_at_or_after_trigger() {
        let plan = FaultPlan::parse("device-loss@10").unwrap();
        let mut inj = FaultInjector::new(plan);
        assert!(inj.fire(FaultKind::DeviceLoss, 9).is_none());
        let f = inj.fire(FaultKind::DeviceLoss, 12).expect("fires late");
        assert_eq!((f.at, f.step), (10, 12));
        assert!(inj.fire(FaultKind::DeviceLoss, 100).is_none(), "consumed");
        assert_eq!(inj.log().len(), 1);
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn injector_separates_kinds() {
        let plan = FaultPlan::parse("device-loss@5,sync-failure@5").unwrap();
        let mut inj = FaultInjector::new(plan);
        assert!(inj.fire(FaultKind::SyncFailure, 5).is_some());
        assert!(inj.fire(FaultKind::SyncFailure, 5).is_none());
        assert!(inj.fire(FaultKind::DeviceLoss, 5).is_some());
    }

    #[test]
    fn restore_consumes_exactly_the_logged_events() {
        let plan = FaultPlan::parse("device-loss@10,device-loss@90,sync-failure@5").unwrap();
        let mut inj = FaultInjector::new(plan);
        // The checkpointed run had seen only device-loss@10; the
        // sync-failure@5 never hit a transition before the checkpoint.
        inj.restore(vec![InjectedFault { kind: FaultKind::DeviceLoss, at: 10, step: 12 }]);
        assert_eq!(inj.log().len(), 1);
        assert!(inj.fire(FaultKind::DeviceLoss, 60).is_none(), "@10 consumed by restore");
        assert!(inj.fire(FaultKind::DeviceLoss, 95).is_some(), "@90 still live");
        assert!(
            inj.fire(FaultKind::SyncFailure, 60).is_some(),
            "unfired pre-checkpoint events must survive the restore"
        );
    }

    #[test]
    fn variation_is_deterministic_and_seed_dependent() {
        let f = InjectedFault { kind: FaultKind::SyncFailure, at: 50, step: 51 };
        let a = FaultInjector::new(FaultPlan { events: vec![], seed: 1 });
        let b = FaultInjector::new(FaultPlan { events: vec![], seed: 1 });
        let c = FaultInjector::new(FaultPlan { events: vec![], seed: 2 });
        assert_eq!(a.variation(&f, 1000), b.variation(&f, 1000));
        // Different seeds disagree for at least one of a few faults.
        let differs = (0..8).any(|at| {
            let g = InjectedFault { kind: FaultKind::SyncFailure, at, step: at };
            a.variation(&g, 1000) != c.variation(&g, 1000)
        });
        assert!(differs);
        assert!(a.variation(&f, 3) < 3);
    }

    #[test]
    fn backoff_is_bounded_and_monotone() {
        let p = RetryPolicy::default();
        assert!((p.backoff_delay(1) - 0.05).abs() < 1e-12);
        assert!((p.backoff_delay(2) - 0.10).abs() < 1e-12);
        assert!(p.backoff_delay(30) <= p.max_delay_s);
        assert!((p.total_backoff(2) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn retry_succeeds_after_failures_and_reports_wait() {
        let p = RetryPolicy::default();
        let r =
            retry_with_backoff(&p, |attempt| if attempt <= 2 { Err("flaky") } else { Ok(attempt) })
                .expect("third attempt succeeds");
        assert_eq!(r.attempts, 3);
        assert_eq!(r.value, 3);
        assert!((r.waited_s - p.total_backoff(2)).abs() < 1e-12);
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let p = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let mut calls = 0u32;
        let r: Result<Retried<()>, _> = retry_with_backoff(&p, |_| {
            calls += 1;
            Err("down")
        });
        let (e, attempts, waited) = r.expect_err("must give up");
        assert_eq!((e, attempts, calls), ("down", 3, 3));
        assert!((waited - p.total_backoff(2)).abs() < 1e-12);
    }
}
