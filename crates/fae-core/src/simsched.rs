//! Schedule-level simulation at paper scale.
//!
//! The numeric trainer ([`crate::trainer`]) runs real SGD, which caps it
//! at laptop-scale datasets. The paper's latency tables, however, are
//! defined at full scale (45–80 M inputs, 10 epochs, 61 GB tables). This
//! module simulates *only the schedule* — how many hot/cold steps and
//! hot↔cold transitions a training run performs — and prices each against
//! the `fae-sysmodel` cost model. It reuses the same block structure the
//! real trainer executes, so the two agree wherever they overlap.

use fae_sysmodel::{step_cost, sync_cost, ExecMode, ModelProfile, SystemConfig, Timeline};

use crate::scheduler::Rate;

/// Parameters of one simulated training run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Total training inputs per epoch.
    pub total_inputs: usize,
    /// Global mini-batch size.
    pub batch: usize,
    /// Fraction of inputs the input processor classified hot.
    pub hot_fraction: f64,
    /// Shuffle-scheduler rate (fixed for simulation; the paper's runs
    /// converge to a steady rate).
    pub rate: Rate,
    /// Epochs.
    pub epochs: usize,
    /// GPUs (weak scaling: `batch` is already the global batch).
    pub num_gpus: usize,
}

/// Hot/cold step and transition counts implied by a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleShape {
    /// Pure-GPU hot steps per epoch.
    pub hot_steps: usize,
    /// Hybrid cold steps per epoch.
    pub cold_steps: usize,
    /// Hot↔cold transitions per epoch (2 per schedule round with both
    /// classes present).
    pub transitions: usize,
}

/// Derives the per-epoch schedule shape for a FAE run.
pub fn schedule_shape(cfg: &SimConfig) -> ScheduleShape {
    let hot_inputs = (cfg.total_inputs as f64 * cfg.hot_fraction).round() as usize;
    let cold_inputs = cfg.total_inputs - hot_inputs;
    let hot_steps = hot_inputs.div_ceil(cfg.batch);
    let cold_steps = cold_inputs.div_ceil(cfg.batch);
    // Alternating rate-sized blocks: the number of rounds is set by the
    // class that takes more rounds to drain.
    let rounds = if hot_steps == 0 || cold_steps == 0 {
        if hot_steps == 0 && cold_steps == 0 {
            0
        } else {
            1
        }
    } else {
        let hot_rounds = hot_steps.div_ceil(cfg.rate.block_len(hot_steps));
        let cold_rounds = cold_steps.div_ceil(cfg.rate.block_len(cold_steps));
        hot_rounds.max(cold_rounds)
    };
    let transitions = if hot_steps == 0 { 0 } else { 2 * rounds };
    ScheduleShape { hot_steps, cold_steps, transitions }
}

/// Simulated timeline of a FAE training run.
pub fn simulate_fae(profile: &ModelProfile, cfg: &SimConfig) -> Timeline {
    let sys = SystemConfig::paper_server(cfg.num_gpus);
    let shape = schedule_shape(cfg);
    let hot = step_cost(profile, &sys, ExecMode::FaeHotGpu, cfg.batch);
    let cold = step_cost(profile, &sys, ExecMode::BaselineHybrid, cfg.batch);
    let sync = sync_cost(&sys, profile.hot_emb_bytes);
    let mut t = Timeline::new();
    // Initial replication.
    t.merge(&sync);
    t.merge_scaled(&hot, (shape.hot_steps * cfg.epochs) as f64);
    t.merge_scaled(&cold, (shape.cold_steps * cfg.epochs) as f64);
    t.merge_scaled(&sync, (shape.transitions * cfg.epochs) as f64);
    t
}

/// Simulated timeline of the baseline run on the same workload.
pub fn simulate_baseline(profile: &ModelProfile, cfg: &SimConfig) -> Timeline {
    let sys = SystemConfig::paper_server(cfg.num_gpus);
    let steps = cfg.total_inputs.div_ceil(cfg.batch) * cfg.epochs;
    let cold = step_cost(profile, &sys, ExecMode::BaselineHybrid, cfg.batch);
    let mut t = Timeline::new();
    t.merge_scaled(&cold, steps as f64);
    t
}

/// Simulated timeline of the UVM-cache (NvOPT-style) comparator.
pub fn simulate_uvm(profile: &ModelProfile, cfg: &SimConfig, hit_rate: f64) -> Timeline {
    let sys = SystemConfig::paper_server(cfg.num_gpus);
    let steps = cfg.total_inputs.div_ceil(cfg.batch) * cfg.epochs;
    let step = step_cost(profile, &sys, ExecMode::UvmCache { hit_rate }, cfg.batch);
    let mut t = Timeline::new();
    t.merge_scaled(&step, steps as f64);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::WorkloadSpec;
    use fae_models::bridge::profile_for;

    fn kaggle_cfg(gpus: usize, per_gpu_batch: usize) -> (ModelProfile, SimConfig) {
        let spec = WorkloadSpec::rmc2_kaggle_paper();
        let profile = profile_for(&spec, 256e6);
        let cfg = SimConfig {
            total_inputs: spec.num_inputs,
            batch: per_gpu_batch * gpus,
            hot_fraction: 0.8,
            rate: Rate::new(50),
            epochs: 1,
            num_gpus: gpus,
        };
        (profile, cfg)
    }

    #[test]
    fn schedule_shape_counts_steps_and_transitions() {
        let cfg = SimConfig {
            total_inputs: 1_000,
            batch: 100,
            hot_fraction: 0.8,
            rate: Rate::new(50),
            epochs: 1,
            num_gpus: 1,
        };
        let s = schedule_shape(&cfg);
        assert_eq!(s.hot_steps, 8);
        assert_eq!(s.cold_steps, 2);
        // R(50): both classes drain in 2 rounds -> 4 transitions.
        assert_eq!(s.transitions, 4);
    }

    #[test]
    fn all_hot_schedule_has_single_round() {
        let cfg = SimConfig {
            total_inputs: 1_000,
            batch: 100,
            hot_fraction: 1.0,
            rate: Rate::new(50),
            epochs: 1,
            num_gpus: 1,
        };
        let s = schedule_shape(&cfg);
        assert_eq!(s.cold_steps, 0);
        assert_eq!(s.transitions, 2);
    }

    #[test]
    fn lower_rate_means_more_transitions() {
        let mk = |rate| SimConfig {
            total_inputs: 100_000,
            batch: 100,
            hot_fraction: 0.8,
            rate: Rate::new(rate),
            epochs: 1,
            num_gpus: 1,
        };
        let r1 = schedule_shape(&mk(1)).transitions;
        let r50 = schedule_shape(&mk(50)).transitions;
        let r100 = schedule_shape(&mk(100)).transitions;
        assert!(r1 > r50 && r50 > r100);
        assert_eq!(r100, 2);
        assert_eq!(r1, 200);
    }

    #[test]
    fn fig13_speedup_band_at_four_gpus() {
        // The paper reports ~2.3x average at 4 GPUs; the model should land
        // in a credible band around that.
        let (profile, cfg) = kaggle_cfg(4, 1024);
        let base = simulate_baseline(&profile, &cfg).total();
        let fae = simulate_fae(&profile, &cfg).total();
        let speedup = base / fae;
        assert!(
            (1.5..3.5).contains(&speedup),
            "4-GPU Kaggle speedup {speedup:.2} outside the paper band"
        );
    }

    #[test]
    fn fig15_speedup_grows_with_batch_size() {
        let mut last = 0.0;
        for batch in [1024usize, 4096, 16384, 32768] {
            let (profile, mut cfg) = kaggle_cfg(1, batch);
            cfg.batch = batch;
            let s =
                simulate_baseline(&profile, &cfg).total() / simulate_fae(&profile, &cfg).total();
            assert!(s > last, "speedup fell from {last:.2} to {s:.2} at batch {batch}");
            last = s;
        }
        assert!(last > 2.5, "large-batch speedup only {last:.2} (paper: up to 4.7x)");
    }

    #[test]
    fn uvm_comparator_loses_to_fae() {
        // §V: FAE is ~1.48x faster than NvOPT on Terabyte at batch 32k.
        let spec = WorkloadSpec::rmc3_terabyte_paper();
        let profile = profile_for(&spec, 256e6);
        let cfg = SimConfig {
            total_inputs: spec.num_inputs,
            batch: 32 * 1024,
            hot_fraction: 0.85,
            rate: Rate::new(50),
            epochs: 1,
            num_gpus: 1,
        };
        let fae = simulate_fae(&profile, &cfg).total();
        let uvm = simulate_uvm(&profile, &cfg, 0.85).total();
        let ratio = uvm / fae;
        assert!((1.1..2.5).contains(&ratio), "FAE vs UVM ratio {ratio:.2}");
    }

    #[test]
    fn epochs_scale_everything_linearly() {
        let (profile, mut cfg) = kaggle_cfg(2, 1024);
        let t1 = simulate_fae(&profile, &cfg).total();
        cfg.epochs = 10;
        let t10 = simulate_fae(&profile, &cfg).total();
        // Linear up to the one-off initial sync.
        assert!((t10 / t1 - 10.0).abs() < 0.5, "epoch scaling {t10}/{t1}");
    }
}
