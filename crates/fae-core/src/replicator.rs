//! The Embedding Replicator (§III, component 3): the hot-embedding bags as
//! an [`EmbeddingSource`], plus the CPU↔GPU synchronisation performed at
//! hot/cold schedule transitions.
//!
//! Numerically, the N GPU replicas stay bit-identical under the fused
//! all-reduce (proved by `fae_embed::ReplicatedHotEmbedding`'s tests), so
//! the trainer computes against one logical copy; the *cost* of keeping N
//! replicas in sync is charged by `fae-sysmodel`. Lookups translate global
//! row ids to hot-local ids through the partitions; touching a cold row
//! through this source is a bug in the input processor and panics.
//!
//! Since the parallel execution engine landed, the one logical copy is a
//! [`ShardedEmbeddingTable`] per table: hot-bag lookups from concurrent
//! worker threads take per-shard read locks instead of serialising, and
//! the merged sparse gradient is applied shard-parallel
//! ([`HotEmbeddings::apply_shared`]) — disjoint row ranges, so the result
//! is bit-identical to a serial application.

use fae_nn::Tensor;

use fae_embed::{EmbeddingTable, HotColdPartition, ShardedEmbeddingTable, SparseGrad};
use fae_models::{EmbeddingSource, MasterEmbeddings};
use fae_telemetry::Telemetry;

/// Row-range shards per hot table — enough to keep a handful of worker
/// threads from colliding, few enough that lock overhead stays invisible
/// next to the lookup work.
const HOT_SHARDS: usize = 8;

/// Hot-embedding bags for every table, with global→local id translation.
pub struct HotEmbeddings {
    /// Compact hot tables (hot-local row ids), sharded for concurrency.
    tables: Vec<ShardedEmbeddingTable>,
    /// Per table: hot-local id -> global row id, sorted ascending.
    global_ids: Vec<Vec<u32>>,
    partitions: Vec<HotColdPartition>,
    /// Per table: whether each hot-local row currently holds fresh bytes
    /// on the devices. Full replication (the default, and the only mode
    /// when the lookahead oracle is off) keeps every row resident; the
    /// oracle's partial refreshes shrink this to the planned access set.
    resident: Vec<Vec<bool>>,
    dim: usize,
    telemetry: Telemetry,
}

impl HotEmbeddings {
    /// Extracts the hot rows of every master table per the partitions.
    /// Rows are read through the master's row-level accessors, so a
    /// quantized (tiered) master works too — its hot rows are stored
    /// exact f32, so the extracted bags carry no quantization error.
    pub fn build(master: &MasterEmbeddings, partitions: Vec<HotColdPartition>) -> Self {
        assert_eq!(partitions.len(), master.num_tables(), "one partition per table");
        let dim = master.dim();
        let mut tables = Vec::with_capacity(partitions.len());
        let mut global_ids = Vec::with_capacity(partitions.len());
        for (t, p) in partitions.iter().enumerate() {
            let ids = p.hot_ids().to_vec();
            let mut weights = Tensor::zeros(ids.len().max(1), dim);
            for (local, &g) in ids.iter().enumerate() {
                master.copy_row_into(t, g, weights.row_mut(local));
            }
            let bag = EmbeddingTable::from_weights(weights);
            tables.push(ShardedEmbeddingTable::from_table(&bag, HOT_SHARDS));
            global_ids.push(ids);
        }
        let resident = global_ids.iter().map(|ids| vec![true; ids.len()]).collect();
        Self { tables, global_ids, partitions, resident, dim, telemetry: Telemetry::disabled() }
    }

    /// Attaches a telemetry handle: refreshes and write-backs are counted
    /// (`replicator.refreshes` / `replicator.write_backs`) along with the
    /// bytes they move (`replicator.moved_bytes`).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        telemetry.gauge_set("replicator.hot_bytes", self.hot_bytes() as f64);
        self.telemetry = telemetry;
    }

    /// Total bytes of the hot bags (per GPU replica).
    pub fn hot_bytes(&self) -> usize {
        self.global_ids.iter().map(|ids| ids.len() * self.dim * std::mem::size_of::<f32>()).sum()
    }

    /// Bytes that cross PCIe per CPU↔GPU synchronisation (per replica):
    /// the full hot bags, since a transition refresh/write-back moves
    /// every hot row.
    pub fn sync_bytes(&self) -> usize {
        self.hot_bytes()
    }

    /// The partitions backing this source.
    pub fn partitions(&self) -> &[HotColdPartition] {
        &self.partitions
    }

    /// Hot→cold transition: pushes trained hot rows back into the master
    /// tables so cold batches (and evaluation) see them.
    pub fn write_back(&self, master: &mut MasterEmbeddings) {
        for (t, (sharded, ids)) in self.tables.iter().zip(&self.global_ids).enumerate() {
            let snapshot = sharded.to_table();
            for (local, &g) in ids.iter().enumerate() {
                master.set_row(t, g, snapshot.row(local as u32));
            }
        }
        self.telemetry.counter_add("replicator.write_backs", 1);
        self.telemetry.counter_add("replicator.moved_bytes", self.sync_bytes() as u64);
    }

    /// Cold→hot transition: pulls rows updated by cold batches back into
    /// the bags. Restores full residency.
    pub fn refresh_from(&mut self, master: &MasterEmbeddings) {
        let mut buf = vec![0.0f32; self.dim];
        for (t, (sharded, ids)) in self.tables.iter().zip(&self.global_ids).enumerate() {
            for (local, &g) in ids.iter().enumerate() {
                master.copy_row_into(t, g, &mut buf);
                sharded.set_row(local as u32, &buf);
            }
        }
        for mask in &mut self.resident {
            mask.fill(true);
        }
        self.telemetry.counter_add("replicator.refreshes", 1);
        self.telemetry.counter_add("replicator.moved_bytes", self.sync_bytes() as u64);
    }

    /// Rows currently resident on the devices, across all tables.
    pub fn resident_rows(&self) -> usize {
        self.resident.iter().map(|m| m.iter().filter(|&&r| r).count()).sum()
    }

    /// Oracle-driven cold→hot transition: refreshes exactly the rows in
    /// `plan` (per-table global ids, the union of the next window's
    /// access sets) and marks everything else non-resident. Returns the
    /// bytes moved and the number of previously-resident rows evicted
    /// (eviction moves no bytes: the master already holds their values —
    /// hot rows are only written on the devices *after* a refresh, and
    /// written rows are written back before the next refresh).
    pub fn refresh_rows(&mut self, master: &MasterEmbeddings, plan: &[Vec<u32>]) -> (u64, u64) {
        assert_eq!(plan.len(), self.tables.len(), "one plan per table");
        let mut buf = vec![0.0f32; self.dim];
        let mut moved_rows = 0u64;
        let mut evicted = 0u64;
        for (t, rows) in plan.iter().enumerate() {
            let sharded = &self.tables[t];
            let p = &self.partitions[t];
            let mask = &mut self.resident[t];
            let mut next = vec![false; mask.len()];
            for &g in rows {
                // Cold ids in a plan would be input-processor corruption;
                // they cannot be made resident, so skip rather than panic.
                let Some(local) = p.hot_local(g) else { continue };
                master.copy_row_into(t, g, &mut buf);
                sharded.set_row(local, &buf);
                next[local as usize] = true;
                moved_rows += 1;
            }
            evicted += mask.iter().zip(&next).filter(|&(&was, &is)| was && !is).count() as u64;
            *mask = next;
        }
        let moved_bytes = moved_rows * (self.dim * std::mem::size_of::<f32>()) as u64;
        self.telemetry.counter_add("replicator.refreshes", 1);
        self.telemetry.counter_add("replicator.moved_bytes", moved_bytes);
        (moved_bytes, evicted)
    }

    /// Fetches every row of `sets` (per-table global ids) that is not
    /// already resident — the oracle's sliding-window prefetch, and the
    /// demand-miss path should a non-resident row ever be accessed.
    /// Returns the rows and bytes moved.
    pub fn fetch_missing(&mut self, master: &MasterEmbeddings, sets: &[Vec<u32>]) -> (u64, u64) {
        assert_eq!(sets.len(), self.tables.len(), "one set per table");
        let mut buf = vec![0.0f32; self.dim];
        let mut rows_moved = 0u64;
        for (t, rows) in sets.iter().enumerate() {
            let sharded = &self.tables[t];
            let p = &self.partitions[t];
            let mask = &mut self.resident[t];
            for &g in rows {
                let Some(local) = p.hot_local(g) else { continue };
                if mask[local as usize] {
                    continue;
                }
                master.copy_row_into(t, g, &mut buf);
                sharded.set_row(local, &buf);
                mask[local as usize] = true;
                rows_moved += 1;
            }
        }
        let bytes = rows_moved * (self.dim * std::mem::size_of::<f32>()) as u64;
        if rows_moved > 0 {
            self.telemetry.counter_add("replicator.moved_bytes", bytes);
        }
        (rows_moved, bytes)
    }

    /// Hot→cold transition under the oracle: writes back only the
    /// resident rows (non-resident rows were never readable on the
    /// devices, so their device bytes are stale by construction and the
    /// master copy is already authoritative). Returns bytes moved.
    pub fn write_back_resident(&self, master: &mut MasterEmbeddings) -> u64 {
        let mut rows_moved = 0u64;
        for (t, ((sharded, ids), mask)) in
            self.tables.iter().zip(&self.global_ids).zip(&self.resident).enumerate()
        {
            let snapshot = sharded.to_table();
            for (local, &g) in ids.iter().enumerate() {
                if !mask[local] {
                    continue;
                }
                master.set_row(t, g, snapshot.row(local as u32));
                rows_moved += 1;
            }
        }
        let bytes = rows_moved * (self.dim * std::mem::size_of::<f32>()) as u64;
        self.telemetry.counter_add("replicator.write_backs", 1);
        self.telemetry.counter_add("replicator.moved_bytes", bytes);
        bytes
    }

    fn translate(&self, t: usize, indices: &[u32]) -> Vec<u32> {
        let p = &self.partitions[t];
        indices
            .iter()
            .map(|&g| {
                p.hot_local(g).unwrap_or_else(|| {
                    // fae-lint: allow(no-panic, reason = "classifier routing corruption: continuing would train on garbage rows, so fail fast")
                    panic!("cold row {g} of table {t} looked up through the hot source")
                })
            })
            .collect()
    }

    /// Applies per-table sparse gradients through `&self`: remaps global
    /// row ids to hot-local, then updates each table shard-parallel. This
    /// is the path the execution engine uses after reducing worker
    /// gradients — shards are disjoint row ranges, so the parallel
    /// application is bit-identical to [`EmbeddingSource`]'s serial one.
    pub fn apply_shared(&self, grads: &[SparseGrad], lr: f32) {
        assert_eq!(grads.len(), self.tables.len(), "one gradient per table");
        for ((sharded, p), g) in self.tables.iter().zip(&self.partitions).zip(grads) {
            // remap_ref borrows: no clone of the gradient arena per step.
            let local = g.remap_ref(|global| {
                p.hot_local(global)
                    // fae-lint: allow(no-panic, reason = "classifier routing corruption: continuing would train on garbage rows, so fail fast")
                    .unwrap_or_else(|| panic!("cold row {global} updated through the hot source"))
            });
            sharded.sgd_step_sparse_parallel(&local, lr);
        }
    }
}

impl EmbeddingSource for HotEmbeddings {
    fn lookup(&self, t: usize, indices: &[u32], offsets: &[usize]) -> Tensor {
        let local = self.translate(t, indices);
        self.tables[t].lookup_bag(&local, offsets)
    }

    fn apply_sparse_grads(&mut self, grads: &[SparseGrad], lr: f32) {
        self.apply_shared(grads, lr);
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_tables(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::WorkloadSpec;
    use fae_embed::AccessCounter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (MasterEmbeddings, HotEmbeddings) {
        let spec = WorkloadSpec::tiny_test();
        let mut rng = StdRng::seed_from_u64(3);
        let master = MasterEmbeddings::from_spec(&spec, &mut rng);
        // Hot rows: multiples of 3 in every table.
        let parts: Vec<HotColdPartition> = spec
            .tables
            .iter()
            .map(|t| {
                let mut c = AccessCounter::new(t.rows);
                for r in (0..t.rows).step_by(3) {
                    c.record(r as u32);
                }
                HotColdPartition::from_counts(&c, 1)
            })
            .collect();
        let hot = HotEmbeddings::build(&master, parts);
        (master, hot)
    }

    #[test]
    fn hot_lookup_matches_master() {
        let (master, hot) = setup();
        let out_hot = hot.lookup(0, &[0, 3, 9], &[0, 1, 2, 3]);
        let out_master = master.lookup(0, &[0, 3, 9], &[0, 1, 2, 3]);
        assert_eq!(out_hot.as_slice(), out_master.as_slice());
    }

    #[test]
    #[should_panic(expected = "cold row")]
    fn cold_lookup_panics() {
        let (_, hot) = setup();
        let _ = hot.lookup(0, &[1], &[0, 1]);
    }

    #[test]
    fn grads_apply_to_hot_copy_then_sync_back() {
        let (mut master, mut hot) = setup();
        let before = master.lookup(1, &[6], &[0, 1]);
        let mut grads: Vec<SparseGrad> =
            (0..hot.num_tables()).map(|_| SparseGrad::new(hot.dim())).collect();
        grads[1].accumulate(6, &vec![2.0; hot.dim()]);
        hot.apply_sparse_grads(&grads, 0.5);
        // Master unchanged until write-back.
        assert_eq!(master.lookup(1, &[6], &[0, 1]).as_slice(), before.as_slice());
        hot.write_back(&mut master);
        let after = master.lookup(1, &[6], &[0, 1]);
        for (b, a) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((b - 1.0 - a).abs() < 1e-6);
        }
    }

    #[test]
    fn apply_shared_matches_apply_sparse_grads() {
        let (_, hot_a) = setup();
        let (_, mut hot_b) = setup();
        let mut grads: Vec<SparseGrad> =
            (0..hot_a.num_tables()).map(|_| SparseGrad::new(hot_a.dim())).collect();
        for row in [0u32, 3, 6, 9] {
            grads[0].accumulate(row, &vec![1.5; hot_a.dim()]);
        }
        hot_a.apply_shared(&grads, 0.5);
        hot_b.apply_sparse_grads(&grads, 0.5);
        for row in [0u32, 3, 6, 9] {
            assert_eq!(
                hot_a.lookup(0, &[row], &[0, 1]).as_slice(),
                hot_b.lookup(0, &[row], &[0, 1]).as_slice()
            );
        }
    }

    #[test]
    fn refresh_pulls_cold_phase_updates() {
        let (mut master, mut hot) = setup();
        // Cold phase trains hot row 3 on the CPU master copy.
        let mut grads: Vec<SparseGrad> =
            (0..master.num_tables()).map(|_| SparseGrad::new(master.dim())).collect();
        grads[0].accumulate(3, &vec![4.0; master.dim()]);
        master.apply_sparse_grads(&grads, 0.25);
        hot.refresh_from(&master);
        let hot_val = hot.lookup(0, &[3], &[0, 1]);
        let master_val = master.lookup(0, &[3], &[0, 1]);
        assert_eq!(hot_val.as_slice(), master_val.as_slice());
    }

    #[test]
    fn hot_bytes_counts_extracted_rows() {
        let (_, hot) = setup();
        let expect: usize = hot.partitions().iter().map(|p| p.hot_count() * hot.dim() * 4).sum();
        assert_eq!(hot.hot_bytes(), expect);
        assert!(hot.hot_bytes() > 0);
        // A transition moves the whole bag, so the two byte counts agree.
        assert_eq!(hot.sync_bytes(), hot.hot_bytes());
    }

    #[test]
    fn partial_refresh_tracks_residency_and_evictions() {
        let (master, mut hot) = setup();
        let all = hot.resident_rows();
        assert_eq!(all, hot.partitions().iter().map(|p| p.hot_count()).sum::<usize>());
        // Plan only rows {0, 3} of table 0 (and nothing elsewhere).
        let mut plan: Vec<Vec<u32>> = vec![Vec::new(); hot.num_tables()];
        plan[0] = vec![0, 3];
        let (moved, evicted) = hot.refresh_rows(&master, &plan);
        assert_eq!(moved, 2 * (hot.dim() * 4) as u64);
        assert_eq!(evicted as usize, all - 2);
        assert_eq!(hot.resident_rows(), 2);
        // Sliding prefetch: row 6 of table 0 was evicted; fetch it back.
        let mut set: Vec<Vec<u32>> = vec![Vec::new(); hot.num_tables()];
        set[0] = vec![0, 6];
        let (rows, bytes) = hot.fetch_missing(&master, &set);
        assert_eq!((rows, bytes), (1, (hot.dim() * 4) as u64));
        assert_eq!(hot.resident_rows(), 3);
        // Already-resident rows fetch nothing.
        assert_eq!(hot.fetch_missing(&master, &set), (0, 0));
        // A full refresh restores total residency.
        hot.refresh_from(&master);
        assert_eq!(hot.resident_rows(), all);
    }

    #[test]
    fn resident_write_back_only_moves_resident_rows() {
        let (mut master, mut hot) = setup();
        let mut plan: Vec<Vec<u32>> = vec![Vec::new(); hot.num_tables()];
        plan[0] = vec![3];
        hot.refresh_rows(&master, &plan);
        // Train resident row 3 on the devices.
        let mut grads: Vec<SparseGrad> =
            (0..hot.num_tables()).map(|_| SparseGrad::new(hot.dim())).collect();
        grads[0].accumulate(3, &vec![2.0; hot.dim()]);
        hot.apply_shared(&grads, 0.5);
        let before_row6 = master.lookup(0, &[6], &[0, 1]);
        let before_row3 = master.lookup(0, &[3], &[0, 1]);
        let bytes = hot.write_back_resident(&mut master);
        assert_eq!(bytes, (hot.dim() * 4) as u64);
        // The trained resident row landed; the evicted row is untouched.
        let after_row3 = master.lookup(0, &[3], &[0, 1]);
        for (b, a) in before_row3.as_slice().iter().zip(after_row3.as_slice()) {
            assert!((b - 1.0 - a).abs() < 1e-6);
        }
        assert_eq!(master.lookup(0, &[6], &[0, 1]).as_slice(), before_row6.as_slice());
    }

    #[test]
    fn hot_source_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<HotEmbeddings>();
    }
}
