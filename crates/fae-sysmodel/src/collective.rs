//! Collective-communication cost models.

use crate::link::LinkSpec;

/// Ring all-reduce of `bytes` across `n` devices over `link`:
/// `2·(n-1)/n · bytes / bw + (n-1) · latency` (the standard
/// bandwidth-optimal ring model NCCL implements). Zero for `n <= 1`.
pub fn ring_allreduce_time(link: &LinkSpec, n: usize, bytes: f64) -> f64 {
    if n <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let n_f = n as f64;
    2.0 * (n_f - 1.0) / n_f * bytes / link.bandwidth + (n_f - 1.0) * link.latency
}

/// One-to-all broadcast of `bytes` over `link` (pipelined ring): ≈ one
/// full traversal plus per-hop latencies.
pub fn broadcast_time(link: &LinkSpec, n: usize, bytes: f64) -> f64 {
    if n <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    bytes / link.bandwidth + (n as f64 - 1.0) * link.latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_is_free() {
        let l = LinkSpec::nvlink2();
        assert_eq!(ring_allreduce_time(&l, 1, 1e9), 0.0);
        assert_eq!(broadcast_time(&l, 1, 1e9), 0.0);
    }

    #[test]
    fn allreduce_grows_with_devices_then_saturates() {
        let l = LinkSpec::nvlink2();
        let bytes = 256e6;
        let t2 = ring_allreduce_time(&l, 2, bytes);
        let t4 = ring_allreduce_time(&l, 4, bytes);
        let t8 = ring_allreduce_time(&l, 8, bytes);
        assert!(t2 < t4 && t4 < t8);
        // Bandwidth term saturates at 2×bytes/bw; latency dominates growth.
        let bw_bound = 2.0 * bytes / l.bandwidth + 7.0 * l.latency;
        assert!(t8 <= bw_bound + 1e-12);
    }

    #[test]
    fn matches_hand_computation() {
        let l = LinkSpec { name: "t".into(), bandwidth: 100.0, latency: 1.0 };
        // n=4: 2*(3/4)*200/100 + 3*1 = 3 + 3 = 6.
        assert!((ring_allreduce_time(&l, 4, 200.0) - 6.0).abs() < 1e-12);
    }
}
