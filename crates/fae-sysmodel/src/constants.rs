//! Calibration constants for the performance model.
//!
//! These factors capture second-order effects that raw datasheet numbers
//! miss. They were tuned once so that the simulated per-step latency of
//! the baseline hybrid mode lands in the ballpark of the paper's measured
//! per-step times (Table IV implies ≈33 ms/step for Criteo Kaggle at batch
//! 1024 on 1 GPU) and the FAE/baseline *ratios* match Figs 13–15. They are
//! deliberately centralised so sensitivity experiments can sweep them.

/// Seconds per *randomly accessed row* on the CPU: pointer chase, TLB and
/// cache misses dominate, independent of row width for the 64–256 B rows
/// embeddings use. Calibrated against Table IV: the paper's Kaggle
/// (dim 16) and Terabyte (dim 64) baselines are nearly equally slow per
/// step, which a bytes/bandwidth model cannot produce but a per-row model
/// does.
pub const CPU_ROW_ACCESS_S: f64 = 0.2e-6;

/// Seconds per randomly accessed row on the GPU — thousands of in-flight
/// threads hide nearly all of the latency.
pub const GPU_ROW_ACCESS_S: f64 = 2e-9;

/// Per-operator dispatch overhead on the CPU (framework op launch,
/// thread-pool wake, in seconds). PyTorch CPU ops cost O(10–100 µs) each.
pub const CPU_OP_OVERHEAD_S: f64 = 100e-6;

/// Per-kernel launch overhead on the GPU (seconds).
pub const GPU_OP_OVERHEAD_S: f64 = 20e-6;

/// Fixed per-mini-batch overhead of the training loop itself (Python
/// iteration, data loader hand-off, device synchronisation). Paid by
/// every mode. Calibrated so a pure-GPU hot step costs what Table IV's
/// FAE rows imply (~12–14 ms at batch 1024).
pub const PER_STEP_FIXED_S: f64 = 11e-3;

/// Per-step multi-GPU coordination penalty, seconds, charged as
/// `MULTI_GPU_SYNC_S · (n-1)^1.6` in every mode: NCCL launch/rendezvous,
/// stream synchronisation and NUMA effects that make the paper's baseline
/// *worse* at 4 GPUs than at 2 (Table IV, Kaggle).
pub const MULTI_GPU_SYNC_S: f64 = 2e-3;

/// The multi-GPU penalty exponent.
pub const MULTI_GPU_SYNC_EXP: f64 = 1.6;

/// Aggregate host-side I/O bandwidth (bytes/s) shared by all GPUs' PCIe
/// links; with 4 GPUs pulling simultaneously the host DRAM/root complex
/// saturates below 4 × 12 GB/s.
pub const HOST_IO_BW: f64 = 25e9;

/// Bytes read+written per updated parameter by a sparse SGD step
/// (read gradient, read weight, write weight).
pub const SGD_BYTES_PER_PARAM: f64 = 12.0;

/// Fixed cost of tearing down and re-establishing the collective
/// communicator after a device drops out of the data-parallel group:
/// NCCL communicator destruction + re-init, process-group rendezvous and
/// CUDA context cleanup. Dominated by rendezvous timeouts in practice.
pub const COMM_REINIT_S: f64 = 0.75;

/// Number of reported epochs in the paper's absolute-time tables.
pub const PAPER_EPOCHS: usize = 10;

/// Effective fraction of PCIe bandwidth achieved by the baseline's
/// per-table activation/gradient transfers — many small tensors, each
/// with its own DMA setup, never saturate the link.
pub const PCIE_SMALL_TENSOR_EFF: f64 = 0.5;
