//! Interconnect links.

use serde::{Deserialize, Serialize};

/// A point-to-point interconnect.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable name.
    pub name: String,
    /// Effective bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-transfer latency, seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// PCIe Gen3 x16 — every GPU's path to host memory (Table II).
    /// ~12 GB/s effective of the 15.75 GB/s raw.
    pub fn pcie3_x16() -> Self {
        Self { name: "PCIe 3.0 x16".into(), bandwidth: 12e9, latency: 15e-6 }
    }

    /// NVLink 2.0 — GPU↔GPU fabric used for collectives (§IV-A2).
    pub fn nvlink2() -> Self {
        Self { name: "NVLink 2.0".into(), bandwidth: 120e9, latency: 8e-6 }
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency + bytes / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(LinkSpec::pcie3_x16().transfer_time(0.0), 0.0);
    }

    #[test]
    fn latency_floors_small_transfers() {
        let l = LinkSpec::pcie3_x16();
        assert!(l.transfer_time(1.0) >= l.latency);
    }

    #[test]
    fn nvlink_beats_pcie() {
        let bytes = 100e6;
        assert!(
            LinkSpec::nvlink2().transfer_time(bytes) < LinkSpec::pcie3_x16().transfer_time(bytes)
        );
    }

    #[test]
    fn transfer_time_linear_in_bytes() {
        let l = LinkSpec::nvlink2();
        let t1 = l.transfer_time(1e9) - l.latency;
        let t2 = l.transfer_time(2e9) - l.latency;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
