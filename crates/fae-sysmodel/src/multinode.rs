//! Multi-server extension of the cost model.
//!
//! The paper evaluates a single server ("the open-sourced DLRM and TBSM
//! models do not support multi-server implementations. However, even in a
//! multi-server scenario, we expect our insights to hold true", §IV-A3).
//! This module tests that expectation in the model: N nodes of the paper
//! server, joined by a datacenter network, running hierarchical
//! all-reduce (intra-node ring over NVLink, inter-node ring over the
//! network). Cross-node links are 10–100× slower than NVLink, so the
//! baseline — which must also move embedding activations/gradients
//! between every node's CPU and its GPUs — falls further behind, while
//! FAE's hot path only adds the (slower) gradient all-reduce.

use serde::{Deserialize, Serialize};

use crate::collective::ring_allreduce_time;
use crate::link::LinkSpec;
use crate::profile::ModelProfile;
use crate::step::{step_cost, ExecMode, SystemConfig};
use crate::timeline::{Phase, Timeline};

/// A cluster of identical paper servers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of servers.
    pub nodes: usize,
    /// One server's configuration (GPUs, links).
    pub node: SystemConfig,
    /// Inter-node network (per-node effective bandwidth).
    pub network: LinkSpec,
}

impl ClusterConfig {
    /// `nodes` × the paper server with `gpus_per_node` V100s, joined by
    /// the given network.
    pub fn paper_cluster(nodes: usize, gpus_per_node: usize, network: LinkSpec) -> Self {
        assert!(nodes >= 1, "need at least one node");
        Self { nodes, node: SystemConfig::paper_server(gpus_per_node), network }
    }

    /// 100 Gb/s RoCE/InfiniBand-class fabric (~11 GB/s effective).
    pub fn network_100g() -> LinkSpec {
        LinkSpec { name: "100GbE".into(), bandwidth: 11e9, latency: 30e-6 }
    }

    /// 25 Gb/s Ethernet (~2.8 GB/s effective).
    pub fn network_25g() -> LinkSpec {
        LinkSpec { name: "25GbE".into(), bandwidth: 2.8e9, latency: 50e-6 }
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.node.num_gpus
    }
}

/// Hierarchical all-reduce: intra-node ring (NVLink) reduce-scatter +
/// inter-node ring over one network link per node + intra-node broadcast.
/// Modelled as the intra-node ring plus a full inter-node ring of the
/// same payload.
pub fn hierarchical_allreduce_time(cluster: &ClusterConfig, bytes: f64) -> f64 {
    let intra = ring_allreduce_time(&cluster.node.nvlink, cluster.node.num_gpus, bytes);
    let inter = ring_allreduce_time(&cluster.network, cluster.nodes, bytes);
    intra + inter
}

/// Cost of one training step over a cluster-global mini-batch of `batch`
/// samples. Per-node work uses the single-node model on the node's shard;
/// collective terms are replaced by the hierarchical version.
pub fn cluster_step_cost(
    profile: &ModelProfile,
    cluster: &ClusterConfig,
    mode: ExecMode,
    batch: usize,
) -> Timeline {
    let per_node = batch.div_ceil(cluster.nodes);
    let mut t = step_cost(profile, &cluster.node, mode, per_node);
    if cluster.nodes <= 1 {
        return t;
    }
    // Extend the gradient synchronisation across nodes: the payload that
    // crossed NVLink inside the node must also cross the network.
    let payload = match mode {
        ExecMode::FaeHotGpu => profile.dense_params() * 4.0 + profile.hot_emb_bytes,
        _ => profile.dense_params() * 4.0,
    };
    t.add(Phase::AllReduce, ring_allreduce_time(&cluster.network, cluster.nodes, payload));
    t
}

/// FAE hot step with a *sparse* inter-node synchronisation: only the
/// embedding rows the mini-batch actually touched cross the network
/// (row ids + values), instead of the whole hot bag. Inside a node the
/// dense full-bag all-reduce stays (NVLink makes it cheap); across nodes
/// this is the optimisation a real multi-server FAE would need on slow
/// fabrics — the naive full-bag payload drowns on sub-100G networks.
pub fn cluster_step_cost_fae_sparse(
    profile: &ModelProfile,
    cluster: &ClusterConfig,
    batch: usize,
) -> Timeline {
    let per_node = batch.div_ceil(cluster.nodes);
    let mut t = step_cost(profile, &cluster.node, ExecMode::FaeHotGpu, per_node);
    if cluster.nodes <= 1 {
        return t;
    }
    let touched_bytes =
        (profile.lookups_per_sample * batch) as f64 * (profile.emb_dim as f64 * 4.0 + 4.0);
    let payload = profile.dense_params() * 4.0 + touched_bytes.min(profile.hot_emb_bytes);
    t.add(Phase::AllReduce, ring_allreduce_time(&cluster.network, cluster.nodes, payload));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ModelProfile {
        ModelProfile {
            dense_features: 13,
            bottom_mlp: vec![13, 512, 256, 64, 16],
            top_mlp: vec![512, 256, 1],
            emb_dim: 16,
            num_tables: 26,
            lookups_per_sample: 26,
            extra_flops_per_sample: 0.0,
            hot_emb_bytes: 256e6,
            full_emb_bytes: 2e9,
            host_prep_per_sample: 0.0,
            cpu_embed_per_sample: 0.0,
        }
    }

    #[test]
    fn hierarchical_allreduce_adds_network_term() {
        let c = ClusterConfig::paper_cluster(4, 4, ClusterConfig::network_100g());
        let single = ClusterConfig::paper_cluster(1, 4, ClusterConfig::network_100g());
        let bytes = 64e6;
        assert!(
            hierarchical_allreduce_time(&c, bytes) > hierarchical_allreduce_time(&single, bytes)
        );
        // Network ring dominates NVLink ring for equal payloads.
        let intra = ring_allreduce_time(&c.node.nvlink, 4, bytes);
        let total = hierarchical_allreduce_time(&c, bytes);
        assert!(total > 5.0 * intra, "network term too cheap: {total} vs intra {intra}");
    }

    #[test]
    fn single_node_cluster_matches_single_node_model() {
        let p = profile();
        let c = ClusterConfig::paper_cluster(1, 4, ClusterConfig::network_100g());
        let a = cluster_step_cost(&p, &c, ExecMode::BaselineHybrid, 4096).total();
        let b = step_cost(&p, &c.node, ExecMode::BaselineHybrid, 4096).total();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn fae_still_beats_baseline_across_nodes() {
        // The paper's expectation: the insight holds multi-server.
        let p = profile();
        for nodes in [2usize, 4, 8] {
            let c = ClusterConfig::paper_cluster(nodes, 4, ClusterConfig::network_100g());
            let batch = 1024 * c.total_gpus(); // weak scaling
            let base = cluster_step_cost(&p, &c, ExecMode::BaselineHybrid, batch).total();
            let fae = cluster_step_cost(&p, &c, ExecMode::FaeHotGpu, batch).total();
            assert!(fae < base, "{nodes} nodes: FAE {fae} !< baseline {base}");
        }
    }

    #[test]
    fn sparse_cross_node_sync_rescues_fae_on_slow_networks() {
        let p = profile();
        let slow = ClusterConfig::paper_cluster(4, 4, ClusterConfig::network_25g());
        let batch = 1024 * slow.total_gpus();
        let naive = cluster_step_cost(&p, &slow, ExecMode::FaeHotGpu, batch).total();
        let sparse = cluster_step_cost_fae_sparse(&p, &slow, batch).total();
        let base = cluster_step_cost(&p, &slow, ExecMode::BaselineHybrid, batch).total();
        assert!(sparse < naive, "sparse sync {sparse} !< naive {naive}");
        assert!(sparse < base, "sparse-sync FAE {sparse} should beat baseline {base}");
    }

    #[test]
    fn slower_network_hurts_fae_more_than_baseline() {
        // FAE ships the hot bag's gradients cross-node; the baseline only
        // ships dense gradients (its embedding traffic stays node-local).
        let p = profile();
        let fast = ClusterConfig::paper_cluster(4, 4, ClusterConfig::network_100g());
        let slow = ClusterConfig::paper_cluster(4, 4, ClusterConfig::network_25g());
        let batch = 1024 * 16;
        let fae_delta = cluster_step_cost(&p, &slow, ExecMode::FaeHotGpu, batch).total()
            - cluster_step_cost(&p, &fast, ExecMode::FaeHotGpu, batch).total();
        let base_delta = cluster_step_cost(&p, &slow, ExecMode::BaselineHybrid, batch).total()
            - cluster_step_cost(&p, &fast, ExecMode::BaselineHybrid, batch).total();
        assert!(fae_delta > base_delta, "fae Δ{fae_delta} vs base Δ{base_delta}");
    }
}
