//! Op-level shape of one recommendation model, as seen by the cost model.
//!
//! This deliberately lives apart from `fae-models` so that *paper-scale*
//! model shapes (61 GB of embeddings) can be costed without materialising
//! weights. `fae-models` provides a bridge that builds a profile from a
//! workload spec.

use serde::{Deserialize, Serialize};

/// Shape parameters the cost model needs for one model + workload pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Dense (continuous) input features.
    pub dense_features: usize,
    /// Bottom-MLP layer widths (first entry == `dense_features`).
    pub bottom_mlp: Vec<usize>,
    /// Top-MLP layer widths (last entry == 1).
    pub top_mlp: Vec<usize>,
    /// Embedding dimension.
    pub emb_dim: usize,
    /// Number of embedding tables.
    pub num_tables: usize,
    /// Total sparse lookups per sample across all tables (per-table
    /// sequence lengths summed; 26 for DLRM-Criteo, ~43 for TBSM-Taobao).
    pub lookups_per_sample: usize,
    /// Extra per-sample FLOPs outside the MLPs (TBSM's attention layer).
    pub extra_flops_per_sample: f64,
    /// Bytes of the hot-embedding bag replicated on each GPU (0 when the
    /// profile is used for pure baseline costing).
    pub hot_emb_bytes: f64,
    /// Bytes of the full embedding tables (CPU-resident).
    pub full_emb_bytes: f64,
    /// Host-side per-sample preparation cost (seconds) paid in *every*
    /// mode: ragged-sequence batching, feature assembly. Large for TBSM
    /// (per-timestep handling of up-to-21-step behaviour sequences),
    /// negligible for DLRM.
    pub host_prep_per_sample: f64,
    /// Extra CPU-side per-sample embedding cost (seconds) paid only when
    /// embeddings execute on the CPU (baseline / cold batches): per-step
    /// operator dispatch over sequence elements, ragged gathers. Zero for
    /// single-lookup DLRM fields.
    pub cpu_embed_per_sample: f64,
}

impl ModelProfile {
    /// MACs in one MLP forward pass for a single sample.
    fn mlp_macs(widths: &[usize]) -> f64 {
        widths.windows(2).map(|w| (w[0] * w[1]) as f64).sum()
    }

    /// Trainable dense parameters (MLP weights + biases).
    pub fn dense_params(&self) -> f64 {
        let count =
            |w: &[usize]| -> f64 { w.windows(2).map(|p| (p[0] * p[1] + p[1]) as f64).sum() };
        count(&self.bottom_mlp) + count(&self.top_mlp)
    }

    /// FLOPs for a forward pass over `batch` samples: both MLPs, the
    /// pairwise-interaction op, and any extra (attention) math.
    pub fn forward_flops(&self, batch: usize) -> f64 {
        let per_sample = 2.0 * (Self::mlp_macs(&self.bottom_mlp) + Self::mlp_macs(&self.top_mlp))
            + self.interaction_flops_per_sample()
            + self.extra_flops_per_sample;
        per_sample * batch as f64
    }

    /// FLOPs for the backward pass (standard ≈2× forward for MLP stacks).
    pub fn backward_flops(&self, batch: usize) -> f64 {
        2.0 * self.forward_flops(batch)
    }

    /// DLRM's dot-product feature interaction: all pairs among
    /// `num_tables + 1` feature vectors of width `emb_dim`.
    fn interaction_flops_per_sample(&self) -> f64 {
        let f = (self.num_tables + 1) as f64;
        f * f * self.emb_dim as f64
    }

    /// Number of dense-layer operator launches per forward pass (one GEMM +
    /// one activation per layer, plus the interaction).
    pub fn ops_per_forward(&self) -> usize {
        2 * (self.bottom_mlp.len() - 1) + 2 * (self.top_mlp.len() - 1) + 1
    }

    /// Embedding bytes gathered per sample during the forward pass.
    pub fn emb_gather_bytes_per_sample(&self) -> f64 {
        (self.lookups_per_sample * self.emb_dim * 4) as f64
    }

    /// Bytes of pooled embedding activations per sample (what the baseline
    /// ships CPU→GPU: one `emb_dim` vector per table).
    pub fn emb_activation_bytes_per_sample(&self) -> f64 {
        (self.num_tables * self.emb_dim * 4) as f64
    }

    /// Bytes of dense input features per sample.
    pub fn dense_input_bytes_per_sample(&self) -> f64 {
        (self.dense_features * 4) as f64
    }

    /// Embedding rows updated per sample by the sparse optimizer (upper
    /// bound: one per lookup).
    pub fn emb_rows_updated_per_sample(&self) -> f64 {
        self.lookups_per_sample as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kaggle_like() -> ModelProfile {
        ModelProfile {
            dense_features: 13,
            bottom_mlp: vec![13, 512, 256, 64, 16],
            top_mlp: vec![512, 256, 1],
            emb_dim: 16,
            num_tables: 26,
            lookups_per_sample: 26,
            extra_flops_per_sample: 0.0,
            hot_emb_bytes: 0.0,
            full_emb_bytes: 2e9,
            host_prep_per_sample: 0.0,
            cpu_embed_per_sample: 0.0,
        }
    }

    #[test]
    fn dense_params_hand_count() {
        let p = ModelProfile {
            dense_features: 2,
            bottom_mlp: vec![2, 3],
            top_mlp: vec![4, 1],
            emb_dim: 4,
            num_tables: 1,
            lookups_per_sample: 1,
            extra_flops_per_sample: 0.0,
            hot_emb_bytes: 0.0,
            full_emb_bytes: 0.0,
            host_prep_per_sample: 0.0,
            cpu_embed_per_sample: 0.0,
        };
        // (2*3+3) + (4*1+1) = 9 + 5 = 14.
        assert_eq!(p.dense_params(), 14.0);
    }

    #[test]
    fn forward_flops_scale_linearly_with_batch() {
        let p = kaggle_like();
        let f1 = p.forward_flops(1);
        let f1024 = p.forward_flops(1024);
        assert!((f1024 / f1 - 1024.0).abs() < 1e-6);
        assert!((p.backward_flops(64) / p.forward_flops(64) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn byte_accounting() {
        let p = kaggle_like();
        assert_eq!(p.emb_gather_bytes_per_sample(), 26.0 * 16.0 * 4.0);
        assert_eq!(p.emb_activation_bytes_per_sample(), 26.0 * 16.0 * 4.0);
        assert_eq!(p.dense_input_bytes_per_sample(), 52.0);
        assert_eq!(p.emb_rows_updated_per_sample(), 26.0);
    }

    #[test]
    fn attention_flops_add_on_top() {
        let mut p = kaggle_like();
        let base = p.forward_flops(10);
        p.extra_flops_per_sample = 1e6;
        assert!((p.forward_flops(10) - base - 1e7).abs() < 1.0);
    }
}
