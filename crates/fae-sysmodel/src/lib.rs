//! # fae-sysmodel — performance/power model of a CPU + multi-GPU node
//!
//! The paper's evaluation runs on a dual-socket Xeon 4116 server with four
//! NVLink-connected Tesla V100s (Table II). No GPUs are available here, so
//! this crate models that node analytically: every term in the paper's
//! latency story — device compute throughput, memory bandwidth (including
//! the random-gather penalty embedding lookups pay), PCIe/NVLink transfer
//! time, ring all-reduce, per-op dispatch overhead — is an explicit,
//! documented formula. The model is calibrated (see [`constants`]) so the
//! *shapes* of Figs 13–15 and Tables IV–VI reproduce: who wins, by what
//! factor, and where the crossovers sit.
//!
//! * [`DeviceSpec`] / [`LinkSpec`] — hardware parameters with
//!   Xeon-4116 / V100 / PCIe3 / NVLink2 presets,
//! * [`ModelProfile`] — the op-level shape of one recommendation model,
//! * [`SystemConfig`] + [`step`] — per-mini-batch cost for the baseline
//!   hybrid mode, the FAE pure-GPU hot mode, and a UVM-cache comparator
//!   standing in for NvOPT,
//! * [`Timeline`] — phase-tagged accumulation across a training schedule
//!   (Fig 14's stacked bars, Table IV/V totals),
//! * [`power`] — the per-GPU average-power model behind Table VI.

#![forbid(unsafe_code)]
pub mod collective;
pub mod constants;
pub mod device;
pub mod link;
pub mod multinode;
pub mod overlap;
pub mod power;
pub mod profile;
pub mod step;
pub mod timeline;

pub use collective::ring_allreduce_time;
pub use device::DeviceSpec;
pub use link::LinkSpec;
pub use multinode::{cluster_step_cost, ClusterConfig};
pub use overlap::{pipelining_headroom, step_dag, StepDag};
pub use profile::ModelProfile;
pub use step::{
    cold_sparse_optimizer_cost, reshard_cost, step_cost, sync_cost, ExecMode, SystemConfig,
};
pub use timeline::{Phase, Timeline};
