//! Compute-device parameters.

use serde::{Deserialize, Serialize};

/// One compute device (CPU socket pair or a single GPU).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// Effective sustained FLOP/s on dense training math (not peak — this
    /// already folds in achievable GEMM efficiency at recommendation-model
    /// layer sizes).
    pub flops: f64,
    /// Peak sequential memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Memory capacity in bytes.
    pub mem_capacity: u64,
    /// Cost of one randomly addressed row touch, seconds (latency-bound;
    /// independent of row width for embedding-sized rows).
    pub row_access: f64,
    /// Per-operator dispatch overhead, seconds.
    pub op_overhead: f64,
}

impl DeviceSpec {
    /// The paper's CPU: Intel Xeon Silver 4116 (Table II), 768 GB DDR4.
    /// Effective training throughput and bandwidth reflect a dual-socket
    /// Skylake-SP system running framework-threaded f32 math.
    pub fn xeon_4116() -> Self {
        Self {
            name: "Intel Xeon Silver 4116".into(),
            flops: 250e9,
            mem_bw: 60e9,
            mem_capacity: 768 << 30,
            row_access: crate::constants::CPU_ROW_ACCESS_S,
            op_overhead: crate::constants::CPU_OP_OVERHEAD_S,
        }
    }

    /// The paper's GPU: Nvidia Tesla V100-16GB (Table II). Effective f32
    /// training throughput ≈ 10 TFLOP/s, HBM2 at 900 GB/s.
    pub fn tesla_v100() -> Self {
        Self {
            name: "Nvidia Tesla V100".into(),
            flops: 10e12,
            mem_bw: 900e9,
            mem_capacity: 16 << 30,
            row_access: crate::constants::GPU_ROW_ACCESS_S,
            op_overhead: crate::constants::GPU_OP_OVERHEAD_S,
        }
    }

    /// Time to stream `bytes` sequentially through memory.
    pub fn stream_time(&self, bytes: f64) -> f64 {
        bytes / self.mem_bw
    }

    /// Time to gather/scatter `rows` randomly addressed rows of
    /// `row_bytes` each: one latency-bound touch per row plus the
    /// streaming cost of the bytes themselves.
    pub fn gather_rows_time(&self, rows: f64, row_bytes: f64) -> f64 {
        rows * self.row_access + rows * row_bytes / self.mem_bw
    }

    /// Time to execute `flops` of dense math, floored by `ops` dispatch
    /// overheads.
    pub fn compute_time(&self, flops: f64, ops: usize) -> f64 {
        flops / self.flops + ops as f64 * self.op_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sanely() {
        let cpu = DeviceSpec::xeon_4116();
        let gpu = DeviceSpec::tesla_v100();
        assert!(gpu.flops > 10.0 * cpu.flops, "GPU should dwarf CPU compute");
        assert!(gpu.mem_bw > 5.0 * cpu.mem_bw, "HBM should dwarf DDR bandwidth");
        assert!(cpu.mem_capacity > gpu.mem_capacity, "CPU has the capacity");
        assert_eq!(gpu.mem_capacity, 16 << 30);
    }

    #[test]
    fn gather_is_slower_than_stream() {
        let cpu = DeviceSpec::xeon_4116();
        // 10k rows of 64 B each, gathered vs streamed.
        let gathered = cpu.gather_rows_time(10_000.0, 64.0);
        let streamed = cpu.stream_time(10_000.0 * 64.0);
        assert!(gathered > 10.0 * streamed);
        // The GPU hides random-access latency far better.
        let gpu = DeviceSpec::tesla_v100();
        assert!(gpu.gather_rows_time(10_000.0, 64.0) < gathered / 20.0);
    }

    #[test]
    fn compute_time_includes_dispatch() {
        let gpu = DeviceSpec::tesla_v100();
        let t = gpu.compute_time(1e9, 5);
        assert!((t - (1e9 / 10e12 + 5.0 * 20e-6)).abs() < 1e-12);
        // Tiny kernels are dominated by launch overhead.
        assert!(gpu.compute_time(1e3, 1) > 0.9 * gpu.op_overhead);
    }
}
