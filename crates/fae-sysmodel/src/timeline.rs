//! Phase-tagged time accounting — the data behind Fig 14's stacked bars
//! and the absolute totals of Tables IV/V.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Execution phases of one training step, following Fig 14's legend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Embedding-table lookups (CPU in baseline/cold, GPU in FAE-hot).
    EmbedForward,
    /// Dense forward: bottom MLP, interaction, top MLP (+ attention).
    DenseForward,
    /// Backward pass through the dense layers and embedding scatter.
    Backward,
    /// Optimizer: sparse embedding SGD + dense SGD.
    Optimizer,
    /// CPU↔GPU activation/gradient transfers over PCIe.
    Transfer,
    /// Gradient all-reduce across GPUs over NVLink.
    AllReduce,
    /// Hot-embedding CPU↔GPU synchronisation at schedule transitions
    /// (FAE-only overhead).
    EmbedSync,
    /// Fixed per-step framework overhead.
    Framework,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 8] = [
        Phase::EmbedForward,
        Phase::DenseForward,
        Phase::Backward,
        Phase::Optimizer,
        Phase::Transfer,
        Phase::AllReduce,
        Phase::EmbedSync,
        Phase::Framework,
    ];

    /// Position of this phase in [`Phase::ALL`] (display order) — the
    /// array slot it occupies in a [`Timeline`] and in journal
    /// `PhaseSeconds` records.
    pub const fn index(self) -> usize {
        match self {
            Phase::EmbedForward => 0,
            Phase::DenseForward => 1,
            Phase::Backward => 2,
            Phase::Optimizer => 3,
            Phase::Transfer => 4,
            Phase::AllReduce => 5,
            Phase::EmbedSync => 6,
            Phase::Framework => 7,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::EmbedForward => "embed-forward",
            Phase::DenseForward => "dense-forward",
            Phase::Backward => "backward",
            Phase::Optimizer => "optimizer",
            Phase::Transfer => "cpu-gpu-transfer",
            Phase::AllReduce => "all-reduce",
            Phase::EmbedSync => "embed-sync",
            Phase::Framework => "framework",
        };
        f.write_str(s)
    }
}

/// Accumulated seconds per phase.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    seconds: [f64; 8],
    /// Seconds during which the GPUs sit idle (or spin-wait) because the
    /// work is CPU-resident — baseline embedding phases. A subset of the
    /// phase totals, tracked separately for the power model.
    cpu_resident: f64,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `secs` to `phase`.
    pub fn add(&mut self, phase: Phase, secs: f64) {
        debug_assert!(secs >= 0.0 && secs.is_finite(), "negative/NaN time");
        self.seconds[phase.index()] += secs;
    }

    /// Marks `secs` of already-recorded time as CPU-resident (GPU idle).
    pub fn add_cpu_resident(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0 && secs.is_finite(), "negative/NaN time");
        self.cpu_resident += secs;
    }

    /// Seconds of CPU-resident (GPU-idle) time.
    pub fn cpu_resident(&self) -> f64 {
        self.cpu_resident
    }

    /// Seconds accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.seconds[phase.index()]
    }

    /// Total seconds across phases.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Merges another timeline into this one.
    pub fn merge(&mut self, other: &Timeline) {
        for (a, b) in self.seconds.iter_mut().zip(&other.seconds) {
            *a += b;
        }
        self.cpu_resident += other.cpu_resident;
    }

    /// Adds every phase of `other`, scaled by `k` (e.g. a per-step cost
    /// repeated `k` times).
    pub fn merge_scaled(&mut self, other: &Timeline, k: f64) {
        for (a, b) in self.seconds.iter_mut().zip(&other.seconds) {
            *a += b * k;
        }
        self.cpu_resident += other.cpu_resident * k;
    }

    /// `(phase, seconds, fraction)` rows, display order.
    pub fn breakdown(&self) -> Vec<(Phase, f64, f64)> {
        let total = self.total().max(f64::MIN_POSITIVE);
        Phase::ALL
            .iter()
            .map(|&p| {
                let s = self.get(p);
                (p, s, s / total)
            })
            .collect()
    }

    /// Sum of the CPU↔GPU communication phases (Table V's metric).
    pub fn cpu_gpu_comm(&self) -> f64 {
        self.get(Phase::Transfer) + self.get(Phase::EmbedSync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut t = Timeline::new();
        t.add(Phase::Optimizer, 2.0);
        t.add(Phase::Optimizer, 1.0);
        t.add(Phase::Transfer, 0.5);
        assert_eq!(t.get(Phase::Optimizer), 3.0);
        assert_eq!(t.get(Phase::Backward), 0.0);
        assert!((t.total() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = Timeline::new();
        a.add(Phase::DenseForward, 1.0);
        let mut b = Timeline::new();
        b.add(Phase::DenseForward, 2.0);
        b.add(Phase::AllReduce, 4.0);
        a.merge(&b);
        assert_eq!(a.get(Phase::DenseForward), 3.0);
        let mut c = Timeline::new();
        c.merge_scaled(&b, 10.0);
        assert_eq!(c.get(Phase::AllReduce), 40.0);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut t = Timeline::new();
        t.add(Phase::EmbedForward, 1.0);
        t.add(Phase::EmbedSync, 3.0);
        let fracs: f64 = t.breakdown().iter().map(|(_, _, f)| f).sum();
        assert!((fracs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comm_metric_covers_transfer_and_sync() {
        let mut t = Timeline::new();
        t.add(Phase::Transfer, 1.5);
        t.add(Phase::EmbedSync, 0.5);
        t.add(Phase::AllReduce, 9.0); // NVLink traffic is not CPU-GPU comm
        assert_eq!(t.cpu_gpu_comm(), 2.0);
    }
}
