//! Critical-path execution model with compute/communication overlap.
//!
//! The additive model in [`crate::step`] charges phases sequentially —
//! faithful to the framework the paper measures (PyTorch's default stream
//! serialises CPU embedding work, transfers and kernels), but pessimistic
//! about what a pipelined implementation could do: prefetching the next
//! batch's embeddings while the current batch computes, or overlapping
//! the all-reduce with the backward pass. This module prices a step as a
//! *task DAG* scheduled on explicit resources (CPU, GPU, PCIe, NVLink)
//! and reports the makespan, quantifying the headroom pipelining leaves
//! on the table for both the baseline and FAE.

use std::collections::HashMap;

use crate::profile::ModelProfile;
use crate::step::{ExecMode, SystemConfig};
use crate::timeline::Phase;

/// An execution resource a task occupies exclusively.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// Host CPU (embedding gather, sparse optimizer).
    Cpu,
    /// One representative GPU (dense math; data parallel peers behave
    /// identically).
    Gpu,
    /// Host↔GPU PCIe link.
    Pcie,
    /// GPU↔GPU NVLink fabric.
    NvLink,
}

/// One node of the step DAG.
#[derive(Clone, Debug)]
pub struct Task {
    /// Stable name used for dependency references.
    pub name: &'static str,
    /// Resource this task occupies.
    pub resource: Resource,
    /// Duration in seconds.
    pub duration: f64,
    /// Names of tasks that must finish first.
    pub deps: Vec<&'static str>,
    /// Which reporting phase the task belongs to.
    pub phase: Phase,
}

/// A step expressed as a DAG of resource-bound tasks.
#[derive(Clone, Debug, Default)]
pub struct StepDag {
    tasks: Vec<Task>,
}

impl StepDag {
    /// Adds a task; `deps` must reference previously added names.
    pub fn add(
        &mut self,
        name: &'static str,
        resource: Resource,
        duration: f64,
        deps: &[&'static str],
        phase: Phase,
    ) {
        debug_assert!(
            deps.iter().all(|d| self.tasks.iter().any(|t| t.name == *d)),
            "dependency on unknown task"
        );
        self.tasks.push(Task { name, resource, duration, deps: deps.to_vec(), phase });
    }

    /// Tasks in insertion (topological) order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// List-schedules the DAG: each task starts when its dependencies have
    /// finished *and* its resource is free (insertion order breaks ties).
    /// Returns the makespan in seconds.
    pub fn makespan(&self) -> f64 {
        let mut finish: HashMap<&str, f64> = HashMap::new();
        let mut resource_free: HashMap<Resource, f64> = HashMap::new();
        let mut end = 0.0f64;
        for t in &self.tasks {
            let deps_done = t.deps.iter().map(|d| finish[*d]).fold(0.0f64, f64::max);
            let res_free = resource_free.get(&t.resource).copied().unwrap_or(0.0);
            let start = deps_done.max(res_free);
            let fin = start + t.duration;
            finish.insert(t.name, fin);
            resource_free.insert(t.resource, fin);
            end = end.max(fin);
        }
        end
    }

    /// Sum of all task durations — the additive (no-overlap) bound.
    pub fn serial_time(&self) -> f64 {
        self.tasks.iter().map(|t| t.duration).sum()
    }
}

/// Builds the step DAG for one mode, reusing the additive model's phase
/// durations but exposing the dependency structure. Pipelined semantics:
/// the *next* batch's CPU-side embedding work may overlap the current
/// batch's GPU compute (double buffering), expressed by placing the CPU
/// work and GPU work on different resources with only the true data
/// dependencies between them.
pub fn step_dag(
    profile: &ModelProfile,
    sys: &SystemConfig,
    mode: ExecMode,
    batch: usize,
) -> StepDag {
    use crate::step::step_cost;
    let t = step_cost(profile, sys, mode, batch);
    let mut dag = StepDag::default();
    match mode {
        ExecMode::BaselineHybrid => {
            dag.add("embed", Resource::Cpu, t.get(Phase::EmbedForward), &[], Phase::EmbedForward);
            // Half the transfer phase is the forward shipment, half the
            // gradient return.
            let xfer = t.get(Phase::Transfer) / 2.0;
            dag.add("h2d", Resource::Pcie, xfer, &["embed"], Phase::Transfer);
            dag.add(
                "fwd",
                Resource::Gpu,
                t.get(Phase::DenseForward),
                &["h2d"],
                Phase::DenseForward,
            );
            dag.add("bwd", Resource::Gpu, t.get(Phase::Backward), &["fwd"], Phase::Backward);
            dag.add(
                "allreduce",
                Resource::NvLink,
                t.get(Phase::AllReduce),
                &["bwd"],
                Phase::AllReduce,
            );
            dag.add("d2h", Resource::Pcie, xfer, &["bwd"], Phase::Transfer);
            dag.add(
                "optimizer",
                Resource::Cpu,
                t.get(Phase::Optimizer),
                &["d2h"],
                Phase::Optimizer,
            );
            dag.add("loop", Resource::Cpu, t.get(Phase::Framework), &[], Phase::Framework);
        }
        ExecMode::FaeHotGpu => {
            dag.add("embed", Resource::Gpu, t.get(Phase::EmbedForward), &[], Phase::EmbedForward);
            dag.add(
                "fwd",
                Resource::Gpu,
                t.get(Phase::DenseForward),
                &["embed"],
                Phase::DenseForward,
            );
            dag.add("bwd", Resource::Gpu, t.get(Phase::Backward), &["fwd"], Phase::Backward);
            dag.add(
                "allreduce",
                Resource::NvLink,
                t.get(Phase::AllReduce),
                &["bwd"],
                Phase::AllReduce,
            );
            dag.add(
                "optimizer",
                Resource::Gpu,
                t.get(Phase::Optimizer),
                &["allreduce"],
                Phase::Optimizer,
            );
            dag.add("loop", Resource::Cpu, t.get(Phase::Framework), &[], Phase::Framework);
        }
        ExecMode::UvmCache { .. } => {
            dag.add("embed", Resource::Gpu, t.get(Phase::EmbedForward), &[], Phase::EmbedForward);
            dag.add("faults", Resource::Pcie, t.get(Phase::Transfer), &[], Phase::Transfer);
            dag.add(
                "fwd",
                Resource::Gpu,
                t.get(Phase::DenseForward),
                &["embed", "faults"],
                Phase::DenseForward,
            );
            dag.add("bwd", Resource::Gpu, t.get(Phase::Backward), &["fwd"], Phase::Backward);
            dag.add(
                "allreduce",
                Resource::NvLink,
                t.get(Phase::AllReduce),
                &["bwd"],
                Phase::AllReduce,
            );
            dag.add(
                "optimizer",
                Resource::Gpu,
                t.get(Phase::Optimizer),
                &["bwd"],
                Phase::Optimizer,
            );
            dag.add("loop", Resource::Cpu, t.get(Phase::Framework), &[], Phase::Framework);
        }
    }
    dag
}

/// Pipelining headroom of one step: `(additive, overlapped, ratio)`.
/// `ratio < 1` means a pipelined runtime would beat the measured
/// (serialised) implementation by that factor.
pub fn pipelining_headroom(
    profile: &ModelProfile,
    sys: &SystemConfig,
    mode: ExecMode,
    batch: usize,
) -> (f64, f64, f64) {
    let dag = step_dag(profile, sys, mode, batch);
    let serial = dag.serial_time();
    let overlapped = dag.makespan();
    (serial, overlapped, overlapped / serial)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ModelProfile {
        ModelProfile {
            dense_features: 13,
            bottom_mlp: vec![13, 512, 256, 64, 16],
            top_mlp: vec![512, 256, 1],
            emb_dim: 16,
            num_tables: 26,
            lookups_per_sample: 26,
            extra_flops_per_sample: 0.0,
            hot_emb_bytes: 256e6,
            full_emb_bytes: 2e9,
            host_prep_per_sample: 0.0,
            cpu_embed_per_sample: 0.0,
        }
    }

    #[test]
    fn makespan_of_a_chain_is_its_sum() {
        let mut d = StepDag::default();
        d.add("a", Resource::Cpu, 1.0, &[], Phase::EmbedForward);
        d.add("b", Resource::Gpu, 2.0, &["a"], Phase::DenseForward);
        d.add("c", Resource::Cpu, 3.0, &["b"], Phase::Optimizer);
        assert_eq!(d.makespan(), 6.0);
        assert_eq!(d.serial_time(), 6.0);
    }

    #[test]
    fn independent_tasks_on_different_resources_overlap() {
        let mut d = StepDag::default();
        d.add("a", Resource::Cpu, 3.0, &[], Phase::EmbedForward);
        d.add("b", Resource::Gpu, 2.0, &[], Phase::DenseForward);
        assert_eq!(d.makespan(), 3.0);
        assert_eq!(d.serial_time(), 5.0);
    }

    #[test]
    fn same_resource_serialises_even_without_deps() {
        let mut d = StepDag::default();
        d.add("a", Resource::Gpu, 2.0, &[], Phase::DenseForward);
        d.add("b", Resource::Gpu, 2.0, &[], Phase::Backward);
        assert_eq!(d.makespan(), 4.0);
    }

    #[test]
    fn overlap_never_exceeds_serial_time() {
        let p = profile();
        let sys = SystemConfig::paper_server(4);
        for mode in
            [ExecMode::BaselineHybrid, ExecMode::FaeHotGpu, ExecMode::UvmCache { hit_rate: 0.85 }]
        {
            let (serial, overlapped, ratio) = pipelining_headroom(&p, &sys, mode, 4096);
            assert!(overlapped <= serial + 1e-12, "{mode:?}");
            assert!(ratio > 0.0 && ratio <= 1.0);
        }
    }

    #[test]
    fn pipelining_cannot_rescue_the_cpu_bound_baseline() {
        // The baseline's dominant costs (embedding gather, sparse SGD and
        // the framework loop) all occupy the *same* resource — the CPU —
        // so a pipelined runtime can hide very little of its step. FAE's
        // host-side loop overhead, by contrast, hides entirely under the
        // GPU-resident chain. Pipelining therefore helps FAE *more*,
        // i.e. it widens rather than closes the gap.
        let p = profile();
        let sys = SystemConfig::paper_server(4);
        let (_, _, base_ratio) = pipelining_headroom(&p, &sys, ExecMode::BaselineHybrid, 4096);
        let (_, _, fae_ratio) = pipelining_headroom(&p, &sys, ExecMode::FaeHotGpu, 4096);
        assert!(
            base_ratio > 0.8,
            "baseline should be nearly unpipelinable (CPU-bound): ratio {base_ratio}"
        );
        assert!(
            fae_ratio < base_ratio,
            "FAE should gain more from pipelining: {fae_ratio} vs baseline {base_ratio}"
        );
    }

    #[test]
    fn fae_wins_even_against_a_fully_pipelined_baseline() {
        // Robustness of the paper's conclusion: even granting the baseline
        // perfect overlap (its critical path) while charging FAE serially,
        // FAE is still faster at 4 GPUs.
        let p = profile();
        let sys = SystemConfig::paper_server(4);
        let base_dag = step_dag(&p, &sys, ExecMode::BaselineHybrid, 4096);
        let fae_dag = step_dag(&p, &sys, ExecMode::FaeHotGpu, 4096);
        assert!(
            fae_dag.serial_time() < base_dag.makespan(),
            "FAE serial {} !< pipelined baseline {}",
            fae_dag.serial_time(),
            base_dag.makespan()
        );
    }
}
