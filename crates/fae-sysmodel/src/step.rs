//! Per-mini-batch cost models for the three execution modes.
//!
//! * **BaselineHybrid** — the state-of-the-art setup of Fig 3: embeddings
//!   live on the CPU; pooled activations ship to the GPUs over PCIe; MLPs
//!   run data-parallel on the GPUs; embedding gradients ship back and the
//!   sparse optimizer runs on the CPU.
//! * **FaeHotGpu** — the paper's hot path: hot embeddings are replicated on
//!   every GPU, the whole step (lookup → MLPs → backward → optimizer) runs
//!   on-device, and one fused ring all-reduce over NVLink synchronises
//!   dense *and* embedding gradients (§II-B insight 3).
//! * **UvmCache** — the NvOPT-style comparator (§V): all compute on GPU
//!   with embeddings behind a device-side cache; misses fault rows across
//!   PCIe.
//!
//! All formulas model weak scaling: `batch` is the *global* mini-batch,
//! split evenly across `num_gpus`.

use serde::{Deserialize, Serialize};

use crate::collective::ring_allreduce_time;
use crate::constants::{
    COMM_REINIT_S, HOST_IO_BW, MULTI_GPU_SYNC_EXP, MULTI_GPU_SYNC_S, PCIE_SMALL_TENSOR_EFF,
    PER_STEP_FIXED_S, SGD_BYTES_PER_PARAM,
};
use crate::device::DeviceSpec;
use crate::link::LinkSpec;
use crate::profile::ModelProfile;
use crate::timeline::{Phase, Timeline};

/// Execution mode of one mini-batch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Embeddings + sparse optimizer on CPU, MLPs on GPU (Fig 3).
    BaselineHybrid,
    /// Entire step on GPUs against the replicated hot bag.
    FaeHotGpu,
    /// GPU compute with a UVM-style embedding cache; `hit_rate` is the
    /// fraction of lookups served from device memory.
    UvmCache {
        /// Cache hit rate in `[0, 1]`.
        hit_rate: f64,
    },
}

/// The machine the step runs on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Host CPU.
    pub cpu: DeviceSpec,
    /// One GPU (all GPUs identical).
    pub gpu: DeviceSpec,
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Host↔GPU link (per GPU).
    pub pcie: LinkSpec,
    /// GPU↔GPU fabric.
    pub nvlink: LinkSpec,
}

impl SystemConfig {
    /// The paper's server (Table II) with `num_gpus` V100s.
    pub fn paper_server(num_gpus: usize) -> Self {
        assert!(num_gpus >= 1, "need at least one GPU");
        Self {
            cpu: DeviceSpec::xeon_4116(),
            gpu: DeviceSpec::tesla_v100(),
            num_gpus,
            pcie: LinkSpec::pcie3_x16(),
            nvlink: LinkSpec::nvlink2(),
        }
    }

    /// Effective per-GPU PCIe bandwidth once host-side I/O contention is
    /// applied: `num_gpus` links cannot jointly exceed [`HOST_IO_BW`].
    fn effective_pcie(&self) -> LinkSpec {
        let aggregate = self.pcie.bandwidth * self.num_gpus as f64;
        let scale = (HOST_IO_BW / aggregate).min(1.0);
        LinkSpec {
            name: self.pcie.name.clone(),
            bandwidth: self.pcie.bandwidth * scale,
            latency: self.pcie.latency,
        }
    }
}

/// Cost of one training step over a *global* mini-batch of `batch`
/// samples, as a phase-tagged timeline.
///
/// ```
/// use fae_sysmodel::{step_cost, ExecMode, ModelProfile, SystemConfig};
/// let profile = ModelProfile {
///     dense_features: 13,
///     bottom_mlp: vec![13, 64, 16],
///     top_mlp: vec![64, 1],
///     emb_dim: 16,
///     num_tables: 26,
///     lookups_per_sample: 26,
///     extra_flops_per_sample: 0.0,
///     hot_emb_bytes: 256e6,
///     full_emb_bytes: 2e9,
///     host_prep_per_sample: 0.0,
///     cpu_embed_per_sample: 0.0,
/// };
/// let sys = SystemConfig::paper_server(4);
/// let base = step_cost(&profile, &sys, ExecMode::BaselineHybrid, 4096);
/// let hot = step_cost(&profile, &sys, ExecMode::FaeHotGpu, 4096);
/// assert!(hot.total() < base.total()); // the paper's headline, per step
/// ```
pub fn step_cost(
    profile: &ModelProfile,
    sys: &SystemConfig,
    mode: ExecMode,
    batch: usize,
) -> Timeline {
    let mut t = Timeline::new();
    let n = sys.num_gpus as f64;
    let per_gpu = (batch as f64 / n).ceil();
    let pcie = sys.effective_pcie();

    // Dense compute is data-parallel on the GPUs in every mode.
    let fwd_gpu =
        sys.gpu.compute_time(profile.forward_flops(per_gpu as usize), profile.ops_per_forward());
    let bwd_gpu =
        sys.gpu.compute_time(profile.backward_flops(per_gpu as usize), profile.ops_per_forward());
    // Data-parallel MLPs all-reduce their dense gradients in every mode.
    let dense_grad_bytes = profile.dense_params() * 4.0;

    match mode {
        ExecMode::BaselineHybrid => {
            // 1. CPU gathers embedding rows for the whole global batch —
            //    latency-bound per row, which is why Terabyte's dim-64
            //    rows cost barely more than Kaggle's dim-16 ones.
            let rows = profile.lookups_per_sample as f64 * batch as f64;
            let row_bytes = (profile.emb_dim * 4) as f64;
            t.add(
                Phase::EmbedForward,
                sys.cpu.gather_rows_time(rows, row_bytes)
                    + profile.num_tables as f64 * sys.cpu.op_overhead
                    + profile.cpu_embed_per_sample * batch as f64,
            );
            // 2. Embedding activations (one vector per lookup — TBSM ships
            //    every timestep) + dense inputs move to each GPU over its
            //    own (contended) PCIe link: one small transfer per table,
            //    each paying DMA setup latency at reduced efficiency.
            let fwd_bytes_per_gpu = (profile.emb_gather_bytes_per_sample()
                + profile.dense_input_bytes_per_sample())
                * per_gpu;
            let small_xfer = |bytes: f64| {
                profile.num_tables as f64 * pcie.latency
                    + bytes / (pcie.bandwidth * PCIE_SMALL_TENSOR_EFF)
            };
            t.add(Phase::Transfer, small_xfer(fwd_bytes_per_gpu));
            // 3–4. Dense forward/backward on the GPUs.
            t.add(Phase::DenseForward, fwd_gpu);
            t.add(Phase::Backward, bwd_gpu);
            // 5. Dense-gradient all-reduce over NVLink.
            t.add(
                Phase::AllReduce,
                ring_allreduce_time(&sys.nvlink, sys.num_gpus, dense_grad_bytes),
            );
            // 6. Embedding gradients ship back over PCIe, same per-table
            //    small-tensor pattern.
            let bwd_bytes_per_gpu = profile.emb_gather_bytes_per_sample() * per_gpu;
            t.add(Phase::Transfer, small_xfer(bwd_bytes_per_gpu));
            // 7. Sparse SGD on the CPU — the paper's headline bottleneck.
            //    Each updated row costs two latency-bound touches (read
            //    gradient, read-modify-write weight) plus the byte stream.
            let upd_rows = profile.emb_rows_updated_per_sample() * batch as f64;
            let cpu_sgd = sys.cpu.gather_rows_time(2.0 * upd_rows, row_bytes * 1.5)
                + profile.num_tables as f64 * sys.cpu.op_overhead;
            // Dense SGD stays on the GPUs (cheap, runs in parallel).
            let gpu_dense_sgd = sys
                .gpu
                .stream_time(profile.dense_params() * SGD_BYTES_PER_PARAM)
                .max(sys.gpu.compute_time(profile.dense_params() * 2.0, 1));
            t.add(Phase::Optimizer, cpu_sgd + gpu_dense_sgd);
            // While the CPU runs embeddings + sparse SGD, the GPUs idle
            // (or spin-wait); the power model needs to know this.
            t.add_cpu_resident(t.get(Phase::EmbedForward) + cpu_sgd);
        }
        ExecMode::FaeHotGpu => {
            // 1. Embedding gather runs on each GPU's HBM against the
            //    replicated hot bag.
            let rows = profile.lookups_per_sample as f64 * per_gpu;
            let row_bytes = (profile.emb_dim * 4) as f64;
            t.add(
                Phase::EmbedForward,
                sys.gpu.gather_rows_time(rows, row_bytes) + sys.gpu.op_overhead,
            );
            // 2–3. Dense forward/backward, plus the embedding scatter in
            //      the backward pass (HBM-bound, folded into Backward).
            t.add(Phase::DenseForward, fwd_gpu);
            t.add(Phase::Backward, bwd_gpu + sys.gpu.gather_rows_time(rows, row_bytes));
            // 4. One fused all-reduce: dense grads + hot-embedding grads
            //    (§II-B: "While this increases the size of the synchronized
            //    gradient, it is called only once"). NCCL all-reduces the
            //    *dense* gradient buffer of the whole hot bag, not just the
            //    touched rows — which is why Kaggle, with the largest hot
            //    bag, shows the biggest FAE sync share in Fig 14.
            let emb_grad_bytes = profile.hot_emb_bytes;
            t.add(
                Phase::AllReduce,
                ring_allreduce_time(&sys.nvlink, sys.num_gpus, dense_grad_bytes + emb_grad_bytes),
            );
            // 5. Whole optimizer on the GPUs (sparse rows + dense params).
            let upd_rows = profile.emb_rows_updated_per_sample() * per_gpu;
            t.add(
                Phase::Optimizer,
                sys.gpu.gather_rows_time(2.0 * upd_rows, row_bytes * 1.5)
                    + sys.gpu.stream_time(profile.dense_params() * SGD_BYTES_PER_PARAM)
                    + sys.gpu.op_overhead,
            );
        }
        ExecMode::UvmCache { hit_rate } => {
            assert!((0.0..=1.0).contains(&hit_rate), "hit rate out of range");
            // Hits gather from HBM; misses fault a full row across PCIe.
            let lookups = profile.lookups_per_sample as f64 * per_gpu;
            let row_bytes = (profile.emb_dim * 4) as f64;
            let hit_rows = lookups * hit_rate;
            let miss_rows = lookups * (1.0 - hit_rate);
            let miss_bytes = miss_rows * row_bytes;
            t.add(
                Phase::EmbedForward,
                sys.gpu.gather_rows_time(hit_rows, row_bytes) + sys.gpu.op_overhead,
            );
            // Each miss pays a faulting transfer: one bulk byte-movement
            // term plus a fault-stall term. Scattered embedding rows
            // coalesce poorly under on-demand paging; empirically UVM
            // sustains roughly one fault-resolution stall per ~dozen
            // random rows, which is what makes cache-based schemes ~1.5x
            // slower than FAE's replication (§V's NvOPT comparison).
            t.add(
                Phase::Transfer,
                pcie.transfer_time(miss_bytes) + (miss_rows / 12.0) * pcie.latency,
            );
            t.add(Phase::DenseForward, fwd_gpu);
            t.add(Phase::Backward, bwd_gpu + sys.gpu.gather_rows_time(hit_rows, row_bytes));
            // Write-back of missed rows' updates.
            t.add(Phase::Transfer, pcie.transfer_time(miss_bytes));
            t.add(
                Phase::AllReduce,
                ring_allreduce_time(&sys.nvlink, sys.num_gpus, dense_grad_bytes),
            );
            let upd_rows = profile.emb_rows_updated_per_sample() * per_gpu;
            t.add(
                Phase::Optimizer,
                sys.gpu.gather_rows_time(2.0 * upd_rows, row_bytes * 1.5)
                    + sys.gpu.stream_time(profile.dense_params() * SGD_BYTES_PER_PARAM)
                    + sys.gpu.op_overhead,
            );
        }
    }

    // Multi-GPU coordination penalty, paid by every mode (NCCL launch,
    // stream rendezvous, NUMA): this is what makes the paper's baseline
    // *slower* on 4 GPUs than on 2 for Kaggle (Table IV).
    if sys.num_gpus > 1 {
        t.add(
            Phase::AllReduce,
            MULTI_GPU_SYNC_S * ((sys.num_gpus - 1) as f64).powf(MULTI_GPU_SYNC_EXP),
        );
    }
    t.add(Phase::Framework, PER_STEP_FIXED_S + profile.host_prep_per_sample * batch as f64);
    t
}

/// The CPU sparse-SGD term of one `BaselineHybrid` (cold) step in
/// isolation — exactly the `cpu_sgd` component [`step_cost`] charges to
/// [`Phase::Optimizer`] and to CPU residency. The stale-skip trainer uses
/// it to rescale the optimizer charge by the fraction of row-updates it
/// actually applied (deferred cold rows skip this work).
pub fn cold_sparse_optimizer_cost(profile: &ModelProfile, sys: &SystemConfig, batch: usize) -> f64 {
    let row_bytes = (profile.emb_dim * 4) as f64;
    let upd_rows = profile.emb_rows_updated_per_sample() * batch as f64;
    sys.cpu.gather_rows_time(2.0 * upd_rows, row_bytes * 1.5)
        + profile.num_tables as f64 * sys.cpu.op_overhead
}

/// Cost of one hot-embedding synchronisation event (hot↔cold schedule
/// transition): the hot bag moves CPU→each GPU (refresh) or GPU→CPU
/// (write-back) over the contended PCIe links.
pub fn sync_cost(sys: &SystemConfig, hot_bytes: f64) -> Timeline {
    let mut t = Timeline::new();
    let pcie = sys.effective_pcie();
    // Refresh is parallel per GPU; write-back is a single GPU's transfer.
    t.add(Phase::EmbedSync, pcie.transfer_time(hot_bytes) + sys.pcie.transfer_time(hot_bytes));
    t
}

/// Cost of recovering from a device loss by shrinking the data-parallel
/// group to the surviving GPUs (`sys.num_gpus` is the *post-shrink*
/// count): the collective communicator is re-established, the dense
/// parameters are re-broadcast so the survivors agree on a starting
/// point, and the hot-embedding bags are re-replicated from the CPU
/// master copy onto the new group.
pub fn reshard_cost(sys: &SystemConfig, dense_param_bytes: f64, hot_bytes: f64) -> Timeline {
    // Hot bags replicate CPU→GPU exactly like a schedule-transition sync.
    let mut t = sync_cost(sys, hot_bytes);
    // Parameter re-broadcast rides the same ring as an all-reduce.
    t.add(Phase::AllReduce, ring_allreduce_time(&sys.nvlink, sys.num_gpus, dense_param_bytes));
    // Communicator teardown + rendezvous: the fixed, dominant term.
    t.add(Phase::Framework, COMM_REINIT_S);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kaggle_profile() -> ModelProfile {
        ModelProfile {
            dense_features: 13,
            bottom_mlp: vec![13, 512, 256, 64, 16],
            top_mlp: vec![512, 256, 1],
            emb_dim: 16,
            num_tables: 26,
            lookups_per_sample: 26,
            extra_flops_per_sample: 0.0,
            hot_emb_bytes: 256e6,
            full_emb_bytes: 2e9,
            host_prep_per_sample: 0.0,
            cpu_embed_per_sample: 0.0,
        }
    }

    #[test]
    fn hot_step_beats_baseline_step() {
        let p = kaggle_profile();
        for gpus in [1, 2, 4] {
            let sys = SystemConfig::paper_server(gpus);
            let batch = 1024 * gpus;
            let base = step_cost(&p, &sys, ExecMode::BaselineHybrid, batch).total();
            let hot = step_cost(&p, &sys, ExecMode::FaeHotGpu, batch).total();
            assert!(hot < base, "{gpus} GPUs: hot {hot} should beat baseline {base}");
        }
    }

    #[test]
    fn baseline_step_latency_in_paper_ballpark() {
        // Table IV implies ≈33 ms/step for Kaggle, batch 1024, 1 GPU.
        let p = kaggle_profile();
        let sys = SystemConfig::paper_server(1);
        let base = step_cost(&p, &sys, ExecMode::BaselineHybrid, 1024).total();
        assert!((5e-3..100e-3).contains(&base), "baseline step {base}s implausible");
    }

    #[test]
    fn hot_step_has_no_pcie_transfer() {
        let p = kaggle_profile();
        let sys = SystemConfig::paper_server(4);
        let hot = step_cost(&p, &sys, ExecMode::FaeHotGpu, 4096);
        assert_eq!(hot.get(Phase::Transfer), 0.0);
        assert!(hot.get(Phase::AllReduce) > 0.0);
        let base = step_cost(&p, &sys, ExecMode::BaselineHybrid, 4096);
        assert!(base.get(Phase::Transfer) > 0.0);
    }

    #[test]
    fn optimizer_dominates_baseline_embed_path() {
        // Fig 14: "the optimizer time is a large portion of the baseline".
        let p = kaggle_profile();
        let sys = SystemConfig::paper_server(1);
        let base = step_cost(&p, &sys, ExecMode::BaselineHybrid, 1024);
        assert!(base.get(Phase::Optimizer) > base.get(Phase::DenseForward));
        assert!(base.get(Phase::Optimizer) > base.get(Phase::Transfer));
    }

    #[test]
    fn single_gpu_has_no_allreduce() {
        let p = kaggle_profile();
        let sys = SystemConfig::paper_server(1);
        for mode in [ExecMode::BaselineHybrid, ExecMode::FaeHotGpu] {
            assert_eq!(step_cost(&p, &sys, mode, 1024).get(Phase::AllReduce), 0.0);
        }
    }

    #[test]
    fn weak_scaling_keeps_gpu_compute_flat_and_grows_cpu_side() {
        let p = kaggle_profile();
        let s1 = SystemConfig::paper_server(1);
        let s4 = SystemConfig::paper_server(4);
        let b1 = step_cost(&p, &s1, ExecMode::BaselineHybrid, 1024);
        let b4 = step_cost(&p, &s4, ExecMode::BaselineHybrid, 4096);
        // Per-GPU dense work identical under weak scaling.
        assert!((b1.get(Phase::DenseForward) - b4.get(Phase::DenseForward)).abs() < 1e-9);
        // CPU embedding work grows with the global batch (the gather term
        // quadruples; the fixed dispatch term does not).
        assert!(b4.get(Phase::EmbedForward) > 1.5 * b1.get(Phase::EmbedForward));
    }

    #[test]
    fn uvm_cache_sits_between_baseline_and_hot() {
        // The paper's NvOPT comparison runs Criteo Terabyte (dim 64) at
        // batch 32k on one V100; use that shape here — wide rows amortise
        // the fault stalls that dominate at small dims.
        let p = ModelProfile {
            emb_dim: 64,
            top_mlp: vec![512, 512, 256, 1],
            full_emb_bytes: 61e9,
            ..kaggle_profile()
        };
        let sys = SystemConfig::paper_server(1);
        let batch = 32 * 1024;
        let base = step_cost(&p, &sys, ExecMode::BaselineHybrid, batch).total();
        let uvm = step_cost(&p, &sys, ExecMode::UvmCache { hit_rate: 0.85 }, batch).total();
        let hot = step_cost(&p, &sys, ExecMode::FaeHotGpu, batch).total();
        assert!(hot < uvm, "hot {hot} should beat uvm {uvm}");
        assert!(uvm < base, "uvm {uvm} should beat baseline {base}");
    }

    #[test]
    fn perfect_uvm_cache_approaches_hot_mode() {
        let p = kaggle_profile();
        let sys = SystemConfig::paper_server(1);
        let uvm = step_cost(&p, &sys, ExecMode::UvmCache { hit_rate: 1.0 }, 1024);
        assert_eq!(uvm.get(Phase::Transfer), 0.0);
    }

    #[test]
    fn sync_cost_scales_with_hot_bytes() {
        let sys = SystemConfig::paper_server(4);
        let small = sync_cost(&sys, 16e6).total();
        let large = sync_cost(&sys, 256e6).total();
        assert!(large > 10.0 * small);
    }

    #[test]
    fn pcie_contention_kicks_in_at_four_gpus() {
        let s2 = SystemConfig::paper_server(2);
        let s4 = SystemConfig::paper_server(4);
        assert!((s2.effective_pcie().bandwidth - s2.pcie.bandwidth).abs() < 1.0);
        assert!(s4.effective_pcie().bandwidth < s4.pcie.bandwidth);
    }

    #[test]
    fn reshard_cost_charges_reinit_broadcast_and_replication() {
        let sys = SystemConfig::paper_server(3);
        let t = reshard_cost(&sys, 8e6, 64e6);
        assert!((t.get(Phase::Framework) - COMM_REINIT_S).abs() < 1e-12);
        assert!(t.get(Phase::AllReduce) > 0.0, "parameter re-broadcast missing");
        assert!(t.get(Phase::EmbedSync) > 0.0, "hot-bag re-replication missing");
        // The fixed rendezvous term dominates for modest models.
        assert!(t.total() > COMM_REINIT_S);
        // More surviving GPUs move more hot bytes (contended PCIe).
        let t1 = reshard_cost(&SystemConfig::paper_server(1), 8e6, 64e6);
        assert!(t1.get(Phase::AllReduce) == 0.0, "single survivor has no ring");
        assert!(t1.total() < t.total());
    }
}
