//! Per-GPU average-power model (Table VI).
//!
//! The paper measures 58.9–62.5 W per GPU for the baseline and 55.8–57.0 W
//! for FAE, attributing the 5.3–8.8% reduction "primarily because of the
//! reduced communication costs between devices". We model average power as
//! an idle floor plus activity-weighted dynamic terms, with PCIe/NVLink
//! traffic the most expensive activity per unit time (copy engines, I/O
//! PHYs and host interrupts burn power without doing useful math):
//!
//! `P_avg = P_idle + P_comm · f_comm + P_compute · f_compute`
//!
//! where `f_x` is the fraction of wall-clock the GPU spends in activity
//! `x` according to a [`Timeline`].

use crate::timeline::{Phase, Timeline};

/// Idle draw of a V100 board, watts.
pub const GPU_IDLE_W: f64 = 50.0;
/// Additional draw while the GPU is driving PCIe/NVLink traffic, watts.
pub const GPU_COMM_ACTIVE_W: f64 = 40.0;
/// Additional draw while the GPU is computing, watts.
pub const GPU_COMPUTE_ACTIVE_W: f64 = 11.0;
/// Additional draw while the GPU spin-waits on CPU-resident work —
/// framework synchronisation keeps a kernel/stream polling loop hot, so
/// waiting is far from free (this is the bulk of the baseline's extra
/// draw the paper attributes to communication-heavy operation).
pub const GPU_SPIN_WAIT_W: f64 = 16.0;

/// Average per-GPU power over a training timeline. CPU-resident seconds
/// (recorded by the baseline step model) draw spin-wait power; transfer
/// and collective phases draw communication power; dense phases draw
/// compute power.
pub fn average_gpu_power(timeline: &Timeline) -> f64 {
    let total = timeline.total();
    if total <= 0.0 {
        return GPU_IDLE_W;
    }
    let comm = timeline.get(Phase::Transfer)
        + timeline.get(Phase::AllReduce)
        + timeline.get(Phase::EmbedSync);
    // Compute the GPU performs itself. EmbedForward/Optimizer may run on
    // either device; they are attributed by the trainer when it builds the
    // timeline (CPU-resident phases land in the same Phase slots but the
    // GPU idles through them, so we weight them at idle). Dense phases are
    // always GPU-resident.
    let gpu_compute = timeline.get(Phase::DenseForward) + timeline.get(Phase::Backward);
    let f_comm = comm / total;
    let f_compute = gpu_compute / total;
    let f_spin = timeline.cpu_resident() / total;
    GPU_IDLE_W
        + GPU_COMM_ACTIVE_W * f_comm
        + GPU_COMPUTE_ACTIVE_W * f_compute
        + GPU_SPIN_WAIT_W * f_spin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_is_idle() {
        assert_eq!(average_gpu_power(&Timeline::new()), GPU_IDLE_W);
    }

    #[test]
    fn comm_heavy_draws_more_than_compute_heavy() {
        let mut comm = Timeline::new();
        comm.add(Phase::Transfer, 1.0);
        let mut compute = Timeline::new();
        compute.add(Phase::DenseForward, 1.0);
        assert!(average_gpu_power(&comm) > average_gpu_power(&compute));
    }

    #[test]
    fn idle_heavy_timeline_approaches_idle_power() {
        let mut t = Timeline::new();
        t.add(Phase::Framework, 100.0);
        t.add(Phase::DenseForward, 1.0);
        let p = average_gpu_power(&t);
        assert!(p < GPU_IDLE_W + 1.0);
        assert!(p > GPU_IDLE_W);
    }

    #[test]
    fn power_lands_in_paper_range() {
        // A baseline-like mix: long CPU-resident phases (GPU spinning),
        // some transfer, some dense compute.
        let mut base = Timeline::new();
        base.add(Phase::EmbedForward, 4.0);
        base.add(Phase::Optimizer, 8.0);
        base.add_cpu_resident(12.0); // embeddings + sparse SGD on CPU
        base.add(Phase::Transfer, 2.0);
        base.add(Phase::DenseForward, 2.0);
        base.add(Phase::Backward, 4.0);
        base.add(Phase::Framework, 4.0);
        let p_base = average_gpu_power(&base);
        assert!((55.0..66.0).contains(&p_base), "baseline power {p_base} W");
        // A FAE-like mix draws less: no CPU-resident spinning, little comm.
        let mut fae = Timeline::new();
        fae.add(Phase::EmbedForward, 0.5);
        fae.add(Phase::DenseForward, 2.0);
        fae.add(Phase::Backward, 4.0);
        fae.add(Phase::Optimizer, 0.5);
        fae.add(Phase::Framework, 4.0);
        let p_fae = average_gpu_power(&fae);
        assert!(p_fae < p_base, "FAE {p_fae} W should draw less than baseline {p_base} W");
    }
}
