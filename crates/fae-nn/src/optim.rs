//! Optimizers.
//!
//! The paper's evaluation repeatedly stresses that the optimizer is a
//! "massively parallel operation" whose forced placement on the CPU (when
//! embeddings live there) dominates baseline time (Fig 14). The numeric
//! update itself is plain SGD, shared by dense layers (via
//! [`crate::layers::Layer::sgd_step`]) and by sparse embedding updates in
//! `fae-embed`. This module provides the standalone dense update used
//! where a `Layer` is not in play.

use crate::tensor::Tensor;

/// Plain stochastic gradient descent: `p -= lr * g`.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self { lr }
    }

    /// Applies one update to a dense parameter tensor.
    pub fn step_dense(&self, params: &mut Tensor, grads: &Tensor) {
        params.add_scaled(grads, -self.lr);
    }

    /// Applies one update to a flat parameter slice.
    pub fn step_slice(&self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "sgd slice length mismatch");
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_step_moves_against_gradient() {
        let sgd = Sgd::new(0.1);
        let mut p = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let g = Tensor::from_vec(1, 3, vec![10.0, 0.0, -10.0]);
        sgd.step_dense(&mut p, &g);
        assert_eq!(p.as_slice(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn slice_step_matches_dense() {
        let sgd = Sgd::new(0.5);
        let mut p = [4.0f32, -2.0];
        sgd.step_slice(&mut p, &[2.0, 2.0]);
        assert_eq!(p, [3.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimise f(p) = ||p - c||² — gradient descent must reach c.
        let sgd = Sgd::new(0.1);
        let target = [1.0f32, -2.0, 0.5];
        let mut p = [0.0f32; 3];
        for _ in 0..200 {
            let g: Vec<f32> = p.iter().zip(&target).map(|(&pi, &c)| 2.0 * (pi - c)).collect();
            sgd.step_slice(&mut p, &g);
        }
        for (pi, c) in p.iter().zip(&target) {
            assert!((pi - c).abs() < 1e-4);
        }
    }
}

/// SGD with classical momentum: `v = μ·v + g; p -= lr·v`.
#[derive(Clone, Debug)]
pub struct Momentum {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient `μ` in `[0, 1)`.
    pub mu: f32,
    velocity: Vec<f32>,
}

impl Momentum {
    /// Creates a momentum optimizer for `params` trainable scalars.
    pub fn new(lr: f32, mu: f32, params: usize) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        Self { lr, mu, velocity: vec![0.0; params] }
    }

    /// Applies one update to a flat parameter slice.
    pub fn step_slice(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "momentum slice length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "optimizer state size mismatch");
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(self.velocity.iter_mut()) {
            *v = self.mu * *v + g;
            *p -= self.lr * *v;
        }
    }
}

/// Adagrad: `s += g²; p -= lr·g / (sqrt(s) + ε)` — the dense variant of
/// the sparse optimizer DLRM ships with.
#[derive(Clone, Debug)]
pub struct Adagrad {
    /// Learning rate.
    pub lr: f32,
    /// Numerical-stability floor.
    pub eps: f32,
    accum: Vec<f32>,
}

impl Adagrad {
    /// Creates an Adagrad optimizer for `params` trainable scalars.
    pub fn new(lr: f32, params: usize) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self { lr, eps: 1e-8, accum: vec![0.0; params] }
    }

    /// Applies one update to a flat parameter slice.
    pub fn step_slice(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "adagrad slice length mismatch");
        assert_eq!(params.len(), self.accum.len(), "optimizer state size mismatch");
        for ((p, &g), s) in params.iter_mut().zip(grads).zip(self.accum.iter_mut()) {
            *s += g * g;
            *p -= self.lr * g / (s.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn momentum_accelerates_along_consistent_gradient() {
        // Under a constant gradient, momentum's effective step grows
        // towards lr/(1-μ), so it travels farther than plain SGD.
        let mut sgd_p = [0.0f32];
        let mut mom_p = [0.0f32];
        let sgd = Sgd::new(0.1);
        let mut mom = Momentum::new(0.1, 0.9, 1);
        for _ in 0..20 {
            sgd.step_slice(&mut sgd_p, &[1.0]);
            mom.step_slice(&mut mom_p, &[1.0]);
        }
        assert!(mom_p[0] < sgd_p[0], "momentum {} vs sgd {}", mom_p[0], sgd_p[0]);
    }

    #[test]
    fn momentum_with_mu_zero_equals_sgd() {
        let mut a = [3.0f32, -1.0];
        let mut b = a;
        Sgd::new(0.2).step_slice(&mut a, &[0.5, -0.5]);
        Momentum::new(0.2, 0.0, 2).step_slice(&mut b, &[0.5, -0.5]);
        assert_eq!(a, b);
    }

    #[test]
    fn adagrad_normalises_per_coordinate_scale() {
        // Two coordinates with 100x different gradient magnitude move the
        // same distance on the first step.
        let mut p = [0.0f32, 0.0];
        let mut ada = Adagrad::new(0.1, 2);
        ada.step_slice(&mut p, &[100.0, 1.0]);
        assert!((p[0] - p[1]).abs() < 1e-5, "steps differ: {p:?}");
    }

    #[test]
    fn adagrad_step_size_decays_with_accumulation() {
        let mut p = [0.0f32];
        let mut ada = Adagrad::new(0.1, 1);
        ada.step_slice(&mut p, &[1.0]);
        let first = -p[0];
        ada.step_slice(&mut p, &[1.0]);
        let second = -p[0] - first;
        assert!(second < first, "adagrad step grew: {first} then {second}");
    }

    #[test]
    fn both_converge_on_quadratic() {
        let target = 2.5f32;
        let mut mp = [0.0f32];
        let mut mom = Momentum::new(0.05, 0.9, 1);
        let mut ap = [0.0f32];
        let mut ada = Adagrad::new(0.5, 1);
        for _ in 0..300 {
            let gm = [2.0 * (mp[0] - target)];
            mom.step_slice(&mut mp, &gm);
            let ga = [2.0 * (ap[0] - target)];
            ada.step_slice(&mut ap, &ga);
        }
        assert!((mp[0] - target).abs() < 1e-3, "momentum ended at {}", mp[0]);
        assert!((ap[0] - target).abs() < 1e-2, "adagrad ended at {}", ap[0]);
    }
}
