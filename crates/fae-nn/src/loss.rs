//! Losses for click-through-rate training.
//!
//! DLRM and TBSM optimise binary cross-entropy over a sigmoid output; MSE
//! is provided for tests and the planted-model data generators.

use crate::tensor::Tensor;

/// Clamp predictions away from 0/1 so `ln` stays finite — the same guard
/// PyTorch's `BCELoss` applies (log clamped at -100).
const BCE_EPS: f32 = 1e-7;

/// Mean binary cross-entropy. `pred` must contain probabilities in (0, 1);
/// `target` contains 0/1 labels. Shapes must match.
pub fn bce_loss(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "bce shape mismatch");
    let n = pred.len() as f32;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| {
            let p = p.clamp(BCE_EPS, 1.0 - BCE_EPS);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        })
        .sum::<f32>()
        / n
}

/// Gradient of [`bce_loss`] with respect to `pred`.
pub fn bce_loss_backward(pred: &Tensor, target: &Tensor) -> Tensor {
    assert_eq!(pred.shape(), target.shape(), "bce shape mismatch");
    let n = pred.len() as f32;
    let mut out = Tensor::zeros(pred.rows(), pred.cols());
    for (o, (&p, &t)) in
        out.as_mut_slice().iter_mut().zip(pred.as_slice().iter().zip(target.as_slice()))
    {
        let p = p.clamp(BCE_EPS, 1.0 - BCE_EPS);
        *o = (-(t / p) + (1.0 - t) / (1.0 - p)) / n;
    }
    out
}

/// Mean squared error.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    pred.as_slice().iter().zip(target.as_slice()).map(|(&p, &t)| (p - t) * (p - t)).sum::<f32>() / n
}

/// Gradient of [`mse_loss`] with respect to `pred`.
pub fn mse_loss_backward(pred: &Tensor, target: &Tensor) -> Tensor {
    let n = pred.len() as f32;
    pred.sub(target).scale(2.0 / n)
}

/// Fraction of predictions on the correct side of 0.5 — the accuracy metric
/// reported in the paper's Table III.
pub fn binary_accuracy(pred: &Tensor, target: &Tensor) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "accuracy shape mismatch");
    let correct = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .filter(|(&p, &t)| (p >= 0.5) == (t >= 0.5))
        .count();
    correct as f64 / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t1(v: &[f32]) -> Tensor {
        Tensor::from_vec(1, v.len(), v.to_vec())
    }

    #[test]
    fn bce_perfect_prediction_is_near_zero() {
        let pred = t1(&[0.9999, 0.0001]);
        let tgt = t1(&[1.0, 0.0]);
        assert!(bce_loss(&pred, &tgt) < 1e-3);
    }

    #[test]
    fn bce_coinflip_is_ln2() {
        let pred = t1(&[0.5, 0.5]);
        let tgt = t1(&[1.0, 0.0]);
        assert!((bce_loss(&pred, &tgt) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn bce_handles_saturated_predictions() {
        let pred = t1(&[1.0, 0.0]);
        let tgt = t1(&[0.0, 1.0]);
        let l = bce_loss(&pred, &tgt);
        assert!(l.is_finite() && l > 10.0);
        assert!(bce_loss_backward(&pred, &tgt).all_finite());
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let pred = t1(&[0.3, 0.7, 0.5]);
        let tgt = t1(&[1.0, 0.0, 1.0]);
        let g = bce_loss_backward(&pred, &tgt);
        let eps = 1e-3;
        for i in 0..3 {
            let mut pp = pred.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = pred.clone();
            pm.as_mut_slice()[i] -= eps;
            let numeric = (bce_loss(&pp, &tgt) - bce_loss(&pm, &tgt)) / (2.0 * eps);
            assert!(
                (g.as_slice()[i] - numeric).abs() / numeric.abs().max(1.0) < 1e-2,
                "grad {} vs numeric {}",
                g.as_slice()[i],
                numeric
            );
        }
    }

    #[test]
    fn mse_and_gradient() {
        let pred = t1(&[1.0, 3.0]);
        let tgt = t1(&[0.0, 1.0]);
        assert!((mse_loss(&pred, &tgt) - 2.5).abs() < 1e-6);
        let g = mse_loss_backward(&pred, &tgt);
        assert_eq!(g.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_counts_thresholded_matches() {
        let pred = t1(&[0.9, 0.2, 0.6, 0.4]);
        let tgt = t1(&[1.0, 0.0, 0.0, 1.0]);
        assert!((binary_accuracy(&pred, &tgt) - 0.5).abs() < 1e-12);
    }
}
