//! Sequential multi-layer perceptron, mirroring the paper's `bottom MLP`
//! and `top MLP` blocks (Table I gives their layer widths).

use rand::Rng;

use crate::layers::{Layer, Linear, Relu, Sigmoid};
use crate::tensor::Tensor;

/// Activation applied after the final linear layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// ReLU — used by bottom MLPs whose output feeds the interaction op.
    Relu,
    /// Sigmoid — used by top MLPs producing the CTR probability.
    Sigmoid,
    /// Identity — raw logits (used by attention scores).
    None,
}

/// A stack of `Linear` + ReLU layers with a configurable final activation.
///
/// ```
/// use fae_nn::{Activation, Layer, Mlp, Tensor};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut mlp = Mlp::new(&[4, 8, 1], Activation::Sigmoid, &mut rng);
/// let y = mlp.forward(&Tensor::zeros(2, 4));
/// assert_eq!(y.shape(), (2, 1));
/// assert!(y.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
/// ```
pub struct Mlp {
    layers: Vec<Box<dyn Layer>>,
    sizes: Vec<usize>,
}

impl Mlp {
    /// Builds an MLP from consecutive layer widths, e.g. `[13, 512, 256,
    /// 64, 16]` for DLRM-Kaggle's bottom MLP. Hidden layers use ReLU; the
    /// output uses `final_act`.
    pub fn new(sizes: &[usize], final_act: Activation, rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "MLP needs at least input and output widths");
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        for w in sizes.windows(2).enumerate() {
            let (i, pair) = w;
            layers.push(Box::new(Linear::new(pair[0], pair[1], rng)));
            let is_last = i == sizes.len() - 2;
            if !is_last {
                layers.push(Box::new(Relu::new()));
            } else {
                match final_act {
                    Activation::Relu => layers.push(Box::new(Relu::new())),
                    Activation::Sigmoid => layers.push(Box::new(Sigmoid::new())),
                    Activation::None => {}
                }
            }
        }
        Self { layers, sizes: sizes.to_vec() }
    }

    /// Layer widths the MLP was built with.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Input width.
    pub fn in_width(&self) -> usize {
        self.sizes[0]
    }

    /// Output width.
    pub fn out_width(&self) -> usize {
        // fae-lint: allow(no-panic, reason = "Mlp::new asserts sizes.len() >= 2, so sizes is never empty")
        *self.sizes.last().unwrap()
    }
}

impl Layer for Mlp {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    fn sgd_step(&mut self, lr: f32) {
        for l in &mut self.layers {
            l.sgd_step(lr);
        }
    }

    fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        for l in &self.layers {
            l.write_params(out);
        }
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let mut off = 0;
        for l in &mut self.layers {
            off += l.read_params(&src[off..]);
        }
        off
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        for l in &self.layers {
            l.write_grads(out);
        }
    }

    fn read_grads(&mut self, src: &[f32]) -> usize {
        let mut off = 0;
        for l in &mut self.layers {
            off += l.read_grads(&src[off..]);
        }
        off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff_check;
    use crate::loss::{mse_loss, mse_loss_backward};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_param_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&[13, 512, 256, 64, 16], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_width(), 13);
        assert_eq!(mlp.out_width(), 16);
        let expected = 13 * 512 + 512 + 512 * 256 + 256 + 256 * 64 + 64 + 64 * 16 + 16;
        assert_eq!(mlp.param_count(), expected);
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[8, 4, 1], Activation::Sigmoid, &mut rng);
        let x = Tensor::from_fn(5, 8, |r, c| ((r + c) % 3) as f32);
        let y = mlp.forward(&x);
        assert_eq!(y.shape(), (5, 1));
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn gradcheck_small_mlp() {
        let mut rng = StdRng::seed_from_u64(3);
        finite_diff_check(
            || Mlp::new(&[3, 5, 2], Activation::None, &mut StdRng::seed_from_u64(11)),
            3,
            3,
            &mut rng,
            3e-2,
        );
    }

    #[test]
    fn param_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Mlp::new(&[4, 6, 2], Activation::Sigmoid, &mut rng);
        let mut b = Mlp::new(&[4, 6, 2], Activation::Sigmoid, &mut rng);
        let mut buf = Vec::new();
        a.write_params(&mut buf);
        assert_eq!(b.read_params(&buf), buf.len());
        let mut buf2 = Vec::new();
        b.write_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn grad_round_trip_reproduces_sgd_step() {
        // Loading written-out gradients into a twin and stepping must give
        // bit-identical parameters — the engine's reduction relies on it.
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = Mlp::new(&[3, 4, 1], Activation::Sigmoid, &mut rng);
        let mut b = Mlp::new(&[3, 4, 1], Activation::Sigmoid, &mut rng);
        let mut params = Vec::new();
        a.write_params(&mut params);
        b.read_params(&params);
        let x = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.1);
        a.zero_grad();
        let y = a.forward(&x);
        a.backward(&y);
        let mut grads = Vec::new();
        a.write_grads(&mut grads);
        assert_eq!(grads.len(), a.param_count());
        b.zero_grad();
        assert_eq!(b.read_grads(&grads), grads.len());
        a.sgd_step(0.1);
        b.sgd_step(0.1);
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        a.write_params(&mut pa);
        b.write_params(&mut pb);
        assert_eq!(pa, pb);
    }

    #[test]
    fn sgd_learns_xor_like_separation() {
        // Quick end-to-end sanity check: an MLP can fit a small nonlinear
        // function with plain SGD, proving forward/backward/step compose.
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(&[2, 16, 1], Activation::Sigmoid, &mut rng);
        let x = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let t = Tensor::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut last = f32::INFINITY;
        for _ in 0..3000 {
            mlp.zero_grad();
            let y = mlp.forward(&x);
            last = mse_loss(&y, &t);
            let g = mse_loss_backward(&y, &t);
            mlp.backward(&g);
            mlp.sgd_step(0.5);
        }
        assert!(last < 0.02, "XOR did not converge: final mse {last}");
    }
}
