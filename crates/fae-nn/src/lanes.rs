//! Manually 8-wide unrolled `f32` kernels for the hot numeric loops.
//!
//! The workspace forbids `unsafe`, so there are no intrinsics here — just
//! fixed-width unrolls over `chunks_exact(8)` that the compiler can keep in
//! SIMD registers. Two families live side by side with *different*
//! bit-identity contracts (DESIGN.md §14):
//!
//! * **Elementwise** kernels ([`add_assign`], [`axpy`], [`scale_assign`])
//!   touch each element independently; unrolling changes no addition order,
//!   so results are bit-identical to the scalar loop they replace.
//! * **Reduction** kernels ([`dot`], [`sum_squares`]) keep 8 partial
//!   accumulators and fold them pairwise at the end. This *reorders* f32
//!   addition relative to a left-to-right scalar sum — the documented
//!   carve-out of DESIGN.md §14. Every digest/golden test in the workspace
//!   compares two runs of the *same* binary, so the contract that matters
//!   (run-to-run and serial-vs-parallel bit-identity) is preserved because
//!   every path shares these kernels.

/// In-place `dst[i] += src[i]`. Elementwise: bit-identical to the scalar
/// loop (no reassociation). Panics on length mismatch.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_assign length mismatch");
    // fae-lint: allow(float-fuse, reason = "elementwise, no f32 reassociation; DESIGN.md §14")
    let mut d = dst.chunks_exact_mut(8);
    // fae-lint: allow(float-fuse, reason = "elementwise, no f32 reassociation; DESIGN.md §14")
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] += sc[0];
        dc[1] += sc[1];
        dc[2] += sc[2];
        dc[3] += sc[3];
        dc[4] += sc[4];
        dc[5] += sc[5];
        dc[6] += sc[6];
        dc[7] += sc[7];
    }
    for (dv, &sv) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dv += sv;
    }
}

/// In-place `dst[i] += a * src[i]`. Elementwise: bit-identical to the
/// scalar loop. Panics on length mismatch.
pub fn axpy(dst: &mut [f32], a: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    // fae-lint: allow(float-fuse, reason = "elementwise, no f32 reassociation; DESIGN.md §14")
    let mut d = dst.chunks_exact_mut(8);
    // fae-lint: allow(float-fuse, reason = "elementwise, no f32 reassociation; DESIGN.md §14")
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] += a * sc[0];
        dc[1] += a * sc[1];
        dc[2] += a * sc[2];
        dc[3] += a * sc[3];
        dc[4] += a * sc[4];
        dc[5] += a * sc[5];
        dc[6] += a * sc[6];
        dc[7] += a * sc[7];
    }
    for (dv, &sv) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dv += a * sv;
    }
}

/// In-place `dst[i] *= s`. Elementwise: bit-identical to the scalar loop.
pub fn scale_assign(dst: &mut [f32], s: f32) {
    // fae-lint: allow(float-fuse, reason = "elementwise, no f32 reassociation; DESIGN.md §14")
    let mut d = dst.chunks_exact_mut(8);
    for dc in &mut d {
        dc[0] *= s;
        dc[1] *= s;
        dc[2] *= s;
        dc[3] *= s;
        dc[4] *= s;
        dc[5] *= s;
        dc[6] *= s;
        dc[7] *= s;
    }
    for dv in d.into_remainder() {
        *dv *= s;
    }
}

/// Dot product with 8 partial accumulators folded pairwise at the end.
///
/// This reorders f32 addition relative to a left-to-right scalar sum — the
/// DESIGN.md §14 carve-out. Panics on length mismatch.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f32; 8];
    // fae-lint: allow(float-fuse, reason = "8 partial sums reorder f32 addition; DESIGN.md §14")
    let mut ac = a.chunks_exact(8);
    // fae-lint: allow(float-fuse, reason = "8 partial sums reorder f32 addition; DESIGN.md §14")
    let mut bc = b.chunks_exact(8);
    for (x, y) in (&mut ac).zip(&mut bc) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
        acc[4] += x[4] * y[4];
        acc[5] += x[5] * y[5];
        acc[6] += x[6] * y[6];
        acc[7] += x[7] * y[7];
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Sum of squares with 8 partial accumulators folded pairwise at the end.
///
/// Reorders f32 addition (DESIGN.md §14 carve-out), like [`dot`].
pub fn sum_squares(x: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    // fae-lint: allow(float-fuse, reason = "8 partial sums reorder f32 addition; DESIGN.md §14")
    let mut xc = x.chunks_exact(8);
    for c in &mut xc {
        acc[0] += c[0] * c[0];
        acc[1] += c[1] * c[1];
        acc[2] += c[2] * c[2];
        acc[3] += c[3] * c[3];
        acc[4] += c[4] * c[4];
        acc[5] += c[5] * c[5];
        acc[6] += c[6] * c[6];
        acc[7] += c[7] * c[7];
    }
    let mut tail = 0.0f32;
    for &v in xc.remainder() {
        tail += v * v;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, salt: u32) -> Vec<f32> {
        (0..n)
            .map(|i| (((i as u32).wrapping_mul(2_654_435_761) ^ salt) % 1000) as f32 / 100.0 - 5.0)
            .collect()
    }

    #[test]
    fn add_assign_matches_scalar_bitwise() {
        for n in [0, 1, 7, 8, 9, 16, 23, 64] {
            let src = seq(n, 1);
            let mut a = seq(n, 2);
            let mut b = a.clone();
            add_assign(&mut a, &src);
            for (bv, &sv) in b.iter_mut().zip(&src) {
                *bv += sv;
            }
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn axpy_matches_scalar_bitwise() {
        for n in [0, 1, 7, 8, 9, 16, 23, 64] {
            let src = seq(n, 3);
            let mut a = seq(n, 4);
            let mut b = a.clone();
            axpy(&mut a, -0.37, &src);
            for (bv, &sv) in b.iter_mut().zip(&src) {
                *bv += -0.37 * sv;
            }
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn scale_assign_matches_scalar_bitwise() {
        for n in [0, 1, 7, 8, 9, 16, 23] {
            let mut a = seq(n, 5);
            let mut b = a.clone();
            scale_assign(&mut a, 0.25);
            for bv in &mut b {
                *bv *= 0.25;
            }
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn dot_close_to_scalar_and_deterministic() {
        for n in [0, 1, 7, 8, 9, 16, 23, 64, 100] {
            let a = seq(n, 6);
            let b = seq(n, 7);
            let scalar: f64 =
                a.iter().zip(&b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum::<f64>();
            let fast = dot(&a, &b);
            assert!((f64::from(fast) - scalar).abs() < 1e-2 * (1.0 + scalar.abs()), "n={n}");
            // Deterministic: the same inputs always give the same bits.
            assert_eq!(fast.to_bits(), dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn sum_squares_close_to_scalar() {
        for n in [0, 1, 7, 8, 9, 16, 23, 64] {
            let x = seq(n, 8);
            let scalar: f64 = x.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
            let fast = f64::from(sum_squares(&x));
            assert!((fast - scalar).abs() < 1e-2 * (1.0 + scalar), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
