//! Row-major 2-D `f32` tensor.
//!
//! Recommendation-model training only ever needs rank-2 tensors on the
//! dense path (`batch × features`), so the representation is a flat
//! `Vec<f32>` plus `(rows, cols)`. All shape mismatches are programmer
//! errors and panic with a descriptive message, matching the convention of
//! the rest of the workspace.

use crate::lanes;
use rayon::prelude::*;
use std::fmt;

/// Minimum `rows * cols * inner` product before matmul fans out to rayon.
/// Small matrices (the common case inside per-mini-batch layers) stay on
/// one thread to avoid scheduling overhead.
const PAR_MATMUL_THRESHOLD: usize = 64 * 64 * 64;

/// A dense, row-major, 2-D `f32` matrix.
///
/// ```
/// use fae_nn::Tensor;
/// let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// let b = a.transpose();                 // 3×2
/// let c = a.matmul(&b);                  // 2×2 Gram matrix
/// assert_eq!(c.get(0, 0), 14.0);         // 1+4+9
/// assert_eq!(c.shape(), (2, 2));
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a tensor where every element equals `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self { data: vec![v; rows * cols], rows, cols }
    }

    /// Builds a tensor from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { data, rows, cols }
    }

    /// Wraps an existing buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length {} != {rows}x{cols}", data.len());
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable flat view of the underlying buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the underlying buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self (m×k) · rhs (k×n) -> m×n`.
    ///
    /// Uses the classic ikj loop order (streaming over `rhs` rows) and fans
    /// out over result rows with rayon once the work exceeds
    /// `PAR_MATMUL_THRESHOLD`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        let work = m * k * n;
        let kernel = |row: usize, out_row: &mut [f32]| {
            let a_row = &self.data[row * k..(row + 1) * k];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[i * n..(i + 1) * n];
                lanes::axpy(out_row, a, b_row);
            }
        };
        if work >= PAR_MATMUL_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(|(row, out_row)| kernel(row, out_row));
        } else {
            for (row, out_row) in out.chunks_mut(n).enumerate() {
                kernel(row, out_row);
            }
        }
        Tensor { data: out, rows: m, cols: n }
    }

    /// Matrix product `selfᵀ (m×k from k×m) · rhs (k×n) -> m×n`, without
    /// materializing the transpose.
    ///
    /// Bit-identical to `self.transpose().matmul(rhs)` on one thread: for
    /// every output element the contributions accumulate over the shared
    /// dimension in the same ascending order, and the same zero-skip
    /// applies, so no f32 addition is reordered. Used by the backward pass
    /// for weight gradients (`dW = xᵀ · dY`), where the transpose copy of
    /// the activation matrix was pure overhead.
    pub fn matmul_transpose_lhs(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_transpose_lhs shape mismatch: {}x{} ᵀ· {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        for b in 0..k {
            let x_row = self.row(b);
            let g_row = rhs.row(b);
            for (i, &a) in x_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                lanes::axpy(&mut out[i * n..(i + 1) * n], a, g_row);
            }
        }
        Tensor { data: out, rows: m, cols: n }
    }

    /// Matrix product `self (m×k) · rhsᵀ (k×n from n×k) -> m×n`.
    ///
    /// Bit-identical to `self.matmul(&rhs.transpose())` — it *is* that,
    /// spelled as one call. Materializing the (small) transposed weight
    /// matrix keeps [`matmul`](Tensor::matmul)'s zero-skip over `self`'s
    /// elements, which matters because the backward pass feeds this
    /// post-ReLU gradients (`dX = dY · Wᵀ`) that are mostly zeros; a
    /// row-dot formulation without the skip measures ~25% slower
    /// end-to-end. The transpose copy is O(k·n) against the O(m·k·n)
    /// product, so it is noise by comparison.
    pub fn matmul_transpose_rhs(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose_rhs shape mismatch: {}x{} · {}x{}ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        self.matmul(&rhs.transpose())
    }

    /// Resets every element to zero in place, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum; shapes must match.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise difference; shapes must match.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product; shapes must match.
    pub fn hadamard(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// In-place `self += scale * rhs`; shapes must match.
    pub fn add_scaled(&mut self, rhs: &Tensor, scale: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        lanes::axpy(&mut self.data, scale, &rhs.data);
    }

    /// Returns `self * s` elementwise.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&v| f(v)).collect(), rows: self.rows, cols: self.cols }
    }

    /// Adds a length-`cols` bias vector to every row.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Tensor {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for row in out.data.chunks_mut(self.cols) {
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
        out
    }

    /// Sums over rows, producing a length-`cols` vector (used for bias
    /// gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.cols];
        for row in self.data.chunks(self.cols) {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        acc
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Concatenates tensors horizontally (same number of rows).
    pub fn hcat(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "hcat of zero tensors");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "hcat row-count mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let dst = out.row_mut(r);
            let mut off = 0;
            for p in parts {
                dst[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Splits the tensor horizontally into parts of the given widths.
    pub fn hsplit(&self, widths: &[usize]) -> Vec<Tensor> {
        assert_eq!(widths.iter().sum::<usize>(), self.cols, "hsplit widths must sum to cols");
        let mut outs: Vec<Tensor> = widths.iter().map(|&w| Tensor::zeros(self.rows, w)).collect();
        for r in 0..self.rows {
            let src = self.row(r);
            let mut off = 0;
            for (t, &w) in outs.iter_mut().zip(widths) {
                t.row_mut(r).copy_from_slice(&src[off..off + w]);
                off += w;
            }
        }
        outs
    }

    /// Maximum absolute element (0.0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
        Tensor {
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn zeros_shape_and_values() {
        let z = Tensor::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Tensor::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
        assert_eq!(i.matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn large_matmul_matches_small_path() {
        // Force the rayon path and compare against a scalar reference.
        let n = 80;
        let a = Tensor::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 7) as f32 - 3.0);
        let b = Tensor::from_fn(n, n, |r, c| ((r * 13 + c * 5) % 5) as f32 - 2.0);
        let c = a.matmul(&b);
        for r in (0..n).step_by(17) {
            for cc in (0..n).step_by(13) {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += a.get(r, k) * b.get(k, cc);
                }
                assert!((c.get(r, cc) - acc).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn matmul_transpose_lhs_is_bitwise_transpose_matmul() {
        let x = Tensor::from_fn(9, 5, |r, c| ((r * 7 + c * 3) % 11) as f32 / 3.0 - 1.5);
        let g = Tensor::from_fn(9, 4, |r, c| ((r * 5 + c * 13) % 9) as f32 / 4.0 - 1.0);
        let fused = x.matmul_transpose_lhs(&g);
        let reference = x.transpose().matmul(&g);
        assert_eq!(fused.as_slice(), reference.as_slice());
    }

    #[test]
    fn matmul_transpose_rhs_is_bitwise_transpose_matmul() {
        let g = Tensor::from_fn(6, 10, |r, c| ((r * 3 + c * 7) % 13) as f32 / 5.0 - 1.2);
        let w = Tensor::from_fn(4, 10, |r, c| ((r * 11 + c * 2) % 7) as f32 / 3.0 - 1.0);
        let fused = g.matmul_transpose_rhs(&w);
        let reference = g.matmul(&w.transpose());
        assert_eq!(fused.shape(), reference.shape());
        assert_eq!(fused.as_slice(), reference.as_slice());
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0; 4]);
        assert_eq!(a.shape(), (2, 2));
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose();
        assert_eq!(at.shape(), (3, 2));
        assert_eq!(at.get(2, 1), 6.0);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = t(1, 3, &[1.0, 2.0, 3.0]);
        let b = t(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = t(1, 2, &[1.0, 1.0]);
        let g = t(1, 2, &[2.0, 4.0]);
        a.add_scaled(&g, -0.5);
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn bias_broadcast_and_sum_rows() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let with_bias = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(with_bias.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
        assert_eq!(a.sum(), 10.0);
    }

    #[test]
    fn hcat_hsplit_round_trip() {
        let a = t(2, 1, &[1.0, 4.0]);
        let b = t(2, 2, &[2.0, 3.0, 5.0, 6.0]);
        let cat = Tensor::hcat(&[&a, &b]);
        assert_eq!(cat.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let parts = cat.hsplit(&[1, 2]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn max_abs_and_finiteness() {
        let a = t(1, 3, &[-5.0, 2.0, 3.0]);
        assert_eq!(a.max_abs(), 5.0);
        assert!(a.all_finite());
        let bad = t(1, 1, &[f32::NAN]);
        assert!(!bad.all_finite());
    }
}
