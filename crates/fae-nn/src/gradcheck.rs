//! Finite-difference gradient checking.
//!
//! Every differentiable module in the workspace is validated against
//! central finite differences. The scalar objective is `sum(layer(x))`,
//! whose analytic upstream gradient is all-ones, which keeps the checker
//! independent of any particular loss.

use rand::Rng;

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Relative error between an analytic and numeric derivative, guarded
/// against tiny denominators.
fn rel_err(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1e-3);
    (analytic - numeric).abs() / denom
}

/// Checks d `sum(layer(x))` / d `x` and d/d `params` for a freshly built
/// layer against central finite differences.
///
/// `make` must build the layer deterministically (same weights each call is
/// not required — only one instance is built). Panics with a descriptive
/// message when any derivative's relative error exceeds `tol`.
pub fn finite_diff_check<L: Layer>(
    make: impl FnOnce() -> L,
    batch: usize,
    width: usize,
    rng: &mut impl Rng,
    tol: f32,
) {
    const EPS: f32 = 1e-2;
    let mut layer = make();
    // Keep inputs away from 0 so kinked activations (ReLU) stay on one side
    // of the kink within the finite-difference window.
    let x = Tensor::from_fn(batch, width, |_, _| {
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * rng.gen_range(0.1..1.0f32)
    });

    // Analytic gradients.
    layer.zero_grad();
    let y = layer.forward(&x);
    let ones = Tensor::full(y.rows(), y.cols(), 1.0);
    let dx = layer.backward(&ones);

    // Numeric input gradient.
    for r in 0..batch {
        for c in 0..width {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + EPS);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - EPS);
            let fp = layer.forward(&xp).sum();
            let fm = layer.forward(&xm).sum();
            let numeric = (fp - fm) / (2.0 * EPS);
            let analytic = dx.get(r, c);
            assert!(
                rel_err(analytic, numeric) < tol,
                "input grad mismatch at ({r},{c}): analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    // Numeric parameter gradient. Re-run forward/backward on the original
    // input so the accumulated parameter gradients correspond to `x`.
    layer.zero_grad();
    let y = layer.forward(&x);
    let ones = Tensor::full(y.rows(), y.cols(), 1.0);
    let _ = layer.backward(&ones);
    // Recover analytic parameter gradients via an SGD probe: p' = p - 1 * g.
    let mut before = Vec::new();
    layer.write_params(&mut before);
    layer.sgd_step(1.0);
    let mut after = Vec::new();
    layer.write_params(&mut after);
    let analytic_pg: Vec<f32> = before.iter().zip(&after).map(|(b, a)| b - a).collect();
    layer.read_params(&before);

    for i in 0..before.len() {
        let mut pp = before.clone();
        pp[i] += EPS;
        layer.read_params(&pp);
        let fp = layer.forward(&x).sum();
        let mut pm = before.clone();
        pm[i] -= EPS;
        layer.read_params(&pm);
        let fm = layer.forward(&x).sum();
        let numeric = (fp - fm) / (2.0 * EPS);
        assert!(
            rel_err(analytic_pg[i], numeric) < tol,
            "param grad mismatch at {i}: analytic {} vs numeric {numeric}",
            analytic_pg[i]
        );
    }
    layer.read_params(&before);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_handles_tiny_values() {
        assert!(rel_err(0.0, 0.0) < 1e-9);
        assert!(rel_err(1.0, 1.0) < 1e-9);
        assert!(rel_err(1.0, 2.0) > 0.4);
    }
}
