//! Differentiable layers with explicit forward/backward passes.
//!
//! The training loop follows the classic layer-module design (as in the
//! original DLRM code before autograd tracing): `forward` caches whatever
//! the backward pass needs, `backward` consumes the upstream gradient and
//! returns the downstream one while accumulating parameter gradients, and
//! `sgd_step`/`zero_grad` manage the parameters.

use rand::Rng;

use crate::init;
use crate::tensor::Tensor;

/// A differentiable module operating on `batch × features` tensors.
pub trait Layer: Send {
    /// Computes the layer output and caches activations for `backward`.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Propagates `grad_out` (d loss / d output) backwards, accumulating
    /// parameter gradients and returning d loss / d input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Applies one SGD update `p -= lr * grad(p)` to the layer parameters.
    fn sgd_step(&mut self, lr: f32);

    /// Clears accumulated parameter gradients.
    fn zero_grad(&mut self);

    /// Number of trainable scalars.
    fn param_count(&self) -> usize;

    /// Flattens parameters into `out` (used by tests and synchronisation).
    fn write_params(&self, out: &mut Vec<f32>);

    /// Loads parameters from `src`, returning the number consumed.
    fn read_params(&mut self, src: &[f32]) -> usize;

    /// Flattens the accumulated parameter *gradients* into `out`, in the
    /// same order as [`write_params`](Layer::write_params). Parameter-free
    /// layers write nothing. Used by the parallel execution engine to
    /// reduce dense gradients across workers in a deterministic order.
    fn write_grads(&self, _out: &mut Vec<f32>) {}

    /// Overwrites the accumulated parameter gradients from `src` (same
    /// layout as [`write_grads`](Layer::write_grads)), returning the
    /// number of scalars consumed. A subsequent
    /// [`sgd_step`](Layer::sgd_step) then applies exactly the loaded
    /// gradient, which is how every replica applies the identical reduced
    /// gradient bit-for-bit.
    fn read_grads(&mut self, _src: &[f32]) -> usize {
        0
    }
}

/// Fully-connected layer: `y = x · W + b` with `W: in × out`.
pub struct Linear {
    w: Tensor,
    b: Vec<f32>,
    grad_w: Tensor,
    grad_b: Vec<f32>,
    cached_x: Option<Tensor>,
}

impl Linear {
    /// Creates a Xavier-initialised linear layer.
    pub fn new(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        Self {
            w: init::xavier_uniform(fan_in, fan_out, rng),
            b: vec![0.0; fan_out],
            grad_w: Tensor::zeros(fan_in, fan_out),
            grad_b: vec![0.0; fan_out],
            cached_x: None,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// Immutable view of the weight matrix (for tests / inspection).
    pub fn weights(&self) -> &Tensor {
        &self.w
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.cols(),
            self.w.rows(),
            "Linear input width {} != fan_in {}",
            x.cols(),
            self.w.rows()
        );
        self.cached_x = Some(x.clone());
        x.matmul(&self.w).add_row_broadcast(&self.b)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // fae-lint: allow(no-panic, reason = "forward-before-backward is a call-order contract; fabricating a gradient here would corrupt training silently")
        let x = self.cached_x.as_ref().expect("Linear::backward called before forward");
        // dW = xᵀ · g, db = Σ_rows g, dx = g · Wᵀ. The dW product runs
        // transpose-free (no per-step copy of the large activation
        // matrix); the dx product transposes the small weight matrix so
        // the zero-skip over the post-ReLU-sparse gradient still applies
        // (see Tensor::matmul_transpose_{lhs,rhs}).
        self.grad_w.add_scaled(&x.matmul_transpose_lhs(grad_out), 1.0);
        for (gb, s) in self.grad_b.iter_mut().zip(grad_out.sum_rows()) {
            *gb += s;
        }
        grad_out.matmul_transpose_rhs(&self.w)
    }

    fn sgd_step(&mut self, lr: f32) {
        self.w.add_scaled(&self.grad_w, -lr);
        for (b, &g) in self.b.iter_mut().zip(&self.grad_b) {
            *b -= lr * g;
        }
    }

    fn zero_grad(&mut self) {
        self.grad_w.fill_zero();
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let wn = self.w.len();
        let bn = self.b.len();
        self.w.as_mut_slice().copy_from_slice(&src[..wn]);
        self.b.copy_from_slice(&src[wn..wn + bn]);
        wn + bn
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_w.as_slice());
        out.extend_from_slice(&self.grad_b);
    }

    fn read_grads(&mut self, src: &[f32]) -> usize {
        let wn = self.grad_w.len();
        let bn = self.grad_b.len();
        self.grad_w.as_mut_slice().copy_from_slice(&src[..wn]);
        self.grad_b.copy_from_slice(&src[wn..wn + bn]);
        wn + bn
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    cached_x: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_x = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // fae-lint: allow(no-panic, reason = "forward-before-backward is a call-order contract; fabricating a gradient here would corrupt training silently")
        let x = self.cached_x.as_ref().expect("Relu::backward called before forward");
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        grad_out.hadamard(&mask)
    }

    fn sgd_step(&mut self, _lr: f32) {}
    fn zero_grad(&mut self) {}
    fn param_count(&self) -> usize {
        0
    }
    fn write_params(&self, _out: &mut Vec<f32>) {}
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }
}

/// Logistic sigmoid, used as the final CTR-prediction activation.
#[derive(Default)]
pub struct Sigmoid {
    cached_y: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scalar logistic function.
#[inline]
pub fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = x.map(sigmoid);
        self.cached_y = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // fae-lint: allow(no-panic, reason = "forward-before-backward is a call-order contract; fabricating a gradient here would corrupt training silently")
        let y = self.cached_y.as_ref().expect("Sigmoid::backward called before forward");
        let dy = y.map(|v| v * (1.0 - v));
        grad_out.hadamard(&dy)
    }

    fn sgd_step(&mut self, _lr: f32) {}
    fn zero_grad(&mut self) {}
    fn param_count(&self) -> usize {
        0
    }
    fn write_params(&self, _out: &mut Vec<f32>) {}
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff_check;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(2, 2, &mut rng);
        // Overwrite with known weights: W = [[1,2],[3,4]], b = [10, 20].
        l.read_params(&[1.0, 2.0, 3.0, 4.0, 10.0, 20.0]);
        let x = Tensor::from_vec(1, 2, vec![1.0, 1.0]);
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[14.0, 26.0]);
    }

    #[test]
    fn linear_param_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Linear::new(3, 4, &mut rng);
        let mut b = Linear::new(3, 4, &mut rng);
        let mut buf = Vec::new();
        a.write_params(&mut buf);
        assert_eq!(buf.len(), a.param_count());
        let consumed = b.read_params(&buf);
        assert_eq!(consumed, buf.len());
        let mut buf2 = Vec::new();
        b.write_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let y = r.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        let g = r.backward(&Tensor::full(1, 4, 1.0));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sigmoid_output_range_and_gradient_peak() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        let y = s.forward(&x);
        assert!(y.as_slice()[0] < 1e-4);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-4);
        let g = s.backward(&Tensor::full(1, 3, 1.0));
        // Sigmoid gradient maxes at 0.25 at x = 0.
        assert!((g.as_slice()[1] - 0.25).abs() < 1e-6);
        assert!(g.as_slice()[0] < g.as_slice()[1]);
    }

    #[test]
    fn linear_gradcheck_weights_and_input() {
        let mut rng = StdRng::seed_from_u64(3);
        finite_diff_check(
            || Linear::new(4, 3, &mut StdRng::seed_from_u64(9)),
            3,
            4,
            &mut rng,
            2e-2,
        );
    }

    #[test]
    fn relu_gradcheck() {
        let mut rng = StdRng::seed_from_u64(4);
        finite_diff_check(Relu::new, 5, 5, &mut rng, 2e-2);
    }

    #[test]
    fn sigmoid_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        finite_diff_check(Sigmoid::new, 4, 4, &mut rng, 2e-2);
    }
}
