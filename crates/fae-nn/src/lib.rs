//! # fae-nn — minimal CPU neural-network substrate
//!
//! The FAE paper trains recommendation models whose dense parts are plain
//! multi-layer perceptrons (plus an attention head in TBSM). This crate
//! provides the complete numeric substrate those models need, in pure Rust:
//!
//! * [`Tensor`] — a row-major 2-D `f32` matrix with the linear-algebra ops
//!   used by MLP training (matmul, transpose, broadcast bias, Hadamard),
//! * [`lanes`] — manually 8-wide unrolled `f32` kernels (`axpy`, `dot`,
//!   `sum_squares`, …) shared by the matmul inner loops, the interaction
//!   head, and the sparse-embedding update path (DESIGN.md §14),
//! * [`layers`] — differentiable layers ([`layers::Linear`],
//!   [`layers::Relu`], [`layers::Sigmoid`]) with explicit forward/backward,
//! * [`Mlp`] — a sequential container mirroring the paper's
//!   `bottom MLP` / `top MLP` blocks,
//! * [`loss`] — binary cross-entropy (the click-through-rate objective of
//!   DLRM/TBSM) and MSE,
//! * [`optim::Sgd`] — the stochastic-gradient-descent optimizer whose
//!   CPU-vs-GPU placement is one of the paper's headline costs (Fig 14),
//! * [`gradcheck`] — finite-difference gradient checking used throughout
//!   the test suites.
//!
//! Everything is deterministic given a seed; no threads are spawned except
//! inside matmul for large matrices (via rayon).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod gradcheck;
pub mod init;
pub mod lanes;
pub mod layers;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod tensor;

pub use layers::{Layer, Linear, Relu, Sigmoid};
pub use loss::{bce_loss, bce_loss_backward, mse_loss, mse_loss_backward};
pub use mlp::{Activation, Mlp};
pub use optim::{Adagrad, Momentum, Sgd};
pub use tensor::Tensor;
