//! Parameter initialisation.
//!
//! DLRM's reference implementation initialises dense layers with
//! Xavier/Glorot-uniform weights and zero biases; embedding rows use a
//! uniform range scaled by row count. Both are reproduced here with
//! deterministic seeding so every experiment in the repo is replayable.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot-uniform initialisation for a `fan_in × fan_out` weight
/// matrix: `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit))
}

/// Uniform initialisation in `(-scale, scale)`, used for embedding rows
/// (DLRM uses `scale = 1/sqrt(num_rows)`).
pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit_and_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = xavier_uniform(64, 32, &mut r1);
        let b = xavier_uniform(64, 32, &mut r2);
        assert_eq!(a, b);
        let limit = (6.0f32 / 96.0).sqrt();
        assert!(a.as_slice().iter().all(|v| v.abs() < limit));
        // Not degenerate: values actually vary.
        assert!(a.max_abs() > limit / 10.0);
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = uniform(100, 8, 0.05, &mut rng);
        assert!(e.as_slice().iter().all(|v| v.abs() < 0.05));
    }
}
