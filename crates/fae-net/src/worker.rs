//! The worker node: bootstraps a bit-identical replica from the
//! coordinator's `Welcome`, then serves `Task` / `Apply` / `HotBagSync`
//! / `Heartbeat` frames until shutdown, crash injection, or link loss.
//!
//! # Bit-identical bootstrap
//!
//! A worker never receives "most of" the model. The `Welcome` carries
//! the training seed and workload spec; the worker replays the exact
//! model-construction sequence the coordinator ran (`StdRng` from the
//! seed, dense model, then master embeddings — same order, same RNG
//! stream), then fast-forwards the dense parameters from the snapshot in
//! the frame and overlays the shipped hot rows. From that point on,
//! every `Apply` it admits is the same reduced gradient the coordinator
//! applied locally, so the replica tracks the primary bit for bit.
//!
//! # Idempotency
//!
//! State-mutating frames (`Apply`, `HotBagSync`) pass through the
//! epoch/sequence [`Ledger`]; duplicates re-acknowledge without
//! re-applying, stale-epoch traffic is dropped. `Task` frames are pure
//! recomputation and need no gating.
//!
//! # Elasticity
//!
//! [`run_node`] supervises [`run_worker`]: an injected crash or a lost
//! link leads to reconnect-with-backoff, and the rejoin handshake
//! (`Hello` → fresh `Welcome`) rebuilds the replica from current state.

use std::net::TcpStream;
use std::time::Duration;

use fae_core::exec::compute_shard;
use fae_core::faults::{FaultInjector, FaultKind, FaultPlan};
use fae_core::replicator::HotEmbeddings;
use fae_core::trainer::AnyModel;
use fae_data::WorkloadSpec;
use fae_embed::HotColdPartition;
use fae_models::{EmbeddingSource, MasterEmbeddings, RecModel};
use fae_telemetry::{JournalEvent, StepMode, TaggedEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::deadline::{dial, recv_frame, send_frame};
use crate::ledger::{Admit, Ledger};
use crate::wire::{Frame, HotEntry, Message, NetError};
use crate::NetConfig;

/// Why [`run_worker`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerExit {
    /// The coordinator said `Shutdown`: the run is over.
    Finished,
    /// The fault plan scheduled this node's crash: the supervisor should
    /// restart and rejoin with the plan disarmed.
    CrashInjected,
}

/// Everything a node process needs to join a run.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Coordinator address, e.g. `127.0.0.1:7431`.
    pub addr: String,
    /// This node's stable identity (shard index), `0..workers`.
    pub node_id: u32,
    /// Total worker count (for fault-victim selection).
    pub workers: u32,
    /// Timeouts, retry and reconnect policy.
    pub net: NetConfig,
    /// The same seeded fault plan the coordinator runs: both sides
    /// derive the same crash victims without any extra coordination.
    pub plan: FaultPlan,
}

/// The worker's own journal: zero-charge `Mark` events tagged with the
/// node's journal identity (wire id + 1 — the coordinator is journal
/// node 0), encoded to JSONL lines at emission time. The buffer lives
/// in the [`run_node`] supervisor, not the serve loop, so marks survive
/// injected crashes and reconnects; the coordinator drains it with
/// `TelemetryPoll` and the per-line sequence numbers make retried
/// batches idempotent.
pub struct NodeJournal {
    node_id: u64,
    lines: Vec<String>,
}

impl NodeJournal {
    /// An empty journal for wire node `wire_node`.
    pub fn new(wire_node: u32) -> Self {
        Self { node_id: u64::from(wire_node) + 1, lines: Vec::new() }
    }

    /// Records one mark. Marks carry no simulated-time charge: all
    /// simulated seconds stay coordinator-charged, which is what keeps
    /// the merged per-phase invariant a pure node-0 property.
    fn mark(&mut self, step: u64, label: &str, detail: String) {
        let event = JournalEvent::Mark { step, label: label.into(), detail };
        let tagged = TaggedEvent { node_id: self.node_id, seq: self.lines.len() as u64, event };
        self.lines.push(tagged.to_line());
    }

    /// The reply to a poll asking for everything from `ack` on.
    fn batch_from(&self, ack: u64) -> (u64, String) {
        let start = (ack as usize).min(self.lines.len());
        (start as u64, self.lines[start..].join("\n"))
    }
}

/// The worker's replicated training state, built from a `Welcome`.
struct Replica {
    model: AnyModel,
    master: MasterEmbeddings,
    hot: Option<HotEmbeddings>,
    ledger: Ledger,
}

impl Replica {
    fn bootstrap(welcome: &Frame) -> Result<Self, NetError> {
        let Message::Welcome { seed, spec_json, partitions_json, dense, hot, .. } = &welcome.msg
        else {
            return Err(NetError::Protocol(format!(
                "expected welcome, got {}",
                welcome.msg.kind_name()
            )));
        };
        let spec = WorkloadSpec::from_json(spec_json)
            .map_err(|e| NetError::Protocol(format!("welcome spec: {e}")))?;
        // Replay the coordinator's exact construction order so the RNG
        // stream — and therefore every parameter — matches bitwise.
        let mut rng = StdRng::seed_from_u64(*seed);
        let mut model = AnyModel::from_spec(&spec, &mut rng);
        let mut master = MasterEmbeddings::from_spec(&spec, &mut rng);
        model.read_params(dense);
        apply_entries(&mut master, hot);
        let hot_bags = if partitions_json.is_empty() {
            None
        } else {
            let partitions: Vec<HotColdPartition> = serde_json::from_str(partitions_json)
                .map_err(|e| NetError::Protocol(format!("welcome partitions: {e}")))?;
            Some(HotEmbeddings::build(&master, partitions))
        };
        Ok(Self { model, master, hot: hot_bags, ledger: Ledger::new(welcome.epoch) })
    }
}

/// Overlays shipped hot rows onto the master tables, bounds-checked:
/// a corrupt-but-CRC-valid frame must not be able to panic the node.
fn apply_entries(master: &mut MasterEmbeddings, entries: &[HotEntry]) {
    // Row-level writes work in both storage modes — no whole-table view
    // needed, so a tiered master degrades to requantized cold writes
    // instead of panicking.
    for e in entries {
        let t = e.table as usize;
        if t < master.num_tables()
            && (e.row as usize) < master.rows_in(t)
            && e.values.len() == master.dim()
        {
            master.set_row(t, e.row, &e.values);
        }
    }
}

/// Connects, joins, and serves until shutdown / crash injection / link
/// error. The injector is threaded in from the supervisor so a restart
/// can disarm it (a crashed node must not re-crash on replayed steps).
/// `joined` is set once the Welcome handshake completes, so the
/// supervisor can tell a node that never reached the coordinator from
/// one whose coordinator has since gone away.
pub fn run_worker(
    cfg: &NodeConfig,
    injector: &mut FaultInjector,
    joined: &mut bool,
    journal: &mut NodeJournal,
) -> Result<WorkerExit, NetError> {
    let mut stream = dial(&cfg.addr, cfg.net.connect_timeout_ms)?;
    let hello = Frame { node: cfg.node_id, epoch: 0, seq: 0, step: 0, msg: Message::Hello };
    send_frame(&mut stream, &hello, cfg.net.write_timeout_ms)?;
    let welcome = recv_frame(&mut stream, cfg.net.welcome_timeout_ms)?;
    let mut replica = Replica::bootstrap(&welcome)?;
    journal.mark(welcome.step, if *joined { "rejoin" } else { "join" }, String::new());
    *joined = true;
    serve(cfg, injector, &mut stream, &mut replica, journal)
}

/// The request/reply serve loop.
fn serve(
    cfg: &NodeConfig,
    injector: &mut FaultInjector,
    stream: &mut TcpStream,
    replica: &mut Replica,
    journal: &mut NodeJournal,
) -> Result<WorkerExit, NetError> {
    let mut tasks: u64 = 0;
    loop {
        let frame = match recv_frame(stream, cfg.net.read_timeout_ms) {
            Ok(f) => f,
            // Quiet link (coordinator busy on a cold phase): keep waiting.
            Err(NetError::Timeout(_)) => continue,
            Err(e) => return Err(e),
        };
        if matches!(frame.msg, Message::Shutdown) {
            let _ = reply(stream, &frame, Message::Ack, cfg.net.write_timeout_ms);
            return Ok(WorkerExit::Finished);
        }
        // The crash fault fires on the step stamped into the incoming
        // frame — the same clock the coordinator's own injector reads —
        // and only on the deterministically chosen victim.
        if let Some(f) = injector.fire(FaultKind::WorkerCrash, frame.step) {
            if injector.variation(&f, u64::from(cfg.workers.max(1))) == u64::from(cfg.node_id) {
                journal.mark(frame.step, "crash-inject", String::new());
                return Ok(WorkerExit::CrashInjected);
            }
        }
        if matches!(frame.msg, Message::Task { .. }) {
            tasks += 1;
            if tasks.is_multiple_of(8) {
                journal.mark(frame.step, "task", format!("served={tasks}"));
            }
        }
        let msg = handle(&frame, replica, journal);
        if let Some(msg) = msg {
            // A failed reply means the link is gone mid-exchange; the
            // supervisor reconnects and the coordinator's retry path
            // re-ships whatever was in flight.
            reply(stream, &frame, msg, cfg.net.write_timeout_ms)?;
        }
    }
}

/// Computes the reply for one admitted frame; `None` means drop it.
fn handle(frame: &Frame, replica: &mut Replica, journal: &NodeJournal) -> Option<Message> {
    match &frame.msg {
        Message::Heartbeat => Some(Message::HeartbeatAck),
        Message::TelemetryPoll { ack } => {
            // Pure read: resend-from-ack means a retried poll re-ships
            // the same suffix, and the coordinator's ship ledger drops
            // the duplicated prefix. No ledger gating needed.
            let (from, events_jsonl) = journal.batch_from(*ack);
            Some(Message::Telemetry { from, events_jsonl })
        }
        Message::Task { total, mode, shard } => {
            if shard.is_empty() {
                return Some(Message::Ack);
            }
            match (mode, replica.hot.as_ref()) {
                (StepMode::Hot, Some(hot)) => {
                    let out = compute_shard(&mut replica.model, hot, shard, *total as usize);
                    Some(Message::Grads {
                        loss: out.loss,
                        samples: out.samples as u32,
                        dense: out.dense,
                        sparse: out.sparse,
                    })
                }
                // No current hot bags (or a cold task, which the
                // coordinator computes locally): decline with an Ack so
                // the coordinator falls back to its own replica instead
                // of waiting out the deadline.
                _ => Some(Message::Ack),
            }
        }
        Message::Apply { mode, lr, dense, sparse } => {
            match replica.ledger.admit(frame.epoch, frame.seq) {
                Admit::Stale => None,
                Admit::Duplicate => Some(Message::Ack),
                Admit::Fresh => {
                    replica.model.read_grads(dense);
                    replica.model.sgd_step(*lr);
                    if matches!(mode, StepMode::Hot) {
                        if let Some(hot) = replica.hot.as_ref() {
                            hot.apply_shared(sparse, *lr);
                        }
                    }
                    Some(Message::Ack)
                }
            }
        }
        Message::HotBagSync { partitions_json, hot } => {
            match replica.ledger.admit(frame.epoch, frame.seq) {
                Admit::Stale => None,
                Admit::Duplicate => Some(Message::Ack),
                Admit::Fresh => {
                    apply_entries(&mut replica.master, hot);
                    match serde_json::from_str::<Vec<HotColdPartition>>(partitions_json) {
                        Ok(partitions) => {
                            replica.hot = Some(HotEmbeddings::build(&replica.master, partitions));
                            Some(Message::Ack)
                        }
                        // Unparseable partitions: keep serving dense
                        // work, just decline hot shards from here on.
                        Err(_) => {
                            replica.hot = None;
                            Some(Message::Ack)
                        }
                    }
                }
            }
        }
        // Requests only a coordinator should originate.
        _ => None,
    }
}

fn reply(
    stream: &mut TcpStream,
    request: &Frame,
    msg: Message,
    write_timeout_ms: u64,
) -> Result<(), NetError> {
    let f = Frame {
        node: request.node,
        epoch: request.epoch,
        seq: request.seq,
        step: request.step,
        msg,
    };
    send_frame(stream, &f, write_timeout_ms)
}

/// Deterministic per-(node, attempt) jitter in `0..=ms/2` — SplitMix64
/// over the pair, so colliding restarts fan out without shared state.
fn jitter_ms(node_id: u32, attempt: u32, ms: u64) -> u64 {
    let mut z = (u64::from(node_id) << 32 | u64::from(attempt)).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    if ms == 0 {
        0
    } else {
        z % (ms / 2 + 1)
    }
}

/// True when the error means nothing is listening at the coordinator's
/// address any more, as opposed to a transient link failure worth
/// retrying against a live listener.
fn coordinator_gone(e: &NetError) -> bool {
    matches!(e, NetError::Io(io) if io.kind() == std::io::ErrorKind::ConnectionRefused)
}

/// The node supervisor: runs the worker, and on crash injection or link
/// loss reconnects with jittered exponential backoff (bounded by
/// `reconnect_attempts`). A `Finished` exit ends the process cleanly.
///
/// A node that was severed (partition, crash) near the end of a run may
/// find the coordinator gone before it can rejoin: the listener stays
/// open for the whole run, so a refused dial *after* a successful join
/// means the run completed without us — also a clean exit, not an
/// error. A refused dial before any join still retries, covering nodes
/// started ahead of the coordinator.
pub fn run_node(cfg: NodeConfig) -> Result<(), NetError> {
    let mut injector = FaultInjector::new(cfg.plan.clone());
    let mut attempt: u32 = 0;
    let mut joined = false;
    let mut journal = NodeJournal::new(cfg.node_id);
    loop {
        match run_worker(&cfg, &mut injector, &mut joined, &mut journal) {
            Ok(WorkerExit::Finished) => return Ok(()),
            Ok(WorkerExit::CrashInjected) => {
                // The crash has happened; a restarted node must not
                // replay it when the coordinator re-ships old steps.
                injector = FaultInjector::none();
                attempt = 0;
            }
            Err(e) => {
                if joined && coordinator_gone(&e) {
                    return Ok(());
                }
                attempt += 1;
                if attempt > cfg.net.reconnect_attempts {
                    return Err(e);
                }
            }
        }
        let base = cfg.net.reconnect_base_ms.saturating_mul(1u64 << attempt.min(8));
        let delay = base.min(cfg.net.reconnect_cap_ms);
        std::thread::sleep(Duration::from_millis(
            delay + jitter_ms(cfg.node_id, attempt, delay.max(cfg.net.reconnect_base_ms)),
        ));
    }
}
