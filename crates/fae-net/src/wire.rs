//! Frame and payload codecs for the FAE wire protocol.
//!
//! A frame on the wire is a little-endian length prefix followed by the
//! frame body and a CRC-32 trailer:
//!
//! ```text
//! u32 len        bytes after this prefix (body + crc)
//! [ body ]
//!   magic  [u8; 4]   "FAEN"
//!   version u16      protocol version (1)
//!   kind    u8       message kind tag
//!   node    u32      worker node id (sender or addressee)
//!   epoch   u32      membership generation the frame belongs to
//!   seq     u64      per-coordinator monotone sequence number
//!   step    u64      training step the frame is about
//!   payload ...      kind-specific, see [`Message`]
//! u32 crc        CRC-32 over the body (same polynomial/table as the
//!                checkpoint container, `fae_core::checkpoint::crc32`)
//! ```
//!
//! Replies echo the request's `seq`, `epoch` and `step`, which is what
//! lets the coordinator discard stale or duplicated replies and lets the
//! worker-side [`crate::Ledger`] drop replayed state mutations. Every
//! numeric field — including each `f32` — round-trips bit-exactly, a
//! precondition for the distributed run matching the single-process model
//! digest.
//!
//! Decoding is fully bounds-checked and never panics: torn, truncated or
//! bit-flipped frames surface as [`NetError::Corrupt`].

use fae_core::checkpoint::crc32;
use fae_data::{BatchKind, MiniBatch, TableIndices};
use fae_embed::SparseGrad;
use fae_telemetry::StepMode;

/// Frame magic: distinguishes protocol traffic from stray connections.
pub const MAGIC: [u8; 4] = *b"FAEN";

/// Protocol version.
pub const VERSION: u16 = 1;

/// Hard cap on a frame body — a length prefix beyond this is corruption,
/// not a giant message, and is rejected before any allocation.
pub const MAX_FRAME: usize = 256 << 20;

/// Fixed header bytes before the payload (magic + version + kind + node
/// + epoch + seq + step).
const HEADER: usize = 4 + 2 + 1 + 4 + 4 + 8 + 8;

/// Transport and protocol failures.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// A read or write missed its deadline.
    Timeout(&'static str),
    /// The peer closed the connection.
    Disconnected,
    /// A frame failed structural validation (bad magic/version/CRC,
    /// truncated payload, oversized length).
    Corrupt(String),
    /// A structurally valid frame violated the protocol (wrong kind,
    /// unparseable embedded JSON, bad node id).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Timeout(what) => write!(f, "deadline missed: {what}"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// One hot-bag row shipped at a refresh or in a welcome.
#[derive(Clone, Debug, PartialEq)]
pub struct HotEntry {
    /// Embedding table index.
    pub table: u32,
    /// Global row id within the table.
    pub row: u32,
    /// The row's weights.
    pub values: Vec<f32>,
}

impl HotEntry {
    /// Bytes this entry occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        4 + 4 + 4 + self.values.len() * 4
    }
}

/// The protocol's message kinds.
#[derive(Clone, Debug)]
pub enum Message {
    /// Worker → coordinator: request admission (node id in the header).
    Hello,
    /// Coordinator → worker: admission plus the state bootstrap — the
    /// worker replays the seeded RNG construction for bit-identical
    /// initial tables, then fast-forwards via `dense` and `hot`.
    Welcome {
        /// Total logical worker count (fixed for the run).
        workers: u32,
        /// Model/master construction seed.
        seed: u64,
        /// The workload spec, JSON.
        spec_json: String,
        /// Hot/cold partitions, JSON (empty until the first refresh).
        partitions_json: String,
        /// Current dense parameters of the coordinator's replicas.
        dense: Vec<f32>,
        /// Hot-bag rows as of the last refresh.
        hot: Vec<HotEntry>,
    },
    /// Coordinator → worker: compute one shard's forward/backward.
    Task {
        /// Full mini-batch sample count (the gradient scale denominator).
        total: u32,
        /// Hot (worker's hot bags) or cold (worker's master tables).
        mode: StepMode,
        /// The shard itself.
        shard: MiniBatch,
    },
    /// Worker → coordinator: the shard's output, mirror of
    /// [`fae_core::exec::ShardOutput`].
    Grads {
        /// Shard-mean loss, grad-scaled.
        loss: f32,
        /// Samples in the shard.
        samples: u32,
        /// Dense gradients.
        dense: Vec<f32>,
        /// Per-table sparse gradients.
        sparse: Vec<SparseGrad>,
    },
    /// Coordinator → worker: apply the reduced step so replicas stay
    /// bit-identical. Idempotent under the ledger.
    Apply {
        /// Which embedding source the sparse update targets.
        mode: StepMode,
        /// Learning rate.
        lr: f32,
        /// Reduced dense gradient (every replica applies it).
        dense: Vec<f32>,
        /// Merged sparse gradients (hot steps only; empty for cold).
        sparse: Vec<SparseGrad>,
    },
    /// Worker → coordinator: a state mutation was applied (or was a
    /// detected duplicate and skipped).
    Ack,
    /// Coordinator → worker: refreshed hot-bag rows (and the partitions
    /// defining them). Idempotent under the ledger.
    HotBagSync {
        /// Hot/cold partitions, JSON.
        partitions_json: String,
        /// Every hot row, refreshed from the master tables.
        hot: Vec<HotEntry>,
    },
    /// Coordinator → worker: liveness probe.
    Heartbeat,
    /// Worker → coordinator: liveness reply.
    HeartbeatAck,
    /// Coordinator → worker: the run is over, exit cleanly.
    Shutdown,
    /// Coordinator → worker: ship your journal events from sequence
    /// `ack` on. Strictly coordinator-initiated, like every other RPC —
    /// workers never push.
    TelemetryPoll {
        /// The coordinator's acknowledged cursor: the first per-node
        /// event sequence number it has *not* yet persisted.
        ack: u64,
    },
    /// Worker → coordinator: a batch of tagged journal lines (JSONL,
    /// one event per line) starting at sequence `from`. Retried polls
    /// re-ship from the same cursor; the coordinator's ship ledger
    /// drops the duplicated prefix, making delivery exactly-once.
    Telemetry {
        /// Per-node sequence number of the first line in the batch
        /// (echoes the poll's `ack`).
        from: u64,
        /// The events, newline-separated; empty when caught up.
        events_jsonl: String,
    },
}

impl Message {
    /// Stable wire tag.
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello => 0,
            Message::Welcome { .. } => 1,
            Message::Task { .. } => 2,
            Message::Grads { .. } => 3,
            Message::Apply { .. } => 4,
            Message::Ack => 5,
            Message::HotBagSync { .. } => 6,
            Message::Heartbeat => 7,
            Message::HeartbeatAck => 8,
            Message::Shutdown => 9,
            Message::TelemetryPoll { .. } => 10,
            Message::Telemetry { .. } => 11,
        }
    }

    /// Human-readable kind name (journal/log labels).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Hello => "hello",
            Message::Welcome { .. } => "welcome",
            Message::Task { .. } => "task",
            Message::Grads { .. } => "grads",
            Message::Apply { .. } => "apply",
            Message::Ack => "ack",
            Message::HotBagSync { .. } => "hot-bag-sync",
            Message::Heartbeat => "heartbeat",
            Message::HeartbeatAck => "heartbeat-ack",
            Message::Shutdown => "shutdown",
            Message::TelemetryPoll { .. } => "telemetry-poll",
            Message::Telemetry { .. } => "telemetry",
        }
    }

    /// True for kinds that mutate worker state and must be deduplicated
    /// by the ledger (as opposed to pure recomputation or probes).
    pub fn mutates_state(&self) -> bool {
        matches!(self, Message::Apply { .. } | Message::HotBagSync { .. })
    }
}

/// One addressed, sequenced protocol message.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Worker node id (sender for worker→coordinator, addressee for
    /// coordinator→worker).
    pub node: u32,
    /// Membership generation.
    pub epoch: u32,
    /// Coordinator-assigned sequence number (replies echo it).
    pub seq: u64,
    /// Training step this frame is about.
    pub step: u64,
    /// The payload.
    pub msg: Message,
}

impl Frame {
    /// Encodes the frame ready to send: length prefix, body, CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(HEADER + 64);
        body.extend_from_slice(&MAGIC);
        put_u16(&mut body, VERSION);
        body.push(self.msg.tag());
        put_u32(&mut body, self.node);
        put_u32(&mut body, self.epoch);
        put_u64(&mut body, self.seq);
        put_u64(&mut body, self.step);
        encode_payload(&self.msg, &mut body);
        let crc = crc32(&body);
        let mut out = Vec::with_capacity(4 + body.len() + 4);
        put_u32(&mut out, (body.len() + 4) as u32);
        out.extend_from_slice(&body);
        put_u32(&mut out, crc);
        out
    }

    /// Decodes a frame from `bytes` — everything after the length
    /// prefix, CRC trailer included.
    pub fn decode(bytes: &[u8]) -> Result<Frame, NetError> {
        if bytes.len() < HEADER + 4 {
            return Err(NetError::Corrupt(format!("frame too short: {} bytes", bytes.len())));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        let got = crc32(body);
        if want != got {
            return Err(NetError::Corrupt(format!("crc mismatch: {want:#010x} != {got:#010x}")));
        }
        let mut rd = Rd { buf: body, pos: 0 };
        let magic = rd.take(4)?;
        if magic != MAGIC {
            return Err(NetError::Corrupt("bad magic".into()));
        }
        let version = rd.u16()?;
        if version != VERSION {
            return Err(NetError::Corrupt(format!("unsupported version {version}")));
        }
        let kind = rd.u8()?;
        let node = rd.u32()?;
        let epoch = rd.u32()?;
        let seq = rd.u64()?;
        let step = rd.u64()?;
        let msg = decode_payload(kind, &mut rd)?;
        if rd.pos != rd.buf.len() {
            return Err(NetError::Corrupt(format!(
                "{} trailing bytes after payload",
                rd.buf.len() - rd.pos
            )));
        }
        Ok(Frame { node, epoch, seq, step, msg })
    }
}

fn step_mode_tag(mode: StepMode) -> u8 {
    match mode {
        StepMode::Cold => 0,
        StepMode::Hot => 1,
    }
}

fn step_mode_from(tag: u8) -> Result<StepMode, NetError> {
    match tag {
        0 => Ok(StepMode::Cold),
        1 => Ok(StepMode::Hot),
        other => Err(NetError::Corrupt(format!("bad step mode tag {other}"))),
    }
}

fn batch_kind_tag(kind: BatchKind) -> u8 {
    match kind {
        BatchKind::Cold => 0,
        BatchKind::Hot => 1,
        BatchKind::Unclassified => 2,
    }
}

fn batch_kind_from(tag: u8) -> Result<BatchKind, NetError> {
    match tag {
        0 => Ok(BatchKind::Cold),
        1 => Ok(BatchKind::Hot),
        2 => Ok(BatchKind::Unclassified),
        other => Err(NetError::Corrupt(format!("bad batch kind tag {other}"))),
    }
}

fn encode_payload(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::Hello
        | Message::Ack
        | Message::Heartbeat
        | Message::HeartbeatAck
        | Message::Shutdown => {}
        Message::TelemetryPoll { ack } => {
            put_u64(out, *ack);
        }
        Message::Telemetry { from, events_jsonl } => {
            put_u64(out, *from);
            put_str(out, events_jsonl);
        }
        Message::Welcome { workers, seed, spec_json, partitions_json, dense, hot } => {
            put_u32(out, *workers);
            put_u64(out, *seed);
            put_str(out, spec_json);
            put_str(out, partitions_json);
            put_f32s(out, dense);
            put_entries(out, hot);
        }
        Message::Task { total, mode, shard } => {
            put_u32(out, *total);
            out.push(step_mode_tag(*mode));
            put_batch(out, shard);
        }
        Message::Grads { loss, samples, dense, sparse } => {
            put_f32(out, *loss);
            put_u32(out, *samples);
            put_f32s(out, dense);
            put_sparse(out, sparse);
        }
        Message::Apply { mode, lr, dense, sparse } => {
            out.push(step_mode_tag(*mode));
            put_f32(out, *lr);
            put_f32s(out, dense);
            put_sparse(out, sparse);
        }
        Message::HotBagSync { partitions_json, hot } => {
            put_str(out, partitions_json);
            put_entries(out, hot);
        }
    }
}

fn decode_payload(kind: u8, rd: &mut Rd<'_>) -> Result<Message, NetError> {
    Ok(match kind {
        0 => Message::Hello,
        1 => Message::Welcome {
            workers: rd.u32()?,
            seed: rd.u64()?,
            spec_json: rd.str_()?,
            partitions_json: rd.str_()?,
            dense: rd.f32s()?,
            hot: rd.entries()?,
        },
        2 => {
            Message::Task { total: rd.u32()?, mode: step_mode_from(rd.u8()?)?, shard: rd.batch()? }
        }
        3 => Message::Grads {
            loss: rd.f32()?,
            samples: rd.u32()?,
            dense: rd.f32s()?,
            sparse: rd.sparse()?,
        },
        4 => Message::Apply {
            mode: step_mode_from(rd.u8()?)?,
            lr: rd.f32()?,
            dense: rd.f32s()?,
            sparse: rd.sparse()?,
        },
        5 => Message::Ack,
        6 => Message::HotBagSync { partitions_json: rd.str_()?, hot: rd.entries()? },
        7 => Message::Heartbeat,
        8 => Message::HeartbeatAck,
        9 => Message::Shutdown,
        10 => Message::TelemetryPoll { ack: rd.u64()? },
        11 => Message::Telemetry { from: rd.u64()?, events_jsonl: rd.str_()? },
        other => return Err(NetError::Corrupt(format!("unknown message kind {other}"))),
    })
}

// ---- encoders --------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_f32s(out: &mut Vec<u8>, v: &[f32]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_f32(out, x);
    }
}

fn put_entries(out: &mut Vec<u8>, entries: &[HotEntry]) {
    put_u32(out, entries.len() as u32);
    for e in entries {
        put_u32(out, e.table);
        put_u32(out, e.row);
        put_f32s(out, &e.values);
    }
}

fn put_sparse(out: &mut Vec<u8>, grads: &[SparseGrad]) {
    put_u32(out, grads.len() as u32);
    for g in grads {
        put_u32(out, g.dim() as u32);
        put_u32(out, g.nnz_rows() as u32);
        for (row, values) in g.iter() {
            put_u32(out, row);
            for &x in values {
                put_f32(out, x);
            }
        }
    }
}

fn put_batch(out: &mut Vec<u8>, b: &MiniBatch) {
    out.push(batch_kind_tag(b.kind));
    put_u32(out, b.dense_width as u32);
    put_f32s(out, &b.labels);
    put_f32s(out, &b.dense);
    put_u32(out, b.sparse.len() as u32);
    for t in &b.sparse {
        put_u32(out, t.indices.len() as u32);
        for &i in &t.indices {
            put_u32(out, i);
        }
        put_u32(out, t.offsets.len() as u32);
        for &o in &t.offsets {
            put_u64(out, o as u64);
        }
    }
}

// ---- bounds-checked reader ------------------------------------------

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Corrupt(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f32(&mut self) -> Result<f32, NetError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u32` element count and checks the elements (each at
    /// least `elem_bytes` wide) actually fit in the remaining payload —
    /// a corrupt count can therefore never trigger a huge allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, NetError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(NetError::Corrupt(format!(
                "element count {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn str_(&mut self) -> Result<String, NetError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NetError::Corrupt("string payload is not utf-8".into()))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, NetError> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    fn u32s(&mut self) -> Result<Vec<u32>, NetError> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn usizes(&mut self) -> Result<Vec<usize>, NetError> {
        let n = self.count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()? as usize);
        }
        Ok(out)
    }

    fn entries(&mut self) -> Result<Vec<HotEntry>, NetError> {
        let n = self.count(12)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let table = self.u32()?;
            let row = self.u32()?;
            let values = self.f32s()?;
            out.push(HotEntry { table, row, values });
        }
        Ok(out)
    }

    fn sparse(&mut self) -> Result<Vec<SparseGrad>, NetError> {
        let tables = self.count(8)?;
        let mut out = Vec::with_capacity(tables);
        for _ in 0..tables {
            let dim = self.u32()? as usize;
            let rows = self.count(4 + dim * 4)?;
            let mut g = SparseGrad::new(dim);
            let mut values = vec![0.0f32; dim];
            for _ in 0..rows {
                let row = self.u32()?;
                for v in values.iter_mut() {
                    *v = self.f32()?;
                }
                g.accumulate(row, &values);
            }
            out.push(g);
        }
        Ok(out)
    }

    fn batch(&mut self) -> Result<MiniBatch, NetError> {
        let kind = batch_kind_from(self.u8()?)?;
        let dense_width = self.u32()? as usize;
        let labels = self.f32s()?;
        let dense = self.f32s()?;
        if dense.len() != labels.len() * dense_width {
            return Err(NetError::Corrupt(format!(
                "dense block is {} floats, want {} samples x {} features",
                dense.len(),
                labels.len(),
                dense_width
            )));
        }
        let tables = self.count(8)?;
        let mut sparse = Vec::with_capacity(tables);
        for _ in 0..tables {
            let indices = self.u32s()?;
            let offsets = self.usizes()?;
            if offsets.len() != labels.len() + 1 {
                return Err(NetError::Corrupt(format!(
                    "csr has {} offsets for {} samples",
                    offsets.len(),
                    labels.len()
                )));
            }
            let mut prev = 0usize;
            for &o in &offsets {
                if o < prev || o > indices.len() {
                    return Err(NetError::Corrupt("csr offsets not monotone in-range".into()));
                }
                prev = o;
            }
            sparse.push(TableIndices { indices, offsets });
        }
        Ok(MiniBatch { kind, dense, dense_width, sparse, labels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_data::{generate, GenOptions, WorkloadSpec};

    fn sample_batch() -> MiniBatch {
        let spec = WorkloadSpec::tiny_test();
        let ds = generate(&spec, &GenOptions::sized(7, 200));
        MiniBatch::gather(&ds, &(0..64).collect::<Vec<_>>(), BatchKind::Hot)
    }

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = frame.encode();
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        assert_eq!(len, bytes.len() - 4, "length prefix covers body + crc");
        Frame::decode(&bytes[4..]).expect("clean frame decodes")
    }

    #[test]
    fn empty_payload_kinds_round_trip() {
        for msg in [
            Message::Hello,
            Message::Ack,
            Message::Heartbeat,
            Message::HeartbeatAck,
            Message::Shutdown,
        ] {
            let tag = msg.tag();
            let f = Frame { node: 3, epoch: 7, seq: 99, step: 12, msg };
            let back = roundtrip(&f);
            assert_eq!(back.msg.tag(), tag);
            assert_eq!((back.node, back.epoch, back.seq, back.step), (3, 7, 99, 12));
        }
    }

    #[test]
    fn task_round_trips_bit_exactly() {
        let f = Frame {
            node: 1,
            epoch: 2,
            seq: 3,
            step: 4,
            msg: Message::Task { total: 256, mode: StepMode::Hot, shard: sample_batch() },
        };
        let back = roundtrip(&f);
        let Message::Task { shard, total, mode } = &back.msg else { panic!("wrong kind") };
        let Message::Task { shard: orig, .. } = &f.msg else { panic!() };
        assert_eq!(*total, 256);
        assert_eq!(*mode, StepMode::Hot);
        assert_eq!(shard.labels, orig.labels);
        assert_eq!(
            shard.dense.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            orig.dense.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(shard.sparse, orig.sparse);
    }

    #[test]
    fn grads_round_trip_preserves_sparse_rows() {
        let mut g = SparseGrad::new(4);
        g.accumulate(7, &[1.0, -2.5, 3.25, f32::MIN_POSITIVE]);
        g.accumulate(2, &[0.5; 4]);
        let f = Frame {
            node: 0,
            epoch: 1,
            seq: 10,
            step: 5,
            msg: Message::Grads {
                loss: 0.693,
                samples: 64,
                dense: vec![1.5, -0.25, f32::EPSILON],
                sparse: vec![g.clone(), SparseGrad::new(4)],
            },
        };
        let back = roundtrip(&f);
        let Message::Grads { sparse, loss, .. } = back.msg else { panic!("wrong kind") };
        assert_eq!(loss.to_bits(), 0.693f32.to_bits());
        assert_eq!(sparse[0].get(7), g.get(7));
        assert_eq!(sparse[0].get(2), g.get(2));
        assert!(sparse[1].is_empty());
    }

    #[test]
    fn welcome_round_trips_state() {
        let f = Frame {
            node: 2,
            epoch: 3,
            seq: 1,
            step: 0,
            msg: Message::Welcome {
                workers: 4,
                seed: 42,
                spec_json: "{\"name\":\"x\"}".into(),
                partitions_json: String::new(),
                dense: vec![0.125; 16],
                hot: vec![HotEntry { table: 1, row: 9, values: vec![1.0, 2.0] }],
            },
        };
        let back = roundtrip(&f);
        let Message::Welcome { workers, seed, spec_json, partitions_json, dense, hot } = back.msg
        else {
            panic!("wrong kind");
        };
        assert_eq!((workers, seed), (4, 42));
        assert_eq!(spec_json, "{\"name\":\"x\"}");
        assert!(partitions_json.is_empty());
        assert_eq!(dense, vec![0.125; 16]);
        assert_eq!(hot, vec![HotEntry { table: 1, row: 9, values: vec![1.0, 2.0] }]);
    }

    #[test]
    fn telemetry_frames_round_trip_and_never_mutate_state() {
        let poll =
            Frame { node: 1, epoch: 2, seq: 3, step: 4, msg: Message::TelemetryPoll { ack: 17 } };
        let back = roundtrip(&poll);
        let Message::TelemetryPoll { ack } = back.msg else { panic!("wrong kind") };
        assert_eq!(ack, 17);
        assert!(!poll.msg.mutates_state());

        let lines = "{\"type\":\"mark\",\"node_id\":2,\"seq\":0}\n{\"type\":\"mark\",\"node_id\":2,\"seq\":1}";
        let batch = Frame {
            node: 1,
            epoch: 2,
            seq: 3,
            step: 4,
            msg: Message::Telemetry { from: 17, events_jsonl: lines.into() },
        };
        let back = roundtrip(&batch);
        let Message::Telemetry { from, events_jsonl } = back.msg else { panic!("wrong kind") };
        assert_eq!(from, 17);
        assert_eq!(events_jsonl, lines);
        assert!(!batch.msg.mutates_state());
        assert_eq!(batch.msg.kind_name(), "telemetry");
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        let f = Frame {
            node: 1,
            epoch: 1,
            seq: 1,
            step: 1,
            msg: Message::Task { total: 64, mode: StepMode::Cold, shard: sample_batch() },
        };
        let bytes = f.encode();
        // Flip one byte in every position of the body: decode must error
        // (crc catches it), never panic.
        for at in 4..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(Frame::decode(&bad[4..]).is_err(), "flip at {at} accepted");
        }
        // Truncations too.
        for keep in 4..bytes.len() - 1 {
            assert!(Frame::decode(&bytes[4..keep]).is_err(), "truncation to {keep} accepted");
        }
    }

    #[test]
    fn oversized_counts_do_not_allocate() {
        // A hand-built Grads frame claiming u32::MAX dense floats.
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC);
        put_u16(&mut body, VERSION);
        body.push(3); // Grads
        put_u32(&mut body, 0);
        put_u32(&mut body, 0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_f32(&mut body, 0.0);
        put_u32(&mut body, 1);
        put_u32(&mut body, u32::MAX); // dense count: absurd
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        match Frame::decode(&body) {
            Err(NetError::Corrupt(m)) => assert!(m.contains("exceeds remaining")),
            other => panic!("expected corrupt error, got {other:?}"),
        }
    }
}
