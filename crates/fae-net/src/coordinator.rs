//! The coordinator: a [`StepEngine`] that fans hot-batch shards out to
//! worker nodes and owns membership, failure detection and recovery.
//!
//! # Architecture
//!
//! The coordinator wraps a full [`ParallelEngine`] — `W` bit-identical
//! replicas — exactly as the single-process trainer would. The wire is
//! an *acceleration path*, never the source of truth:
//!
//! * **Hot steps** send shard `k` to live worker `k` (a `Task` frame);
//!   the worker computes against its own bit-identical replica and hot
//!   bags and replies with a `Grads` frame. Shards whose worker is dead,
//!   not yet hot-synced, or mid-failure are computed coordinator-side
//!   with the exact per-worker arithmetic ([`compute_shard`] against
//!   replica `k`), so the reduction is bit-identical either way.
//! * **Cold steps** run entirely coordinator-side (the paper keeps cold
//!   embedding access on the CPU host); workers only receive the reduced
//!   `Apply` so their replicas never drift.
//! * After every step the reduced gradient is broadcast (`Apply`) and
//!   applied locally ([`ParallelEngine::apply_combined`]); at every
//!   cold→hot transition the refreshed bags ship as `HotBagSync`.
//!
//! # Failure handling
//!
//! Each RPC retries under the bounded-backoff
//! [`RetryPolicy`](fae_core::RetryPolicy), charging
//! simulated backoff seconds to the run's timeline; consecutive missed
//! deadlines feed the per-node [`FailureDetector`], and crossing the
//! suspicion threshold declares the node dead: `NodeLost` + `Reshard`
//! journal events, a [`reshard_cost`] timeline charge, and a
//! [`RecoveryAction::ReshardedToSurvivors`] in the run report. A dead
//! node's shards run coordinator-side until it reconnects; the rejoin
//! handshake (`Hello` → `Welcome`) bumps the membership epoch and ships
//! the current dense parameters plus last hot-bag snapshot. A rejoined
//! worker takes dense `Apply`s immediately but no hot shards until the
//! next `HotBagSync` proves its bags current.
//!
//! All of it surfaces to the trainer through [`NetEvents`] /
//! [`StepEngine::drain_net`], so the journal's phase-sum invariant and
//! the run report see network life exactly like any other fault domain.

use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use fae_core::exec::{
    compute_shard, reduce_shards, NetEvents, ParallelEngine, ShardOutput, StepEngine,
};
use fae_core::faults::{FaultInjector, FaultKind, FaultPlan, RecoveryAction};
use fae_core::replicator::HotEmbeddings;
use fae_core::trainer::AnyModel;
use fae_data::{MiniBatch, WorkloadSpec};
use fae_embed::{HotColdPartition, SparseGrad};
use fae_models::{forward_backward, EmbeddingSource, MasterEmbeddings, RecModel};
use fae_sysmodel::{reshard_cost, sync_cost, Phase, SystemConfig, Timeline};
use fae_telemetry::{JournalEvent, PhaseSeconds, ShipLedger, StepMode, Telemetry};

use crate::deadline::{recv_frame, send_bytes, send_frame};
use crate::detector::FailureDetector;
use crate::wire::{Frame, HotEntry, Message, NetError};
use crate::NetConfig;

/// One worker slot's lifecycle.
enum Slot {
    /// Never joined (yet).
    Vacant,
    /// Connected and admitted.
    Live(Conn),
    /// Declared dead; may rejoin.
    Lost,
}

struct Conn {
    stream: TcpStream,
    /// True once this worker's hot bags were synced in the current
    /// refresh window — only then may it take hot shards.
    hot_current: bool,
}

/// The networked [`StepEngine`]. See the module docs for the protocol.
pub struct RemoteEngine {
    inner: ParallelEngine,
    spec_json: String,
    seed: u64,
    workers: usize,
    cfg: NetConfig,
    sys: SystemConfig,
    listener: TcpListener,
    slots: Vec<Slot>,
    detectors: Vec<FailureDetector>,
    epoch: u32,
    next_seq: u64,
    injector: FaultInjector,
    events: NetEvents,
    partitions: Vec<HotColdPartition>,
    partitions_json: String,
    hot_snapshot: Vec<HotEntry>,
    hot_bytes: f64,
    pending_drop: Option<usize>,
    pending_dup: Option<usize>,
    telemetry: Telemetry,
    ship: ShipLedger,
    last_step: u64,
}

/// Modeled wire bandwidth for journal shipping: the JSONL batches ride
/// the control plane, so their simulated transfer time is charged to
/// `Phase::Framework` at this rate rather than the data-plane model.
const TELEMETRY_WIRE_BYTES_PER_S: f64 = 1e9;

impl RemoteEngine {
    /// Builds the engine around an already-bound listener, then waits up
    /// to `cfg.initial_wait_ms` for `workers` nodes to say Hello.
    /// Workers that miss the window are treated as lost — their shards
    /// run coordinator-side — and may still join later.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: AnyModel,
        spec: &WorkloadSpec,
        seed: u64,
        workers: usize,
        num_gpus: usize,
        listener: TcpListener,
        cfg: NetConfig,
        plan: FaultPlan,
    ) -> Result<Self, NetError> {
        let workers = workers.max(1);
        listener.set_nonblocking(true).map_err(NetError::Io)?;
        let spec_json =
            spec.to_json().map_err(|e| NetError::Protocol(format!("spec to json: {e}")))?;
        let detectors = vec![FailureDetector::new(cfg.suspicion_threshold); workers];
        let initial_wait = Duration::from_millis(cfg.initial_wait_ms);
        let mut eng = Self {
            inner: ParallelEngine::from_model(model, spec, seed, workers),
            spec_json,
            seed,
            workers,
            cfg,
            sys: SystemConfig::paper_server(num_gpus),
            listener,
            slots: (0..workers).map(|_| Slot::Vacant).collect(),
            detectors,
            epoch: 0,
            next_seq: 0,
            injector: FaultInjector::new(plan),
            events: NetEvents::default(),
            partitions: Vec::new(),
            partitions_json: String::new(),
            hot_snapshot: Vec::new(),
            hot_bytes: 0.0,
            pending_drop: None,
            pending_dup: None,
            telemetry: Telemetry::disabled(),
            ship: ShipLedger::new(workers),
            last_step: 0,
        };
        let deadline = Instant::now() + initial_wait;
        while eng.live_count() < eng.workers && Instant::now() < deadline {
            eng.drain_joins(0);
            if eng.live_count() < eng.workers {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        Ok(eng)
    }

    /// Live (admitted, not declared dead) worker count.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, Slot::Live(_))).count()
    }

    /// Current membership epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    fn bump_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Accepts every pending connection and runs the join handshake.
    /// Joins are only admitted here — at a step boundary — so a crash
    /// and its rejoin can never interleave within one step's fan-out.
    fn drain_joins(&mut self, step: u64) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream, step),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// The join handshake: Hello in, Welcome (current params + hot-bag
    /// snapshot) out, epoch bump, journal + recovery bookkeeping.
    fn admit(&mut self, mut stream: TcpStream, step: u64) {
        if stream.set_nonblocking(false).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let hello = match recv_frame(&mut stream, self.cfg.read_timeout_ms) {
            Ok(f) => f,
            Err(_) => return,
        };
        if !matches!(hello.msg, Message::Hello) {
            return;
        }
        let node = hello.node as usize;
        if node >= self.workers {
            return;
        }
        // A Hello for a slot we still believe is live means the old
        // socket is a zombie (fast crash + restart): declare the loss
        // first so NodeLost always precedes the rejoin's NodeJoin.
        if matches!(self.slots[node], Slot::Live(_)) {
            self.declare_dead(node, step, 0);
        }
        let rejoining = matches!(self.slots[node], Slot::Lost);
        let mut dense = Vec::new();
        self.inner.primary_ref().write_params(&mut dense);
        let dense_bytes = dense.len() * 4;
        let hot_bytes: usize = self.hot_snapshot.iter().map(HotEntry::wire_bytes).sum();
        let state_bytes = (dense_bytes + hot_bytes + self.partitions_json.len()) as u64;
        self.epoch += 1;
        let welcome = Frame {
            node: hello.node,
            epoch: self.epoch,
            seq: self.bump_seq(),
            step,
            msg: Message::Welcome {
                workers: self.workers as u32,
                seed: self.seed,
                spec_json: self.spec_json.clone(),
                partitions_json: self.partitions_json.clone(),
                dense,
                hot: self.hot_snapshot.clone(),
            },
        };
        if send_frame(&mut stream, &welcome, self.cfg.write_timeout_ms).is_err() {
            self.epoch -= 1;
            return;
        }
        // Admitted with stale bags: dense Applys flow immediately, hot
        // shards wait for the next HotBagSync.
        self.slots[node] = Slot::Live(Conn { stream, hot_current: false });
        self.detectors[node].reset();
        self.events.journal.push(JournalEvent::NodeJoin {
            step,
            node: node as u64,
            epoch: self.epoch as u64,
            state_bytes,
        });
        // Shipping state to a (re)joining node is modeled like a
        // reshard: communicator re-init, parameter broadcast, bag
        // replication.
        let cost = reshard_cost(&self.sys, dense_bytes as f64, self.hot_bytes);
        self.events.journal.push(JournalEvent::Charge {
            step,
            label: "rejoin-ship".into(),
            phases: PhaseSeconds::delta(&Timeline::new(), &cost),
        });
        self.events.event_charges.merge(&cost);
        if rejoining {
            self.events.recoveries.push(RecoveryAction::NodeRejoined {
                step,
                node: node as u32,
                state_bytes,
            });
        }
        self.telemetry.counter_add("net.joins", 1);
    }

    /// Declares worker `node` dead: severs the socket, bumps the epoch,
    /// journals the loss and the reshard, and charges the reshard to the
    /// timeline. Idempotent for already-dead slots.
    fn declare_dead(&mut self, node: usize, step: u64, suspicion: u32) {
        let Slot::Live(conn) = &self.slots[node] else { return };
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.slots[node] = Slot::Lost;
        self.epoch += 1;
        let live = self.live_count() as u64;
        self.events.journal.push(JournalEvent::NodeLost {
            step,
            node: node as u64,
            suspicion: suspicion as u64,
        });
        let dense_bytes = (self.inner.primary_ref().dense_param_count() * 4) as f64;
        let cost = reshard_cost(&self.sys, dense_bytes, self.hot_bytes);
        self.events.journal.push(JournalEvent::Reshard {
            step,
            node: node as u64,
            live,
            phases: PhaseSeconds::delta(&Timeline::new(), &cost),
        });
        self.events.event_charges.merge(&cost);
        self.events.recoveries.push(RecoveryAction::ReshardedToSurvivors {
            step,
            node: node as u32,
            live: live as u32,
        });
        self.telemetry.counter_add("net.nodes_lost", 1);
    }

    /// True when worker `k` may be sent work of `mode`.
    fn eligible(&self, k: usize, mode: StepMode) -> bool {
        match &self.slots[k] {
            Slot::Live(c) => !matches!(mode, StepMode::Hot) || c.hot_current,
            _ => false,
        }
    }

    /// One request/reply exchange with worker `k`, through the retry,
    /// backoff and suspicion machinery. On final failure the node may be
    /// declared dead (threshold crossing).
    fn send_rpc(&mut self, k: usize, msg: Message, step: u64) -> Result<Frame, NetError> {
        let drop_first = self.pending_drop == Some(k);
        if drop_first {
            self.pending_drop = None;
        }
        let dup_send = self.pending_dup == Some(k);
        if dup_send {
            self.pending_dup = None;
        }
        let seq = self.bump_seq();
        let frame = Frame { node: k as u32, epoch: self.epoch, seq, step, msg };
        let r = match &mut self.slots[k] {
            Slot::Live(conn) => rpc(
                conn,
                &mut self.detectors[k],
                &mut self.events,
                &self.cfg,
                &frame,
                drop_first,
                dup_send,
            ),
            _ => Err(NetError::Disconnected),
        };
        if r.is_err() && self.detectors[k].is_dead() {
            let suspicion = self.detectors[k].suspicion();
            self.declare_dead(k, step, suspicion);
        }
        r
    }

    /// Fires any scheduled network faults due at `step` and arms their
    /// effects. The worker-crash kind is recorded for the report only:
    /// the victim's own injector (same plan, same seed, same variation)
    /// kills the process, and this side discovers it through the reply
    /// deadline.
    fn fire_net_faults(&mut self, step: u64) {
        let w = self.workers as u64;
        if let Some(f) = self.injector.fire(FaultKind::NetDrop, step) {
            self.pending_drop = Some(self.injector.variation(&f, w) as usize);
            self.record_fault(f, step);
        }
        if let Some(f) = self.injector.fire(FaultKind::NetDuplicate, step) {
            self.pending_dup = Some(self.injector.variation(&f, w) as usize);
            self.record_fault(f, step);
        }
        if let Some(f) = self.injector.fire(FaultKind::NetDelay, step) {
            let stall = 0.005 * (1 + self.injector.variation(&f, 8)) as f64;
            self.events.step_charges.add(Phase::Framework, stall);
            self.record_fault(f, step);
        }
        if let Some(f) = self.injector.fire(FaultKind::NetPartition, step) {
            let victim = self.injector.variation(&f, w) as usize;
            self.record_fault(f, step);
            self.declare_dead(victim, step, 0);
        }
        if let Some(f) = self.injector.fire(FaultKind::WorkerCrash, step) {
            self.record_fault(f, step);
        }
    }

    fn record_fault(&mut self, f: fae_core::faults::InjectedFault, step: u64) {
        self.events.journal.push(JournalEvent::Fault { step, kind: f.kind.as_str().to_string() });
        self.events.faults.push(f);
    }

    /// Drains every live worker's buffered journal events into per-node
    /// sidecar journals. The ship ledger's ack cursor plus the worker's
    /// resend-from-ack reply make delivery exactly-once even when a
    /// poll is retried or a reply is lost; the batch's simulated
    /// transfer time is charged to `Phase::Framework`.
    fn poll_telemetry(&mut self, step: u64) {
        for k in 0..self.workers {
            if !matches!(self.slots[k], Slot::Live(_)) {
                continue;
            }
            let ack = self.ship.ack(k);
            let Ok(reply) = self.send_rpc(k, Message::TelemetryPoll { ack }, step) else {
                continue;
            };
            let Message::Telemetry { from, events_jsonl } = reply.msg else { continue };
            let lines: Vec<&str> = events_jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
            let Some(skip) = self.ship.admit(k, from, lines.len() as u64) else { continue };
            let fresh = &lines[(skip as usize).min(lines.len())..];
            if fresh.is_empty() {
                continue;
            }
            let batch = fresh.join("\n");
            self.events
                .step_charges
                .add(Phase::Framework, batch.len() as f64 / TELEMETRY_WIRE_BYTES_PER_S);
            self.telemetry.ship_lines(k as u64, &batch);
            self.telemetry.counter_add("net.telemetry_lines", fresh.len() as u64);
        }
    }

    /// Probes every live worker; misses feed the failure detector.
    fn heartbeat(&mut self, step: u64) {
        for k in 0..self.workers {
            if matches!(self.slots[k], Slot::Live(_)) {
                let _ = self.send_rpc(k, Message::Heartbeat, step);
            }
        }
    }

    /// The W == 1 step: mirror of [`ParallelEngine::step`]'s serial fast
    /// path (grad scale 1.0, no reduction, unmerged sparse gradients).
    fn step_single<E>(
        &mut self,
        emb: &E,
        batch: &MiniBatch,
        step: u64,
        mode: StepMode,
    ) -> (f32, Vec<f32>, Vec<SparseGrad>)
    where
        E: EmbeddingSource + Sync,
    {
        if matches!(mode, StepMode::Hot) && self.eligible(0, mode) {
            let msg = Message::Task { total: batch.len() as u32, mode, shard: batch.clone() };
            if let Ok(reply) = self.send_rpc(0, msg, step) {
                if let Message::Grads { loss, dense, sparse, .. } = reply.msg {
                    return (loss, dense, sparse);
                }
            }
        }
        let (loss, sparse) = forward_backward(self.inner.primary(), emb, batch, 1.0);
        let mut dense = Vec::new();
        self.inner.primary().write_grads(&mut dense);
        (loss, dense, sparse)
    }

    /// The W >= 2 step: remote fan-out for eligible hot shards, local
    /// [`compute_shard`] for everything else, then the worker-index-order
    /// reduction — bit-identical to [`ParallelEngine::step`].
    fn step_sharded<E>(
        &mut self,
        emb: &E,
        batch: &MiniBatch,
        step: u64,
        mode: StepMode,
    ) -> (f32, Vec<f32>, Vec<SparseGrad>)
    where
        E: EmbeddingSource + Sync,
    {
        let n = batch.len();
        let shards = batch.shards(self.workers);
        let mut outputs: Vec<Option<ShardOutput>> = Vec::new();
        outputs.resize_with(self.workers, || None);
        if matches!(mode, StepMode::Hot) {
            for k in 0..self.workers {
                if shards[k].is_empty() || !self.eligible(k, mode) {
                    continue;
                }
                let msg = Message::Task { total: n as u32, mode, shard: shards[k].clone() };
                if let Ok(reply) = self.send_rpc(k, msg, step) {
                    if let Message::Grads { loss, samples, dense, sparse } = reply.msg {
                        outputs[k] =
                            Some(ShardOutput { loss, samples: samples as usize, dense, sparse });
                    }
                }
            }
        }
        // Orphan shards (dead, stale-bagged or mid-failure workers) and
        // every cold shard: the exact per-worker arithmetic, locally.
        for (k, shard) in shards.iter().enumerate() {
            if outputs[k].is_none() && !shard.is_empty() {
                outputs[k] = Some(compute_shard(self.inner.replica_mut(k), emb, shard, n));
            }
        }
        reduce_shards(&outputs, n, emb.num_tables(), emb.dim())
    }

    /// Ships the reduced step to every live worker so replicas stay
    /// bit-identical. Failures feed the suspicion/death path; a worker
    /// that misses an Apply is declared dead before the next step can
    /// use it, which is what keeps remote replicas trustworthy.
    fn broadcast_apply(
        &mut self,
        step: u64,
        mode: StepMode,
        lr: f32,
        dense: &[f32],
        sparse: &[SparseGrad],
    ) {
        for k in 0..self.workers {
            if !matches!(self.slots[k], Slot::Live(_)) {
                continue;
            }
            let msg = Message::Apply {
                mode,
                lr,
                dense: dense.to_vec(),
                sparse: if matches!(mode, StepMode::Hot) { sparse.to_vec() } else { Vec::new() },
            };
            let _ = self.send_rpc(k, msg, step);
        }
    }
}

impl StepEngine for RemoteEngine {
    fn engine_step<E>(
        &mut self,
        emb: &E,
        batch: &MiniBatch,
        step: u64,
        mode: StepMode,
        lr: f32,
    ) -> (f32, Vec<SparseGrad>)
    where
        E: EmbeddingSource + Sync,
    {
        self.drain_joins(step);
        self.fire_net_faults(step);
        self.last_step = step;
        let hb = self.cfg.heartbeat_every_steps;
        if hb > 0 && step > 0 && step.is_multiple_of(hb) {
            self.heartbeat(step);
        }
        let tp = self.cfg.telemetry_every_steps;
        if tp > 0 && self.telemetry.enabled() && step > 0 && step.is_multiple_of(tp) {
            self.poll_telemetry(step);
        }
        let (loss, dense, sparse) = if self.workers == 1 {
            self.step_single(emb, batch, step, mode)
        } else {
            self.step_sharded(emb, batch, step, mode)
        };
        self.inner.apply_combined(&dense, lr);
        self.broadcast_apply(step, mode, lr, &dense, &sparse);
        (loss, sparse)
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn primary(&mut self) -> &mut AnyModel {
        self.inner.primary()
    }

    fn primary_ref(&self) -> &AnyModel {
        self.inner.primary_ref()
    }

    fn broadcast_params(&mut self) {
        self.inner.broadcast_params();
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry.clone();
        self.inner.set_telemetry(telemetry);
    }

    fn on_refresh(&mut self, step: u64, master: &MasterEmbeddings, hot: &HotEmbeddings) {
        self.partitions = hot.partitions().to_vec();
        self.partitions_json = serde_json::to_string(hot.partitions()).unwrap_or_default();
        self.hot_snapshot = snapshot_entries(master, &self.partitions);
        self.hot_bytes = hot.hot_bytes() as f64;
        // Replicating the bags across the node group rides the same
        // modeled path as a schedule-transition sync.
        self.events.step_charges.merge(&sync_cost(&self.sys, self.hot_bytes));
        for k in 0..self.workers {
            if !matches!(self.slots[k], Slot::Live(_)) {
                continue;
            }
            let msg = Message::HotBagSync {
                partitions_json: self.partitions_json.clone(),
                hot: self.hot_snapshot.clone(),
            };
            if self.send_rpc(k, msg, step).is_ok() {
                if let Slot::Live(c) = &mut self.slots[k] {
                    c.hot_current = true;
                }
            }
        }
    }

    fn on_write_back(&mut self, _step: u64, master: &MasterEmbeddings) {
        // The trainer just folded the hot bags back into the master, so
        // re-snapshot: a worker rejoining mid-cold-phase now gets
        // current rows in its Welcome.
        if !self.partitions.is_empty() {
            self.hot_snapshot = snapshot_entries(master, &self.partitions);
        }
    }

    fn on_cold_only(&mut self, _step: u64) {
        // The run degraded to CPU-only execution: no further hot shards
        // will be fanned out, so no worker's bags can be current.
        for slot in &mut self.slots {
            if let Slot::Live(c) = slot {
                c.hot_current = false;
            }
        }
    }

    fn drain_net(&mut self) -> NetEvents {
        std::mem::take(&mut self.events)
    }
}

impl Drop for RemoteEngine {
    fn drop(&mut self) {
        // Last drain: marks buffered since the final in-step poll (end
        // of run tasks, a late rejoin) would otherwise be lost.
        if self.cfg.telemetry_every_steps > 0 && self.telemetry.enabled() {
            self.poll_telemetry(self.last_step);
        }
        for k in 0..self.workers {
            self.next_seq += 1;
            let frame = Frame {
                node: k as u32,
                epoch: self.epoch,
                seq: self.next_seq,
                step: 0,
                msg: Message::Shutdown,
            };
            if let Slot::Live(conn) = &mut self.slots[k] {
                let _ = send_frame(&mut conn.stream, &frame, self.cfg.write_timeout_ms);
            }
        }
    }
}

/// Extracts every hot row of every table — the payload of a
/// `HotBagSync` and the bag half of a `Welcome`.
fn snapshot_entries(master: &MasterEmbeddings, partitions: &[HotColdPartition]) -> Vec<HotEntry> {
    // Row-level reads work in both storage modes, so a tiered master
    // (never built on the distributed path today) would still snapshot
    // instead of panicking.
    let mut out = Vec::new();
    for (t, p) in partitions.iter().enumerate().take(master.num_tables()) {
        for &g in p.hot_ids() {
            out.push(HotEntry { table: t as u32, row: g, values: master.row(t, g) });
        }
    }
    out
}

/// One deadline-bounded request/reply exchange with retries: every
/// failed attempt charges its simulated backoff to the step's timeline
/// and feeds the failure detector; any success clears suspicion. Reply
/// frames with a lower `seq` than the request are duplicates of earlier
/// replies (lost-ack retransmits, `net-duplicate` injection) and are
/// skipped without consuming an attempt.
fn rpc(
    conn: &mut Conn,
    det: &mut FailureDetector,
    events: &mut NetEvents,
    cfg: &NetConfig,
    frame: &Frame,
    drop_first_send: bool,
    duplicate_send: bool,
) -> Result<Frame, NetError> {
    let bytes = frame.encode();
    let attempts = cfg.retry.max_attempts.max(1);
    let mut last = NetError::Timeout("rpc gave up");
    for attempt in 1..=attempts {
        let miss = |events: &mut NetEvents, det: &mut FailureDetector, e: NetError| {
            events.step_charges.add(Phase::Framework, cfg.retry.backoff_delay(attempt));
            det.record_timeout();
            e
        };
        if !(attempt == 1 && drop_first_send) {
            if let Err(e) = send_bytes(&mut conn.stream, &bytes, cfg.write_timeout_ms) {
                last = miss(events, det, e);
                continue;
            }
            if attempt == 1 && duplicate_send {
                // Deliver the identical frame twice: the worker-side
                // ledger must make the replay a no-op.
                let _ = send_bytes(&mut conn.stream, &bytes, cfg.write_timeout_ms);
            }
        }
        loop {
            match recv_frame(&mut conn.stream, cfg.read_timeout_ms) {
                Ok(reply) if reply.seq == frame.seq => {
                    det.record_ok();
                    return Ok(reply);
                }
                Ok(reply) if reply.seq < frame.seq => continue,
                Ok(reply) => {
                    last = miss(
                        events,
                        det,
                        NetError::Protocol(format!(
                            "reply seq {} from the future (request {})",
                            reply.seq, frame.seq
                        )),
                    );
                    break;
                }
                Err(e) => {
                    last = miss(events, det, e);
                    break;
                }
            }
        }
    }
    Err(last)
}
