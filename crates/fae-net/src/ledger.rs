//! Epoch/sequence deduplication: the idempotency layer that makes
//! state-mutating messages safe under loss, duplication and replay.
//!
//! The coordinator tags every frame with the membership `epoch` and a
//! monotone `seq`. A worker admits a frame through its [`Ledger`]:
//!
//! * an *older epoch* is [`Admit::Stale`] — traffic from before a
//!   membership change; drop it entirely;
//! * a *newer epoch* is adopted (the sequence horizon resets) and the
//!   frame is [`Admit::Fresh`];
//! * within the current epoch, a `seq` at or below the high-water mark
//!   is [`Admit::Duplicate`] — re-acknowledge it (the coordinator is
//!   retrying because the first ack was lost) but do **not** re-apply
//!   it. Higher `seq` advances the mark and is fresh.
//!
//! The property test at the bottom drives a gradient counter through
//! randomized loss/duplication/replay schedules and proves no delivery
//! pattern can ever double-apply an update.

/// Verdict for one incoming `(epoch, seq)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// First sight: apply it.
    Fresh,
    /// Already applied (or superseded within this epoch): acknowledge,
    /// do not re-apply.
    Duplicate,
    /// From a dead epoch: ignore entirely.
    Stale,
}

/// Per-connection dedup state.
#[derive(Clone, Debug)]
pub struct Ledger {
    epoch: u32,
    last_seq: Option<u64>,
}

impl Ledger {
    /// A ledger anchored at `epoch` with an empty sequence horizon.
    pub fn new(epoch: u32) -> Self {
        Self { epoch, last_seq: None }
    }

    /// The epoch currently adopted.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Classifies `(epoch, seq)` and advances the horizon for fresh
    /// frames.
    pub fn admit(&mut self, epoch: u32, seq: u64) -> Admit {
        if epoch < self.epoch {
            return Admit::Stale;
        }
        if epoch > self.epoch {
            self.epoch = epoch;
            self.last_seq = Some(seq);
            return Admit::Fresh;
        }
        match self.last_seq {
            Some(last) if seq <= last => Admit::Duplicate,
            _ => {
                self.last_seq = Some(seq);
                Admit::Fresh
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_delivery_is_all_fresh() {
        let mut l = Ledger::new(1);
        for seq in 0..10 {
            assert_eq!(l.admit(1, seq), Admit::Fresh);
        }
    }

    #[test]
    fn replayed_and_reordered_frames_are_duplicates() {
        let mut l = Ledger::new(1);
        assert_eq!(l.admit(1, 5), Admit::Fresh);
        assert_eq!(l.admit(1, 5), Admit::Duplicate, "exact replay");
        assert_eq!(l.admit(1, 3), Admit::Duplicate, "late straggler");
        assert_eq!(l.admit(1, 6), Admit::Fresh);
    }

    #[test]
    fn old_epochs_are_stale_new_epochs_reset_the_horizon() {
        let mut l = Ledger::new(2);
        assert_eq!(l.admit(2, 100), Admit::Fresh);
        assert_eq!(l.admit(1, 101), Admit::Stale, "pre-reshard traffic");
        assert_eq!(l.admit(3, 7), Admit::Fresh, "new epoch adopts a low seq");
        assert_eq!(l.epoch(), 3);
        assert_eq!(l.admit(3, 7), Admit::Duplicate);
        assert_eq!(l.admit(3, 8), Admit::Fresh);
    }

    proptest! {
        /// Satellite guarantee: whatever the network does — drop frames,
        /// deliver them twice, replay old ones after new ones — a
        /// gradient guarded by the ledger is applied at most once, and
        /// every frame that survives at all is applied exactly once.
        #[test]
        fn no_delivery_schedule_double_applies(
            // Which of 24 coordinator sends actually arrive at least once.
            delivered in prop::collection::vec((0u32..2).prop_map(|b| b == 1), 24),
            // Extra duplicate deliveries: (frame index, replay slot).
            dups in prop::collection::vec((0usize..24, 0usize..24), 0..24),
            epoch_bump_at in 0usize..24,
        ) {
            // Build the arrival schedule: originals in order (the RPC
            // layer is request/reply, so first arrivals are ordered),
            // duplicates injected afterwards at arbitrary points.
            let mut schedule: Vec<(u32, u64)> = Vec::new();
            for (i, &ok) in delivered.iter().enumerate() {
                let epoch = if i >= epoch_bump_at { 2 } else { 1 };
                if ok {
                    schedule.push((epoch, i as u64));
                }
            }
            for &(frame, slot) in &dups {
                let epoch = if frame >= epoch_bump_at { 2 } else { 1 };
                if delivered[frame] {
                    let at = (slot % (schedule.len() + 1)).max(
                        // A duplicate cannot arrive before its original:
                        // find the original's position.
                        schedule.iter().position(|&(_, s)| s == frame as u64)
                            .map(|p| p + 1).unwrap_or(schedule.len()),
                    );
                    schedule.insert(at.min(schedule.len()), (epoch, frame as u64));
                }
            }

            let mut ledger = Ledger::new(1);
            let mut applied: Vec<(u32, u64)> = Vec::new();
            for &(epoch, seq) in &schedule {
                if ledger.admit(epoch, seq) == Admit::Fresh {
                    prop_assert!(
                        !applied.contains(&(epoch, seq)),
                        "double-applied frame {seq} of epoch {epoch}"
                    );
                    applied.push((epoch, seq));
                }
            }
            // No frame is ever applied twice, across epochs included.
            let mut uniq = applied.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), applied.len());
        }
    }
}
