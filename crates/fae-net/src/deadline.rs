//! The one blessed home of blocking socket I/O: every read, write and
//! connect in `fae-net` goes through these helpers, and every one of
//! them carries an explicit deadline. The `net-deadline` lint rule
//! (fae-lint) flags blocking socket calls anywhere else in this crate,
//! which is what keeps "a hung peer stalls the run forever" structurally
//! impossible rather than a code-review hope.
//!
//! A deadline miss mid-frame leaves the stream desynchronized (part of
//! the frame was consumed); callers treat any error from [`recv_frame`]
//! on a stream they will keep using as grounds for reconnect or, on the
//! coordinator, for the suspicion/death path — never for resuming parses.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{Frame, NetError, MAX_FRAME};

fn dur(ms: u64) -> Duration {
    Duration::from_millis(ms.max(1))
}

/// Maps raw socket errors onto the protocol's failure vocabulary.
fn from_io(e: std::io::Error) -> NetError {
    match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => NetError::Timeout("socket deadline"),
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::NotConnected => NetError::Disconnected,
        _ => NetError::Io(e),
    }
}

/// Connects to `addr` within `timeout_ms`, trying each resolved address
/// in turn. Nagle is disabled: the protocol is small request/reply
/// frames where latency dominates.
pub fn dial(addr: &str, timeout_ms: u64) -> Result<TcpStream, NetError> {
    let addrs = addr.to_socket_addrs().map_err(from_io)?;
    let mut last: Option<NetError> = None;
    for a in addrs {
        match TcpStream::connect_timeout(&a, dur(timeout_ms)) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) => last = Some(from_io(e)),
        }
    }
    Err(last.unwrap_or_else(|| NetError::Protocol(format!("{addr} resolved to no addresses"))))
}

/// Sends one encoded frame under a write deadline.
pub fn send_frame(stream: &mut TcpStream, frame: &Frame, timeout_ms: u64) -> Result<(), NetError> {
    let bytes = frame.encode();
    send_bytes(stream, &bytes, timeout_ms)
}

/// Sends pre-encoded frame bytes under a write deadline (lets the
/// coordinator encode once and, under a `net-duplicate` fault, send the
/// identical bytes twice).
pub fn send_bytes(stream: &mut TcpStream, bytes: &[u8], timeout_ms: u64) -> Result<(), NetError> {
    stream.set_write_timeout(Some(dur(timeout_ms))).map_err(from_io)?;
    // fae-lint: allow(net-deadline, reason = "write deadline set on the previous line; this is the blessed send path")
    stream.write_all(bytes).map_err(from_io)?;
    stream.flush().map_err(from_io)
}

/// Receives one frame under a read deadline: length prefix, body, CRC
/// check, decode.
pub fn recv_frame(stream: &mut TcpStream, timeout_ms: u64) -> Result<Frame, NetError> {
    stream.set_read_timeout(Some(dur(timeout_ms))).map_err(from_io)?;
    let mut lenb = [0u8; 4];
    // fae-lint: allow(net-deadline, reason = "read deadline set above; this is the blessed receive path")
    stream.read_exact(&mut lenb).map_err(from_io)?;
    let len = u32::from_le_bytes(lenb) as usize;
    if len > MAX_FRAME {
        return Err(NetError::Corrupt(format!("length prefix {len} exceeds frame cap")));
    }
    let mut buf = vec![0u8; len];
    // fae-lint: allow(net-deadline, reason = "read deadline set above; this is the blessed receive path")
    stream.read_exact(&mut buf).map_err(from_io)?;
    Frame::decode(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Message;
    use std::net::TcpListener;

    #[test]
    fn frames_cross_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let sender = std::thread::spawn(move || {
            let mut s = dial(&addr, 1_000).expect("connect");
            let f = Frame { node: 5, epoch: 1, seq: 2, step: 3, msg: Message::Heartbeat };
            send_frame(&mut s, &f, 1_000).expect("send");
            // Keep the socket open until the peer has read.
            let _ = recv_frame(&mut s, 2_000);
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let f = recv_frame(&mut conn, 2_000).expect("recv");
        assert_eq!((f.node, f.epoch, f.seq, f.step), (5, 1, 2, 3));
        assert_eq!(f.msg.kind_name(), "heartbeat");
        let reply = Frame { node: 5, epoch: 1, seq: 2, step: 3, msg: Message::HeartbeatAck };
        send_frame(&mut conn, &reply, 1_000).expect("reply");
        sender.join().expect("sender thread");
    }

    #[test]
    fn read_deadline_fires_as_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let mut client = dial(&addr, 1_000).expect("connect");
        let (_server, _) = listener.accept().expect("accept");
        // Server never writes: the read must miss its deadline, not hang.
        match recv_frame(&mut client, 50) {
            Err(NetError::Timeout(_)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn peer_close_surfaces_as_disconnected() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let mut client = dial(&addr, 1_000).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        drop(server);
        match recv_frame(&mut client, 1_000) {
            Err(NetError::Disconnected) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
    }
}
