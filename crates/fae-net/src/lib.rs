//! Multi-node FAE over a fault-tolerant wire protocol.
//!
//! The single-process [`fae_core::ParallelEngine`] runs every simulated
//! device's shard on a local thread. This crate stretches the same
//! synchronous data-parallel step across *processes*: a coordinator owns
//! the schedule (it implements [`fae_core::exec::StepEngine`], so the FAE
//! trainer drives it unchanged) and fans hot-batch shards out to worker
//! nodes over localhost TCP, while cold batches stay coordinator-local
//! exactly as the paper keeps cold embedding access on the CPU host.
//!
//! Everything rides one compact length-prefixed binary framing
//! ([`wire`]): magic, version, message kind, node id, membership epoch,
//! sequence number, step, payload, CRC-32 trailer (the same checksum the
//! checkpoint container uses). Failure handling is layered:
//!
//! * every socket read/write carries a deadline ([`deadline`] is the one
//!   blessed module that touches blocking I/O);
//! * request/reply RPCs retry under bounded exponential backoff
//!   ([`fae_core::faults::RetryPolicy`]), charging the simulated stall to
//!   the run's [`fae_sysmodel::Timeline`];
//! * a heartbeat failure detector ([`detector`]) turns consecutive missed
//!   deadlines into a death verdict;
//! * messages are epoch-tagged and idempotent ([`ledger`]), so loss,
//!   duplication and replay never double-apply a gradient;
//! * membership is elastic ([`coordinator`]): a dead worker's shard is
//!   re-assigned to the survivors (computed coordinator-side with the
//!   exact per-worker arithmetic, so the model stays bit-identical), and
//!   a rejoining worker is shipped the current parameters and hot bags.
//!
//! Determinism contract: with a fixed worker count and seed, a
//! distributed run produces the **bit-identical** final model of the
//! in-process `ParallelEngine` — worker `k` computes against a replica
//! bootstrapped by replaying the coordinator's seeded RNG construction,
//! and every update it applies is the coordinator's reduced gradient.

#![forbid(unsafe_code)]

pub mod coordinator;
pub mod deadline;
pub mod detector;
pub mod ledger;
pub mod wire;
pub mod worker;

pub use coordinator::RemoteEngine;
pub use detector::FailureDetector;
pub use ledger::{Admit, Ledger};
pub use wire::{Frame, HotEntry, Message, NetError};
pub use worker::{run_node, run_worker, NodeConfig, NodeJournal, WorkerExit};

use fae_core::faults::RetryPolicy;

/// Timeouts, retry and failure-detection knobs shared by both ends of
/// the wire. Defaults are sized for localhost test clusters: deadlines
/// in the hundreds of milliseconds, so an injected fault is detected —
/// and the run recovers — within a couple of seconds of real time.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// TCP connect deadline, milliseconds.
    pub connect_timeout_ms: u64,
    /// Per-read deadline (reply/serve loop), milliseconds.
    pub read_timeout_ms: u64,
    /// Per-write deadline, milliseconds.
    pub write_timeout_ms: u64,
    /// Deadline for the Welcome reply to a Hello (state shipping can be
    /// much larger than a normal frame), milliseconds.
    pub welcome_timeout_ms: u64,
    /// Heartbeat every N steps (0 disables).
    pub heartbeat_every_steps: u64,
    /// Poll workers for journal events every N steps (0 disables).
    /// Polls only happen when the coordinator's telemetry is enabled,
    /// so plain runs carry zero shipping traffic.
    pub telemetry_every_steps: u64,
    /// Consecutive missed deadlines before a node is declared dead.
    pub suspicion_threshold: u32,
    /// Per-RPC retry/backoff schedule; failed attempts charge their
    /// backoff to the simulated timeline.
    pub retry: RetryPolicy,
    /// How long the coordinator waits for the initial worker group,
    /// milliseconds. Missing workers are treated as lost (their shards
    /// run coordinator-side) and may join later.
    pub initial_wait_ms: u64,
    /// Worker-side reconnect attempts before giving up.
    pub reconnect_attempts: u32,
    /// Worker-side reconnect backoff base, milliseconds (jittered,
    /// doubled per attempt).
    pub reconnect_base_ms: u64,
    /// Worker-side reconnect backoff cap, milliseconds.
    pub reconnect_cap_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            connect_timeout_ms: 1_000,
            read_timeout_ms: 400,
            write_timeout_ms: 1_000,
            welcome_timeout_ms: 4_000,
            heartbeat_every_steps: 8,
            telemetry_every_steps: 4,
            suspicion_threshold: 3,
            retry: RetryPolicy {
                max_attempts: 3,
                base_delay_s: 0.05,
                multiplier: 2.0,
                max_delay_s: 1.0,
            },
            initial_wait_ms: 10_000,
            reconnect_attempts: 40,
            reconnect_base_ms: 50,
            reconnect_cap_ms: 500,
        }
    }
}
