//! The heartbeat/deadline failure detector: a per-node suspicion counter
//! with a configurable threshold.
//!
//! State machine (see DESIGN.md §12):
//!
//! ```text
//!            record_timeout             suspicion == threshold
//!  ALIVE ──────────────────▶ SUSPECTED ───────────────────────▶ DEAD
//!    ▲                          │                                │
//!    └──────── record_ok ◀──────┘          (rejoin admits a      │
//!    ▲                                      fresh detector)      │
//!    └────────────────────────── reset ◀─────────────────────────┘
//! ```
//!
//! Any successful exchange clears suspicion entirely — one slow reply
//! amid healthy traffic never accumulates toward a death verdict; only
//! *consecutive* missed deadlines do. The struct is deliberately pure
//! (no clocks, no sockets) so the transition logic is exhaustively unit
//! testable and identical under real and simulated time.

/// Consecutive-miss failure detector for one remote node.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    suspicion: u32,
    threshold: u32,
}

impl FailureDetector {
    /// A fresh detector declaring death after `threshold` consecutive
    /// missed deadlines (clamped to at least 1).
    pub fn new(threshold: u32) -> Self {
        Self { suspicion: 0, threshold: threshold.max(1) }
    }

    /// A deadline was met: the node is alive, suspicion clears.
    pub fn record_ok(&mut self) {
        self.suspicion = 0;
    }

    /// A deadline was missed. Returns true when this miss crossed the
    /// threshold — the node is now considered dead.
    pub fn record_timeout(&mut self) -> bool {
        self.suspicion = self.suspicion.saturating_add(1);
        self.is_dead()
    }

    /// Current consecutive-miss count.
    pub fn suspicion(&self) -> u32 {
        self.suspicion
    }

    /// True once suspicion has reached the threshold.
    pub fn is_dead(&self) -> bool {
        self.suspicion >= self.threshold
    }

    /// Clears all state (used when a node rejoins).
    pub fn reset(&mut self) {
        self.suspicion = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_misses_cross_the_threshold() {
        let mut d = FailureDetector::new(3);
        assert!(!d.record_timeout());
        assert!(!d.record_timeout());
        assert!(d.record_timeout(), "third consecutive miss is death");
        assert!(d.is_dead());
        assert_eq!(d.suspicion(), 3);
    }

    #[test]
    fn a_single_ok_clears_all_suspicion() {
        let mut d = FailureDetector::new(3);
        d.record_timeout();
        d.record_timeout();
        d.record_ok();
        assert_eq!(d.suspicion(), 0);
        assert!(!d.record_timeout(), "counter restarted from zero");
    }

    #[test]
    fn zero_threshold_is_clamped_not_instant_death() {
        let d = FailureDetector::new(0);
        assert!(!d.is_dead(), "a fresh detector is never dead");
    }

    #[test]
    fn reset_revives_a_dead_detector() {
        let mut d = FailureDetector::new(1);
        assert!(d.record_timeout());
        d.reset();
        assert!(!d.is_dead());
    }
}
